//! The full Fig. 1(b) design loop: specify → analyze → choose `p` →
//! validate by simulation.
//!
//! ```sh
//! cargo run --release --example design_loop
//! ```

use nss::core::prelude::*;

fn main() {
    let rho = 80.0;
    let model = NetworkModel::paper(rho);
    println!("Network model: disk P=5, rho={rho}, CAM, s=3\n");

    let optimizer = DesignOptimizer::new(model).expect("model is analyzable");

    for (name, objective) in [
        (
            "max reachability in 5 phases",
            Objective::MaxReachAtLatency { phases: 5.0 },
        ),
        (
            "min latency to 55% reachability",
            Objective::MinLatencyForReach { target: 0.55 },
        ),
        (
            "min broadcasts to 55% reachability",
            Objective::MinBroadcastsForReach { target: 0.55 },
        ),
        (
            "max reachability within 80 broadcasts",
            Objective::MaxReachUnderBudget { budget: 80.0 },
        ),
    ] {
        match optimizer.design(objective, 10, 7) {
            Some(report) => {
                println!("{name}:");
                println!(
                    "  analytical optimum: p = {:.2}, predicted value = {:.3}",
                    report.optimum.prob, report.optimum.value
                );
                println!(
                    "  simulated at p:     measured = {:.3} ± {:.3} ({} runs, {:.0}% feasible)",
                    report.measured_mean,
                    report.measured_std,
                    report.replications,
                    report.feasible_fraction * 100.0
                );
                println!(
                    "  relative gap:       {:+.1}%\n",
                    report.relative_gap() * 100.0
                );
            }
            None => println!("{name}: infeasible at every probability\n"),
        }
    }
    println!(
        "Note: at very small p the analytical (mean-field) model cannot capture\n\
         cascade extinction, so its energy-side optima are optimistic — the same\n\
         analysis-vs-simulation divergence the paper shows between Fig. 6(b)\n\
         (analysis: p* < 0.1, M* ≈ 40) and Fig. 10(b) (simulation: p* ≈ 0.1-0.2,\n\
         M* ≈ 80)."
    );
}
