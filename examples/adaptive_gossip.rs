//! Density-oblivious adaptive tuning (§6 / Fig. 12 of the paper).
//!
//! A node cannot know the global density ρ, but it *can* measure the local
//! per-broadcast success rate. The paper observes `p*/success_rate` is
//! nearly constant across densities; this example calibrates that ratio
//! once, then tunes `p` on networks of unknown density and compares
//! against the density-aware oracle.
//!
//! ```sh
//! cargo run --release --example adaptive_gossip
//! ```

use nss::analysis::prelude::*;
use nss::core::prelude::*;

fn main() {
    // One-time calibration on the analytical model (no density knowledge is
    // needed at run time afterwards).
    let mut base = RingModelConfig::paper(60.0, 1.0);
    base.quad_points = 48;
    let controller = AdaptiveController::calibrate(base, &[40.0, 80.0, 120.0], 5.0);
    println!(
        "calibrated ratio p*/success_rate = {:.2} (paper reports ~constant across rho)\n",
        controller.ratio
    );

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10} {:>12} {:>6}",
        "rho", "measured_sr", "p_adapt", "reach_adapt", "p_oracle", "reach_oracle", "eff"
    );
    for rho in [20.0, 60.0, 100.0, 140.0] {
        let out = evaluate_adaptive(&NetworkModel::paper(rho), &controller, 5.0, 6, 11);
        println!(
            "{rho:>6.0} {:>12.4} {:>10.2} {:>12.3} {:>10.2} {:>12.3} {:>6.2}",
            out.measured_success_rate,
            out.adaptive_prob,
            out.adaptive_reach,
            out.oracle_prob,
            out.oracle_reach,
            out.efficiency()
        );
    }
    println!("\nefficiency ≈ 1: the rule tracks the oracle without knowing rho.");
}
