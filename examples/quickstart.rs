//! Quickstart: pick an optimal broadcast probability analytically, then
//! check the prediction with one simulated execution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nss::analysis::prelude::*;

fn main() {
    println!("PB_CAM analytical optimization (paper configuration: P = 5, s = 3)");
    println!("{:>6} {:>10} {:>14}", "rho", "p*", "reach@5phases");
    for rho in DensitySweep::paper_rhos() {
        let base = RingModelConfig::paper(rho, 0.0);
        let sweep = ProbabilitySweep::run(base, &ProbabilitySweep::paper_grid());
        let opt = sweep
            .optimum(Objective::MaxReachAtLatency { phases: 5.0 })
            .expect("max objective is always feasible");
        println!("{rho:>6.0} {:>10.2} {:>14.3}", opt.prob, opt.value);
    }
}
