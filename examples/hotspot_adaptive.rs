//! Spatially-adaptive tuning on a clustered deployment (§6's motivating
//! scenario: "node density exhibits large spatio-temporal variation").
//!
//! Each node probes its own per-broadcast success rate and sets its own
//! rebroadcast probability; hotspot nodes throttle down while sparse
//! bridges stay aggressive. Also renders the comparison to
//! `results/hotspot_adaptive.svg` using the bundled SVG plotter.
//!
//! ```sh
//! cargo run --release --example hotspot_adaptive
//! ```

use nss::analysis::prelude::*;
use nss::core::prelude::*;
use nss::model::prelude::*;
use nss::plot::{Chart, Series};
use nss::sim::prelude::*;

fn main() {
    // Calibrate the success-rate→probability ratio once, on uniform disks.
    let mut base = RingModelConfig::paper(60.0, 1.0);
    base.quad_points = 48;
    let controller = AdaptiveController::calibrate(base, &[40.0, 80.0, 120.0], 5.0);
    println!("calibrated ratio p*/sr = {:.2}\n", controller.ratio);

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "clusters", "mean_deg", "fixed", "global", "per-node"
    );
    let mut fixed_series = Vec::new();
    let mut global_series = Vec::new();
    let mut local_series = Vec::new();
    for children in [30.0, 60.0, 120.0, 200.0] {
        let dep = Deployment::Cluster(ClusterDeployment::new(5, 1.0, 6, children, 1.0, 2.0));
        let mut sums = (0.0, 0.0, 0.0, 0.0);
        let runs = 6;
        for rep in 0..runs {
            let topo = Topology::build(&dep.sample(1000 + rep));
            sums.3 += topo.mean_degree();
            let seed = 77 ^ rep;

            let p_fixed = (13.0 / topo.mean_degree().max(1.0)).clamp(0.02, 1.0);
            sums.0 += Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(p_fixed))
                .run(seed)
                .final_reachability();

            let rates = probe_per_node_success(&topo, 3, 2, 55 + rep);
            let global_sr = rates.iter().sum::<f64>() / rates.len() as f64;
            sums.1 += Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(controller.probability(global_sr)))
                .run(seed)
                .final_reachability();

            let probs = per_node_probabilities(&controller, &rates);
            sums.2 += Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(0.5))
                .per_node_probs(probs)
                .run(seed)
                .final_reachability();
        }
        let r = runs as f64;
        println!(
            "{children:>10.0} {:>10.1} {:>12.3} {:>12.3} {:>12.3}",
            sums.3 / r,
            sums.0 / r,
            sums.1 / r,
            sums.2 / r
        );
        fixed_series.push((children, sums.0 / r));
        global_series.push((children, sums.1 / r));
        local_series.push((children, sums.2 / r));
    }

    let chart = Chart::new(
        "Final reachability on clustered deployments",
        "children per cluster (hotspot intensity)",
        "final reachability",
    )
    .with_series(Series::new("fixed p (mean-density rule)", fixed_series))
    .with_series(Series::new("global adaptive", global_series))
    .with_series(Series::new("per-node adaptive", local_series));
    std::fs::create_dir_all("results").expect("create results dir");
    chart
        .save("results/hotspot_adaptive.svg")
        .expect("write SVG");
    println!("\nwrote results/hotspot_adaptive.svg");
    println!(
        "per-node adaptation wins on coverage: hotspot nodes suppress their own\n\
         collisions without starving the sparse bridges between clusters."
    );
}
