//! Appendix-A carrier-sense collisions: analysis and simulation.
//!
//! The paper's base CAM collides only concurrent transmissions within the
//! receiver's transmission range; Appendix A extends collisions to the
//! carrier-sense range (2r). This example runs both collision rules through
//! the analytical ring model AND the packet simulator at one density.
//!
//! ```sh
//! cargo run --release --example carrier_sense
//! ```

use nss::analysis::prelude::*;
use nss::model::prelude::*;
use nss::sim::prelude::*;

fn main() {
    let rho = 60.0;
    println!("rho = {rho}, reachability within 5 phases, p sweep\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "p", "anal_tr", "anal_cs", "sim_tr", "sim_cs"
    );
    // Carrier sensing collapses the viable probability range, so sweep a
    // geometric-ish grid that resolves the small-p survival region.
    for p in [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0] {
        let mut tr_cfg = RingModelConfig::paper(rho, p);
        tr_cfg.quad_points = 48;
        let mut cs_cfg = tr_cfg;
        cs_cfg.collision = CollisionRule::CARRIER_SENSE_2R;
        let anal_tr = RingModel::new(tr_cfg)
            .run()
            .phase_series()
            .reachability_at_latency(5.0);
        let anal_cs = RingModel::new(cs_cfg)
            .run()
            .phase_series()
            .reachability_at_latency(5.0);

        let deployment = Deployment::disk(5, 1.0, rho);
        let sim = |model| {
            Replication::paper(
                deployment,
                GossipConfig {
                    model,
                    ..GossipConfig::pb_cam(p)
                },
                3,
            )
            .with_runs(8)
            .run()
            .reachability_at_latency(5.0)
            .mean
        };
        let sim_tr = sim(CommunicationModel::CAM);
        let sim_cs = sim(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R));

        println!("{p:>6.2} {anal_tr:>12.3} {anal_cs:>12.3} {sim_tr:>12.3} {sim_cs:>12.3}");
    }
    println!(
        "\nCarrier sensing widens the interference footprint: reachability drops\n\
         and the optimal probability shifts lower, in both analysis and simulation."
    );
}
