//! Simple flooding vs tuned probability-based broadcast under CAM.
//!
//! Reproduces the paper's motivating comparison on simulated networks: at
//! high density, flooding drowns in collisions while PB_CAM with a small
//! `p` covers more of the network faster and with far fewer transmissions.
//!
//! ```sh
//! cargo run --release --example flooding_vs_pbcam
//! ```

use nss::model::prelude::*;
use nss::sim::prelude::*;

const LATENCY_BUDGET: f64 = 5.0;
const RUNS: u32 = 10;

fn main() {
    println!("Simple flooding vs PB_CAM (reach within 5 phases, mean of {RUNS} runs)\n");
    println!(
        "{:>6} {:>8} {:>13} {:>13} {:>11} {:>11}",
        "rho", "p_tuned", "flood_reach", "pbcam_reach", "flood_tx", "pbcam_tx"
    );
    for rho in [20.0f64, 60.0, 100.0, 140.0] {
        // Rule of thumb from the analytical Fig. 4(b): p* ≈ 13/rho.
        let p = (13.0 / rho).clamp(0.05, 1.0);
        let deployment = Deployment::disk(5, 1.0, rho);

        let flood = Replication::paper(deployment, GossipConfig::flooding_cam(), 1)
            .with_runs(RUNS)
            .run();
        let pbcam = Replication::paper(deployment, GossipConfig::pb_cam(p), 1)
            .with_runs(RUNS)
            .run();

        println!(
            "{rho:>6.0} {p:>8.2} {:>13.3} {:>13.3} {:>11.0} {:>11.0}",
            flood.reachability_at_latency(LATENCY_BUDGET).mean,
            pbcam.reachability_at_latency(LATENCY_BUDGET).mean,
            flood.total_broadcasts().mean,
            pbcam.total_broadcasts().mean,
        );
    }
    println!(
        "\nAt high density the tuned probability wins on reachability-within-budget\n\
         while transmitting an order of magnitude fewer packets."
    );
}
