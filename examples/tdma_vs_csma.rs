//! Implementing CFM two ways (§3.2.1 of the paper): TDMA time-diversity
//! vs accepting collisions under CSMA-style CAM.
//!
//! TDMA buys perfect reliability at the cost of a frame proportional to
//! the distance-2 degree (≈ 4ρ slots); CAM flooding is fast but lossy.
//! This is the trade-off that motivates the paper's study of
//! collision-aware algorithms.
//!
//! ```sh
//! cargo run --release --example tdma_vs_csma
//! ```

use nss::model::prelude::*;
use nss::sim::prelude::*;

fn main() {
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>11} {:>11}",
        "rho", "frame", "tdma_slots", "csma_slots", "tdma_reach", "csma_reach"
    );
    for rho in [20.0, 60.0, 100.0] {
        let topo = Topology::build(&Deployment::disk(4, 1.0, rho).sample(1));

        // TDMA: distance-2 schedule executed over the CAM medium.
        let schedule = TdmaSchedule::build(&topo);
        assert!(schedule.verify(&topo), "schedule must be distance-2 valid");
        let tdma = Executor::new(&topo).run_tdma(&schedule);
        assert_eq!(tdma.collisions, 0, "TDMA implements CFM: no collisions");

        // CSMA-style CAM flooding (3 jitter slots per phase).
        let csma = Executor::new(&topo)
            .gossip(GossipConfig::flooding_cam())
            .run(1);

        println!(
            "{rho:>6.0} {:>8} {:>12} {:>12} {:>11.3} {:>11.3}",
            schedule.frame_len,
            tdma.slots_elapsed,
            csma.phases() * 3,
            tdma.reachability(),
            csma.final_reachability(),
        );
    }
    println!(
        "\nTDMA: reliability 1.0, zero collisions, one transmission per node —\n\
         but latency grows with the frame (≈ 4·rho slots). CAM flooding ends in\n\
         a handful of phases but loses coverage to collisions. The paper's CAM\n\
         algorithms (PB_CAM) tune between these extremes."
    );
}
