//! The §4.1 metric dualities, verified end-to-end on both the analytical
//! model and simulated executions:
//!
//! * metric 1 (max reach @ latency) ↔ metric 3 (min latency @ reach),
//! * metric 4 (min energy @ reach) ↔ metric 5 (max reach @ energy).

use nss::analysis::prelude::*;
use nss::model::prelude::*;
use nss::sim::prelude::*;

#[test]
fn latency_reach_duality_on_analytical_curves() {
    for rho in [40.0, 100.0] {
        let mut base = RingModelConfig::paper(rho, 0.0);
        base.quad_points = 40;
        let probs: Vec<f64> = (1..=20).map(|i| f64::from(i) / 20.0).collect();
        let sweep = ProbabilitySweep::run(base, &probs);

        let opt1 = sweep
            .optimum(Objective::MaxReachAtLatency { phases: 5.0 })
            .unwrap();
        // Dual: minimizing latency to (almost) that reachability should pick
        // (nearly) the same probability.
        let opt3 = sweep
            .optimum(Objective::MinLatencyForReach {
                target: opt1.value - 1e-6,
            })
            .unwrap();
        assert!(
            (opt1.prob - opt3.prob).abs() < 0.101,
            "rho={rho}: dual optima p={} vs p={}",
            opt1.prob,
            opt3.prob
        );
        // And the achieved latency is (within interpolation error) the
        // original budget.
        assert!(
            opt3.value <= 5.0 + 1e-6,
            "rho={rho}: dual latency {} should be ≤ 5",
            opt3.value
        );
    }
}

#[test]
fn energy_reach_duality_on_analytical_curves() {
    let mut base = RingModelConfig::paper(60.0, 0.0);
    base.quad_points = 40;
    let probs: Vec<f64> = (1..=40).map(|i| f64::from(i) / 40.0).collect();
    let sweep = ProbabilitySweep::run(base, &probs);

    let target = 0.6;
    let opt4 = sweep
        .optimum(Objective::MinBroadcastsForReach { target })
        .unwrap();
    // Dual: with exactly that broadcast budget, the best achievable
    // reachability is ≥ the target (achieved at a nearby probability).
    let opt5 = sweep
        .optimum(Objective::MaxReachUnderBudget { budget: opt4.value })
        .unwrap();
    assert!(
        opt5.value >= target - 1e-6,
        "budget {} should buy ≥ {}: got {}",
        opt4.value,
        target,
        opt5.value
    );
}

#[test]
fn duality_holds_per_series_for_simulated_traces() {
    // Per-series inverse relationships (exact, by construction of the
    // interpolation) on real simulated traces.
    let rep = Replication::paper(
        Deployment::disk(4, 1.0, 50.0),
        GossipConfig::pb_cam(0.3),
        77,
    )
    .with_runs(6)
    .run();
    for series in rep.series() {
        series.validate().unwrap();
        let final_reach = series.final_reachability();
        for target in [0.1, 0.25, 0.5] {
            if target >= final_reach {
                assert!(series.latency_to_reach(target).is_none() || target <= final_reach);
                continue;
            }
            let t = series.latency_to_reach(target).unwrap();
            let back = series.reachability_at_latency(t);
            assert!(
                (back - target).abs() < 1e-9,
                "latency inverse broken: target {target}, back {back}"
            );
            let b = series.broadcasts_to_reach(target).unwrap();
            let r = series.reachability_under_budget(b);
            assert!(
                r >= target - 1e-9,
                "budget duality broken: target {target}, got {r}"
            );
        }
    }
}
