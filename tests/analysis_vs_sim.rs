//! Cross-crate validation: the analytical ring model (nss-analysis) against
//! the packet-level simulator (nss-sim) — the paper's §5 claim that the
//! two agree on shape.

use nss::analysis::prelude::*;
use nss::model::prelude::*;
use nss::sim::prelude::*;

fn analytical_reach(rho: f64, p: f64, phases: f64) -> f64 {
    let mut cfg = RingModelConfig::paper(rho, p);
    cfg.quad_points = 48;
    RingModel::new(cfg)
        .run()
        .phase_series()
        .reachability_at_latency(phases)
}

fn simulated_reach(rho: f64, p: f64, phases: f64, runs: u32) -> f64 {
    Replication::paper(
        Deployment::disk(5, 1.0, rho),
        GossipConfig::pb_cam(p),
        20_05,
    )
    .with_runs(runs)
    .run()
    .reachability_at_latency(phases)
    .mean
}

#[test]
fn analysis_is_an_optimistic_predictor() {
    // The analytical model assumes perfect phase alignment and mean-field
    // contention — it should upper-bound the simulated reachability (up to
    // replication noise) at every operating point.
    let points = [
        (20.0, 0.4),
        (20.0, 1.0),
        (60.0, 0.2),
        (60.0, 0.6),
        (100.0, 0.1),
        (100.0, 0.5),
        (140.0, 0.1),
        (140.0, 1.0),
    ];
    for &(rho, p) in &points {
        let a = analytical_reach(rho, p, 5.0);
        let s = simulated_reach(rho, p, 5.0, 8);
        assert!(
            s <= a + 0.12,
            "simulation should not beat analysis by much at rho={rho}, p={p}: sim {s} vs anal {a}"
        );
    }
}

#[test]
fn both_agree_on_the_bell_shape_within_a_density() {
    // For fixed rho, both models agree that a moderate probability beats
    // both extremes (the bell curve of Figs. 4a and 8a). The exact argmax
    // differs (analysis peaks earlier), so compare only clearly separated
    // points.
    let rho = 100.0;
    let (lo, mid, hi) = (0.02, 0.3, 1.0);

    let a_lo = analytical_reach(rho, lo, 5.0);
    let a_mid = analytical_reach(rho, mid, 5.0);
    let a_hi = analytical_reach(rho, hi, 5.0);
    assert!(a_mid > a_lo + 0.05, "analysis: mid {a_mid} vs lo {a_lo}");
    assert!(a_mid > a_hi + 0.05, "analysis: mid {a_mid} vs hi {a_hi}");

    let s_lo = simulated_reach(rho, lo, 5.0, 8);
    let s_mid = simulated_reach(rho, mid, 5.0, 8);
    let s_hi = simulated_reach(rho, hi, 5.0, 8);
    assert!(s_mid > s_lo + 0.05, "simulation: mid {s_mid} vs lo {s_lo}");
    assert!(s_mid > s_hi + 0.05, "simulation: mid {s_mid} vs hi {s_hi}");
}

#[test]
fn both_agree_flooding_is_suboptimal_at_high_density() {
    let phases = 5.0;
    let rho = 140.0;
    let a_flood = analytical_reach(rho, 1.0, phases);
    let a_tuned = analytical_reach(rho, 0.1, phases);
    assert!(a_tuned > a_flood + 0.1, "analysis: {a_tuned} vs {a_flood}");

    let s_flood = simulated_reach(rho, 1.0, phases, 10);
    let s_tuned = simulated_reach(rho, 0.15, phases, 10);
    assert!(
        s_tuned > s_flood + 0.05,
        "simulation: {s_tuned} vs {s_flood}"
    );
}

#[test]
fn optimal_probability_decreases_with_density_in_both() {
    let grid: Vec<f64> = (1..=20).map(|i| f64::from(i) / 20.0).collect();
    let argmax = |values: &[f64]| -> f64 {
        let (i, _) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        grid[i]
    };

    // Analytical.
    let anal: Vec<f64> = [20.0, 140.0]
        .iter()
        .map(|&rho| {
            let vals: Vec<f64> = grid
                .iter()
                .map(|&p| analytical_reach(rho, p, 5.0))
                .collect();
            argmax(&vals)
        })
        .collect();
    assert!(anal[1] < anal[0], "analysis p*: {anal:?}");

    // Simulated (coarser, noisier — use fewer points and a margin).
    let sim: Vec<f64> = [20.0, 140.0]
        .iter()
        .map(|&rho| {
            let vals: Vec<f64> = grid
                .iter()
                .map(|&p| simulated_reach(rho, p, 5.0, 6))
                .collect();
            argmax(&vals)
        })
        .collect();
    assert!(
        sim[1] < sim[0],
        "simulation p* should fall with density: {sim:?}"
    );
}

#[test]
fn extinction_correction_moves_prediction_toward_simulation() {
    // At rho=80, p=0.03 the mean-field ring model wildly overpredicts the
    // mean simulated reachability because real cascades often go extinct;
    // the Galton–Watson adjustment must land closer.
    use nss_analysis::survival::survival_estimate;

    let mut cfg = RingModelConfig::paper(80.0, 0.03);
    cfg.quad_points = 32;
    let estimate = survival_estimate(&RingModel::new(cfg).run());

    let mut total = 0.0;
    let runs = 20;
    for seed in 0..runs {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 80.0).sample(seed));
        let trace = Executor::new(&topo)
            .gossip(GossipConfig::pb_cam(0.03))
            .run(seed ^ 0x5555);
        total += trace.final_reachability();
    }
    let simulated = total / runs as f64;
    let raw_err = (estimate.mean_field_reachability - simulated).abs();
    let adj_err = (estimate.adjusted_reachability - simulated).abs();
    assert!(
        adj_err < raw_err,
        "correction should help: raw err {raw_err:.3}, adjusted err {adj_err:.3} \
         (sim {simulated:.3}, mean-field {:.3}, adjusted {:.3})",
        estimate.mean_field_reachability,
        estimate.adjusted_reachability
    );
}

#[test]
fn phase_series_semantics_identical_across_sources() {
    // Same metric code must agree on hand-checkable executions from both
    // producers: a CFM flooding run has informed counts equal to BFS level
    // population and one broadcast per reached node.
    let topo = Topology::build(&Deployment::disk(3, 1.0, 25.0).sample(4));
    let mut cfg = GossipConfig::flooding_cam();
    cfg.model = CommunicationModel::Cfm;
    let trace = Executor::new(&topo).gossip(cfg).run(9);
    let series = trace.phase_series();
    series.validate().unwrap();

    let levels = topo.bfs_levels(NodeId::SOURCE);
    let ecc = topo.source_eccentricity(NodeId::SOURCE) as usize;
    for phase in 1..=ecc {
        let expect = levels
            .iter()
            .filter(|&&l| l != u32::MAX && (l as usize) <= phase)
            .count();
        let got = series.informed_cum[phase - 1];
        assert!(
            (got - expect as f64).abs() < 1e-9,
            "phase {phase}: {got} vs BFS {expect}"
        );
    }
}
