//! Reproducibility guarantees across the whole stack: every randomized
//! component must be a pure function of its seed, regardless of thread
//! count — the property that makes recorded experiment seeds meaningful.

use nss::analysis::prelude::*;
use nss::model::prelude::*;
use nss::sim::prelude::*;
use nss_sim::protocols::async_gossip::{run_async_gossip, AsyncGossipConfig};
use nss_sim::protocols::counter::{run_counter_broadcast, CounterConfig};

#[test]
fn deployments_replay_exactly() {
    let spec = Deployment::disk(5, 1.0, 70.0);
    let a = spec.sample(123);
    let b = spec.sample(123);
    assert_eq!(a.positions(), b.positions());
}

#[test]
fn full_pipeline_replays_exactly() {
    let run = || {
        Replication::paper(
            Deployment::disk(4, 1.0, 45.0),
            GossipConfig::pb_cam(0.35),
            5150,
        )
        .with_runs(6)
        .run()
        .traces
        .iter()
        .map(|t| (t.informed_count(), t.total_broadcasts()))
        .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn thread_count_does_not_change_results() {
    let with_threads = |threads| {
        Replication::paper(
            Deployment::disk(4, 1.0, 45.0),
            GossipConfig::pb_cam(0.35),
            31,
        )
        .with_runs(8)
        .with_threads(threads)
        .run()
        .traces
        .iter()
        .map(|t| t.first_rx_phase.clone())
        .collect::<Vec<_>>()
    };
    assert_eq!(with_threads(1), with_threads(4));
}

#[test]
fn analytical_sweep_thread_invariant() {
    let mut base = RingModelConfig::paper(20.0, 0.0);
    base.quad_points = 24;
    let rhos = [20.0, 60.0];
    let probs = [0.1, 0.5, 1.0];
    let a = DensitySweep::run(base, &rhos, &probs, 1);
    let b = DensitySweep::run(base, &rhos, &probs, 4);
    for (ra, rb) in a.grid.iter().zip(&b.grid) {
        for (sa, sb) in ra.iter().zip(rb) {
            assert_eq!(sa.informed_cum, sb.informed_cum);
        }
    }
}

#[test]
fn protocol_variants_replay_exactly() {
    let topo = Topology::build(&Deployment::disk(3, 1.0, 35.0).sample(8));
    let a = run_async_gossip(&topo, &AsyncGossipConfig::paper(0.4), 17);
    let b = run_async_gossip(&topo, &AsyncGossipConfig::paper(0.4), 17);
    assert_eq!(a.first_rx_phase, b.first_rx_phase);

    let a = run_counter_broadcast(&topo, &CounterConfig::paper(3), 17);
    let b = run_counter_broadcast(&topo, &CounterConfig::paper(3), 17);
    assert_eq!(a.first_rx_phase, b.first_rx_phase);
}

#[test]
fn seed_streams_do_not_alias() {
    // Deployment and protocol streams must differ even for equal indices:
    // otherwise topology and coin flips would be correlated.
    let f = SeedFactory::new(99);
    let mut seeds = std::collections::HashSet::new();
    for rep in 0..50 {
        for stream in [Stream::Deployment, Stream::Protocol, Stream::Jitter] {
            assert!(
                seeds.insert(f.seed(stream, rep)),
                "seed collision at rep {rep}, stream {stream:?}"
            );
        }
    }
}
