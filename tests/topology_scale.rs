//! Property tests for the two-pass counting CSR topology builder: the
//! grid-accelerated adjacency must equal brute-force O(n²) adjacency on
//! random fields, at any worker-thread count.

use nss::model::prelude::*;
use proptest::prelude::*;

/// Brute-force unit-disk adjacency: sorted neighbor row per node.
fn brute_force_adjacency(points: &[Point2], r: f64) -> Vec<Vec<u32>> {
    let r2 = r * r;
    (0..points.len())
        .map(|i| {
            (0..points.len())
                .filter(|&j| j != i && points[i].dist_sq(&points[j]) <= r2)
                .map(|j| j as u32)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_matches_brute_force_adjacency(
        pts in proptest::collection::vec((-6.0f64..6.0, -6.0f64..6.0), 1..90),
        r in 0.2f64..4.0,
        threads in 1usize..5,
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let expect = brute_force_adjacency(&points, r);
        let net = DeployedNetwork::from_positions(points, r);
        let topo = Topology::try_build_with_threads(&net, threads).unwrap();
        for (i, row) in expect.iter().enumerate() {
            prop_assert_eq!(
                topo.neighbors(NodeId(i as u32)), row.as_slice(),
                "node {} at {} threads", i, threads
            );
        }
    }

    #[test]
    fn build_is_thread_count_invariant(
        pts in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..120),
        r in 0.2f64..3.0,
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let net = DeployedNetwork::from_positions(points, r);
        let seq = Topology::try_build_with_threads(&net, 1).unwrap();
        for threads in [2, 4] {
            let par = Topology::try_build_with_threads(&net, threads).unwrap();
            for i in 0..seq.len() {
                prop_assert_eq!(
                    seq.neighbors(NodeId(i as u32)),
                    par.neighbors(NodeId(i as u32)),
                    "node {} at {} threads", i, threads
                );
            }
        }
    }
}
