//! Ground-truth validation: the exhaustive enumeration of PB_CAM on tiny
//! topologies (`nss_sim::exact`) against the Monte Carlo simulator, plus a
//! minimal closed-form instance of the paper's core phenomenon.

use nss::model::prelude::*;
use nss::sim::prelude::*;

fn custom(pts: Vec<Point2>, r: f64) -> Topology {
    Topology::build(&DeployedNetwork::from_positions(pts, r))
}

/// The "kite": a triangle (source + two relays) with a tail node reachable
/// only through the two relays, whose simultaneous transmissions collide.
fn kite() -> Topology {
    custom(
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.8, 0.5),
            Point2::new(0.8, -0.5),
            Point2::new(1.7, 0.0),
        ],
        1.05,
    )
}

#[test]
fn kite_interior_optimal_probability_exact() {
    // On the kite with s = 3, E[informed] = 3 + 2p(1−p) + p²·(2/3)
    //                                     = 3 + 2p − (4/3)p²,
    // maximized at p* = 3/4 — an *interior* optimum: the paper's "flooding
    // is not optimal under CAM" phenomenon in its smallest closed-form
    // instance, verified against the exhaustive enumeration.
    let topo = kite();
    let s = 3;
    for p in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let exact = exact_expected_informed(&topo, s, p);
        let formula = 3.0 + 2.0 * p - 4.0 / 3.0 * p * p;
        assert!(
            (exact - formula).abs() < 1e-12,
            "p={p}: exact {exact} vs closed form {formula}"
        );
    }
    // Grid argmax lands on 0.75, strictly beating flooding.
    let mut best = (0.0, 0.0);
    for i in 1..=100 {
        let p = f64::from(i) / 100.0;
        let e = exact_expected_informed(&topo, s, p);
        if e > best.1 {
            best = (p, e);
        }
    }
    assert!((best.0 - 0.75).abs() < 0.011, "argmax {}", best.0);
    let flooding = exact_expected_informed(&topo, s, 1.0);
    assert!(
        best.1 > flooding + 0.05,
        "interior optimum must beat flooding"
    );
}

#[test]
fn simulator_matches_exact_on_assorted_topologies() {
    // Several shapes with distinct collision structure; 20k seeded runs
    // per point must agree with the exhaustive expectation within 5 sigma.
    let cases: Vec<(Topology, f64)> = vec![
        (kite(), 0.6),
        (kite(), 1.0),
        // Y junction: three arms of length 2 around the source.
        (
            custom(
                vec![
                    Point2::new(0.0, 0.0),
                    Point2::new(1.0, 0.0),
                    Point2::new(2.0, 0.0),
                    Point2::new(-0.5, 0.85),
                    Point2::new(-1.0, 1.7),
                    Point2::new(-0.5, -0.85),
                    Point2::new(-1.0, -1.7),
                ],
                1.05,
            ),
            0.7,
        ),
        // Dense clique of 5 + pendant.
        (
            custom(
                vec![
                    Point2::new(0.0, 0.0),
                    Point2::new(0.3, 0.2),
                    Point2::new(0.3, -0.2),
                    Point2::new(-0.3, 0.2),
                    Point2::new(-0.3, -0.2),
                    Point2::new(1.2, 0.0),
                ],
                1.0,
            ),
            0.5,
        ),
    ];
    for (topo, p) in cases {
        let exact = exact_expected_reachability(&topo, 3, p);
        let runs = 20_000u64;
        let mut total = 0.0;
        let cfg = GossipConfig::pb_cam(p);
        for seed in 0..runs {
            total += Executor::new(&topo)
                .gossip(cfg)
                .run(seed)
                .final_reachability();
        }
        let mc = total / runs as f64;
        // Per-run reachability std ≤ 0.5 → SE ≤ 0.0036; 5σ ≈ 0.018.
        assert!(
            (mc - exact).abs() < 0.018,
            "n={}, p={p}: MC {mc:.4} vs exact {exact:.4}",
            topo.len()
        );
    }
}

#[test]
fn exact_flooding_on_clique_single_informant() {
    // Clique of n nodes, flooding with s slots: phase 1 informs everyone
    // (the source transmits alone). E = n regardless of collisions later.
    let pts = (0..5)
        .map(|i| Point2::from_polar(0.3, f64::from(i) * 1.2566))
        .collect();
    let topo = custom(pts, 1.0);
    assert_eq!(topo.degree(NodeId::SOURCE), 4);
    for s in [1, 2, 3] {
        assert!((exact_expected_informed(&topo, s, 1.0) - 5.0).abs() < 1e-12);
    }
}

#[test]
fn exact_shows_slot_count_matters_only_under_contention() {
    // On a pure line there is never contention (one pending transmitter
    // per phase): expected informed is independent of s.
    let line = custom(
        (0..5).map(|i| Point2::new(f64::from(i), 0.0)).collect(),
        1.0,
    );
    let p = 0.7;
    let e1 = exact_expected_informed(&line, 1, p);
    let e4 = exact_expected_informed(&line, 4, p);
    assert!(
        (e1 - e4).abs() < 1e-12,
        "line: s must not matter ({e1} vs {e4})"
    );
    // On the kite, contention makes s matter.
    let k1 = exact_expected_informed(&kite(), 1, 1.0);
    let k4 = exact_expected_informed(&kite(), 4, 1.0);
    assert!(k4 > k1 + 0.5, "kite: slots must matter ({k1} vs {k4})");
}
