//! Property-based tests (proptest) over the core invariants of every layer.

use nss::analysis::prelude::*;
use nss::model::prelude::*;
use nss::sim::prelude::*;
use nss_analysis::mu::mu_closed_form;
use nss_analysis::mu_cs::mu_cs_closed_form;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---------- geometry ----------

    #[test]
    fn lens_area_bounded_and_symmetric(
        r1 in 0.1f64..10.0,
        r2 in 0.1f64..10.0,
        d in 0.0f64..25.0,
    ) {
        let a = lens_area(r1, r2, d);
        let min_disk = disk_area(r1.min(r2));
        prop_assert!(a >= 0.0);
        prop_assert!(a <= min_disk + 1e-9);
        prop_assert!((a - lens_area(r2, r1, d)).abs() < 1e-9);
    }

    #[test]
    fn lens_area_monotone_in_distance(
        r1 in 0.1f64..5.0,
        r2 in 0.1f64..5.0,
        d in 0.0f64..10.0,
        step in 0.001f64..1.0,
    ) {
        prop_assert!(lens_area(r1, r2, d + step) <= lens_area(r1, r2, d) + 1e-9);
    }

    #[test]
    fn ring_partition_never_exceeds_disk(
        p in 2u32..8,
        j in 1u32..8,
        x in 0.0f64..1.0,
        r in 0.2f64..3.0,
    ) {
        let j = j.min(p);
        let geom = RingGeometry::new(p, r);
        let x = x * r;
        let total: f64 = (1..=p).map(|k| geom.a_area(j, x, k)).sum();
        prop_assert!(total <= disk_area(r) + 1e-8);
        // Deep-interior nodes tile the whole disk.
        if j >= 2 && j < p {
            prop_assert!((total - disk_area(r)).abs() < 1e-8,
                "interior partition should tile: {total} vs {}", disk_area(r));
        }
    }

    // ---------- contention probabilities ----------

    #[test]
    fn mu_is_a_probability(k in 0u64..400, s in 1u32..10) {
        let v = mu_closed_form(k, s);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn mu_recursion_equals_closed_form(k in 0u64..120, s in 1u32..7) {
        let table = MuTable::new(s);
        prop_assert!((table.mu(k) - mu_closed_form(k, s)).abs() < 1e-10);
    }

    #[test]
    fn mu_cs_never_exceeds_mu(k1 in 0u64..80, k2 in 0u64..80, s in 1u32..7) {
        let with = mu_cs_closed_form(k1, k2, s);
        let without = mu_closed_form(k1, s);
        prop_assert!(with <= without + 1e-12);
        prop_assert!((mu_cs_closed_form(k1, 0, s) - without).abs() < 1e-12);
    }

    #[test]
    fn mu_evaluator_continuous_at_lattice(k in 0u64..50, s in 1u32..6) {
        let ev = MuEvaluator::new(s, MuMode::Interpolate);
        let kf = k as f64;
        let eps = 1e-9;
        let at = ev.eval(kf);
        prop_assert!((ev.eval(kf + eps) - at).abs() < 1e-6);
        if k > 0 {
            prop_assert!((ev.eval(kf - eps) - at).abs() < 1e-6);
        }
    }

    // ---------- metrics ----------

    #[test]
    fn phase_series_inverse_properties(
        increments in proptest::collection::vec(0.0f64..20.0, 1..12),
        bc_increments in proptest::collection::vec(0.0f64..10.0, 1..12),
        target_frac in 0.01f64..0.99,
    ) {
        let n = increments.len().min(bc_increments.len());
        let mut informed = Vec::new();
        let mut broadcasts = Vec::new();
        let mut acc = 1.0;
        let mut bacc = 1.0;
        for i in 0..n {
            acc += increments[i];
            bacc += bc_increments[i];
            informed.push(acc);
            broadcasts.push(bacc);
        }
        let series = PhaseSeries {
            n_total: acc + 1.0, // ensure informed ≤ n_total
            informed_cum: informed,
            broadcasts_cum: broadcasts,
        };
        prop_assert!(series.validate().is_ok());
        let target = target_frac * series.final_reachability();
        if target > 0.0 {
            if let Some(t) = series.latency_to_reach(target) {
                let back = series.reachability_at_latency(t);
                prop_assert!((back - target).abs() < 1e-6,
                    "inverse broken: target {target}, back {back}");
                let b = series.broadcasts_to_reach(target).unwrap();
                prop_assert!(series.reachability_under_budget(b) >= target - 1e-6);
            }
        }
        // Monotonicity of reachability in latency.
        let quarter = series.phases() as f64 / 4.0;
        prop_assert!(series.reachability_at_latency(quarter)
            <= series.reachability_at_latency(2.0 * quarter) + 1e-12);
    }

    // ---------- simulator ----------

    #[test]
    fn gossip_trace_invariants(
        rho in 5.0f64..40.0,
        prob in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let topo = Topology::build(&Deployment::disk(3, 1.0, rho).sample(seed));
        let trace = Executor::new(&topo).gossip(GossipConfig::pb_cam(prob)).run(seed ^ 0xABCD);
        // Source always informed; it always transmits once.
        prop_assert_eq!(trace.first_rx_phase[0], 0);
        prop_assert!(trace.total_broadcasts() >= 1);
        // Each node transmits at most once.
        prop_assert!(trace.total_broadcasts() <= trace.informed_count() as u64);
        // Reachability can't exceed the connected component.
        let bound = topo.reachable_fraction(NodeId::SOURCE);
        prop_assert!(trace.final_reachability() <= bound + 1e-12);
        // Phase series is well-formed.
        prop_assert!(trace.phase_series().validate().is_ok());
        // No reception earlier than hop distance allows.
        let levels = topo.bfs_levels(NodeId::SOURCE);
        for (v, &phase) in trace.first_rx_phase.iter().enumerate() {
            if phase != NEVER && v != 0 {
                prop_assert!(phase >= levels[v],
                    "node {v} informed in phase {phase} but is {} hops away",
                    levels[v]);
            }
        }
    }

    #[test]
    fn cfm_flooding_exactly_matches_bfs(
        rho in 5.0f64..30.0,
        seed in 0u64..500,
    ) {
        let topo = Topology::build(&Deployment::disk(3, 1.0, rho).sample(seed));
        let mut cfg = GossipConfig::flooding_cam();
        cfg.model = CommunicationModel::Cfm;
        let trace = Executor::new(&topo).gossip(cfg).run(seed);
        let levels = topo.bfs_levels(NodeId::SOURCE);
        for (v, &phase) in trace.first_rx_phase.iter().enumerate() {
            let level = levels[v];
            if level == u32::MAX {
                prop_assert_eq!(phase, NEVER);
            } else {
                prop_assert_eq!(phase, level, "node {} at hop {}", v, level);
            }
        }
    }

    // ---------- spatial index ----------

    #[test]
    fn grid_index_matches_brute_force(
        pts in proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0), 0..120),
        qx in -9.0f64..9.0,
        qy in -9.0f64..9.0,
        radius in 0.1f64..4.0,
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let idx = GridIndex::build(&points, 1.5).unwrap();
        let q = Point2::new(qx, qy);
        let mut got = idx.within(&points, &q, radius);
        got.sort_unstable();
        let mut expect: Vec<NodeId> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist_sq(&q) <= radius * radius)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    // ---------- ring model ----------

    #[test]
    fn ring_model_profiles_always_valid(
        rho in 5.0f64..150.0,
        prob in 0.0f64..1.0,
        s in 1u32..6,
        p_rings in 2u32..7,
    ) {
        let mut cfg = RingModelConfig::paper(rho, prob);
        cfg.s = s;
        cfg.p = p_rings;
        cfg.quad_points = 16;
        cfg.max_phases = 40;
        let profile = RingModel::new(cfg).run();
        let series = profile.phase_series();
        prop_assert!(series.validate().is_ok());
        prop_assert!(series.final_reachability() <= 1.0 + 1e-9);
        // Broadcast accounting: phase i+1 broadcasts = prob · phase i news.
        for i in 1..profile.broadcasts_by_phase.len() {
            let expect = prob * profile.new_in_phase(i);
            prop_assert!((profile.broadcasts_by_phase[i] - expect).abs() < 1e-6);
        }
    }
}
