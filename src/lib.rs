//! # nss — networked sensor system communication models & broadcasting
//!
//! Facade crate re-exporting the whole workspace: the abstract network
//! model ([`model`]), the analytical framework for probability-based
//! broadcasting under the Collision Aware Model ([`analysis`]), the
//! packet-level simulator ([`sim`]), the algorithm-design methodology
//! layer ([`core`]), and the zero-cost instrumentation facade ([`obs`]).
//!
//! This reproduces Yu, Hong & Prasanna, *"On Communication Models for
//! Algorithm Design in Networked Sensor Systems: A Case Study"* (2005).
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub use nss_analysis as analysis;
pub use nss_core as core;
pub use nss_model as model;
pub use nss_obs as obs;
pub use nss_plot as plot;
pub use nss_sim as sim;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use nss_analysis::prelude::*;
    pub use nss_core::prelude::*;
    pub use nss_model::prelude::*;
    pub use nss_sim::prelude::*;
}
