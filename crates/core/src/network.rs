//! The abstract network model of Fig. 1: deployment + communication
//! model + primitives + cost functions, bundled as the single object that
//! algorithm design is performed against.

use nss_model::comm::{CommunicationModel, CostParams, Primitive};
use nss_model::deployment::Deployment;
use nss_model::error::ConfigError;
use serde::{Deserialize, Serialize};

/// The abstract network model an algorithm is designed and optimized
/// against (the middle layer of the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Network deployment (the paper's circle of radius `P·r`, density δ).
    pub deployment: Deployment,
    /// Link-wise communication model (CFM or CAM).
    pub comm: CommunicationModel,
    /// Jitter slots per phase available to algorithms (`s`).
    pub slots: u32,
    /// Per-packet time/energy cost parameters.
    pub costs: CostParams,
}

impl NetworkModel {
    /// The paper's case-study model: disk deployment with `P = 5`, CAM,
    /// `s = 3`, unit costs.
    pub fn paper(rho: f64) -> Self {
        NetworkModel {
            deployment: Deployment::disk(5, 1.0, rho),
            comm: CommunicationModel::CAM,
            slots: 3,
            costs: CostParams::UNIT,
        }
    }

    /// The primitives this model exposes to algorithms (§3.2: broadcast
    /// and unicast at the link layer).
    pub fn primitives(&self) -> &'static [Primitive] {
        &[Primitive::Broadcast, Primitive::Unicast]
    }

    /// Density ρ when the deployment is the paper's disk; `None` for
    /// layouts without a meaningful uniform density (grids, clusters).
    pub fn rho(&self) -> Option<f64> {
        match self.deployment {
            Deployment::Disk(d) => Some(d.rho()),
            Deployment::Grid(_) | Deployment::Cluster(_) => None,
        }
    }

    /// Validates the model's internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.costs.validate()?;
        if self.slots < 1 {
            return Err(ConfigError::TooSmall {
                field: "slots",
                min: 1,
                value: u64::from(self.slots),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_shape() {
        let m = NetworkModel::paper(60.0);
        assert!(m.validate().is_ok());
        assert!((m.rho().unwrap() - 60.0).abs() < 1e-9);
        assert_eq!(m.slots, 3);
        assert!(m.comm.collisions_possible());
        assert_eq!(m.primitives().len(), 2);
    }

    #[test]
    fn grid_model_has_no_rho() {
        let m = NetworkModel {
            deployment: Deployment::Grid(nss_model::deployment::GridDeployment::new(10, 1.0, 1.2)),
            ..NetworkModel::paper(1.0)
        };
        assert!(m.rho().is_none());
    }

    #[test]
    fn invalid_costs_rejected() {
        let mut m = NetworkModel::paper(20.0);
        m.costs.t_a = 5.0; // violates t_a ≤ t_f
        assert!(m.validate().is_err());
        let mut m = NetworkModel::paper(20.0);
        m.slots = 0;
        assert!(m.validate().is_err());
    }
}
