//! Density-oblivious adaptive probability selection (§6 / Fig. 12).
//!
//! The paper observes that the ratio between the latency-optimal broadcast
//! probability `p*(ρ)` and the flooding per-broadcast success rate `sr(ρ)`
//! is nearly constant (≈ 11) across densities. Since a node can *measure*
//! the local success rate (count which neighbors acknowledge hearing a
//! probe) without knowing ρ, this yields a practical tuning rule:
//!
//! `p ≈ clamp(ratio · sr_measured, 0, 1)`.
//!
//! This module calibrates the ratio on the analytical model, estimates the
//! success rate by simulated probing, and evaluates the adaptive rule
//! against the oracle (density-aware) optimum.

use crate::network::NetworkModel;
use nss_analysis::flooding::success_rate_correlation;
use nss_analysis::optimize::{Objective, ProbabilitySweep};
use nss_analysis::ring_model::RingModelConfig;
use nss_model::deployment::Deployment;
use nss_model::rng::{SeedFactory, Stream};
use nss_model::topology::Topology;
use nss_sim::executor::Executor;
use nss_sim::slotted::GossipConfig;
use serde::{Deserialize, Serialize};

/// A calibrated success-rate → probability controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    /// The calibrated `p*/sr` ratio.
    pub ratio: f64,
}

impl AdaptiveController {
    /// Calibrates the ratio on the analytical model over a density range
    /// (the Fig. 12 computation), averaging `p*/sr` across densities.
    pub fn calibrate(base: RingModelConfig, rhos: &[f64], latency_phases: f64) -> Self {
        assert!(!rhos.is_empty(), "need at least one calibration density");
        let rows =
            success_rate_correlation(base, rhos, &ProbabilitySweep::paper_grid(), latency_phases);
        let ratios: Vec<f64> = rows
            .iter()
            .map(|r| r.ratio)
            .filter(|r| r.is_finite())
            .collect();
        assert!(!ratios.is_empty(), "calibration produced no finite ratios");
        AdaptiveController {
            ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
        }
    }

    /// Maps a measured success rate to a broadcast probability.
    pub fn probability(&self, success_rate: f64) -> f64 {
        (self.ratio * success_rate).clamp(0.0, 1.0)
    }
}

/// Maps per-node measured success rates to per-node broadcast
/// probabilities with the calibrated ratio — the spatially-adaptive
/// variant of the §6 rule for deployments with density hotspots.
/// Feed the result to [`Executor::per_node_probs`].
pub fn per_node_probabilities(controller: &AdaptiveController, rates: &[f64]) -> Vec<f64> {
    rates.iter().map(|&sr| controller.probability(sr)).collect()
}

/// Estimates the flooding success rate on a concrete topology by running
/// `probes` seeded flooding executions with per-broadcast tracking and
/// averaging — the measurable quantity the controller consumes.
pub fn measure_success_rate(topo: &Topology, s: u32, probes: u32, master_seed: u64) -> f64 {
    let factory = SeedFactory::new(master_seed);
    let mut cfg = GossipConfig::flooding_cam();
    cfg.s = s;
    cfg.track_success_rate = true;
    let mut total = 0.0;
    let mut count = 0u32;
    for i in 0..probes {
        let trace = Executor::new(topo)
            .gossip(cfg)
            .run(factory.seed(Stream::Protocol, u64::from(i)));
        if let Some(sr) = trace.mean_success_rate() {
            total += sr;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / f64::from(count)
    }
}

/// Result of evaluating the adaptive rule on one network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// Measured flooding success rate on the deployed network.
    pub measured_success_rate: f64,
    /// Probability selected by the adaptive rule.
    pub adaptive_prob: f64,
    /// Mean reachability-in-budget achieved by the adaptive probability.
    pub adaptive_reach: f64,
    /// Oracle (analytical, density-aware) optimal probability.
    pub oracle_prob: f64,
    /// Mean reachability achieved by the oracle probability.
    pub oracle_reach: f64,
}

impl AdaptiveOutcome {
    /// How much of the oracle's reachability the adaptive rule captures.
    pub fn efficiency(&self) -> f64 {
        if self.oracle_reach <= 0.0 {
            return 1.0;
        }
        self.adaptive_reach / self.oracle_reach
    }
}

/// Evaluates the adaptive rule end-to-end on the paper's network model:
/// probe → choose `p` → run PB_CAM, compared against the analytical oracle.
pub fn evaluate_adaptive(
    model: &NetworkModel,
    controller: &AdaptiveController,
    latency_phases: f64,
    replications: u32,
    master_seed: u64,
) -> AdaptiveOutcome {
    let Deployment::Disk(d) = model.deployment else {
        // nss-lint: allow(panic-hygiene) — documented precondition of the adaptive experiment; only the disk deployment defines a true density
        panic!("adaptive evaluation requires the disk deployment");
    };
    let factory = SeedFactory::new(master_seed);

    // Oracle: analytical optimum at the true (unknown to the node) density.
    let mut ring = RingModelConfig::paper(d.rho(), 0.0);
    ring.p = d.p_factor;
    ring.s = model.slots;
    ring.r = d.comm_radius;
    let oracle = ProbabilitySweep::run(ring, &ProbabilitySweep::paper_grid())
        .optimum(Objective::MaxReachAtLatency {
            phases: latency_phases,
        })
        .expect("max objective always feasible"); // nss-lint: allow(panic-hygiene) — MaxReachAtLatency is total over a non-empty grid, so an optimum always exists

    // Probe + run on fresh deployments per replication.
    let mut sr_total = 0.0;
    let mut adaptive_total = 0.0;
    let mut oracle_total = 0.0;
    for rep in 0..replications {
        let net = model
            .deployment
            .sample(factory.seed(Stream::Deployment, u64::from(rep)));
        let topo = Topology::build(&net);
        let sr = measure_success_rate(
            &topo,
            model.slots,
            1,
            factory.seed(Stream::Jitter, u64::from(rep)),
        );
        sr_total += sr;
        let p_adaptive = controller.probability(sr);

        let seed = factory.seed(Stream::Protocol, u64::from(rep));
        let mut cfg = GossipConfig::pb_cam(p_adaptive);
        cfg.s = model.slots;
        adaptive_total += Executor::new(&topo)
            .gossip(cfg)
            .run(seed)
            .phase_series()
            .reachability_at_latency(latency_phases);
        let mut cfg = GossipConfig::pb_cam(oracle.prob);
        cfg.s = model.slots;
        oracle_total += Executor::new(&topo)
            .gossip(cfg)
            .run(seed)
            .phase_series()
            .reachability_at_latency(latency_phases);
    }
    let n = f64::from(replications.max(1));
    let sr_mean = sr_total / n;
    AdaptiveOutcome {
        measured_success_rate: sr_mean,
        adaptive_prob: controller.probability(sr_mean),
        adaptive_reach: adaptive_total / n,
        oracle_prob: oracle.prob,
        oracle_reach: oracle_total / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_ring() -> RingModelConfig {
        let mut cfg = RingModelConfig::paper(60.0, 1.0);
        cfg.quad_points = 32;
        cfg
    }

    #[test]
    fn calibration_produces_sane_ratio() {
        let ctl = AdaptiveController::calibrate(fast_ring(), &[40.0, 100.0], 5.0);
        assert!(
            ctl.ratio > 1.0 && ctl.ratio < 50.0,
            "implausible ratio {}",
            ctl.ratio
        );
    }

    #[test]
    fn probability_clamps() {
        let ctl = AdaptiveController { ratio: 11.0 };
        assert_eq!(ctl.probability(0.0), 0.0);
        assert_eq!(ctl.probability(1.0), 1.0);
        let p = ctl.probability(0.02);
        assert!((p - 0.22).abs() < 1e-12);
    }

    #[test]
    fn measured_success_rate_falls_with_density() {
        let lo = Topology::build(&Deployment::disk(4, 1.0, 20.0).sample(1));
        let hi = Topology::build(&Deployment::disk(4, 1.0, 100.0).sample(1));
        let sr_lo = measure_success_rate(&lo, 3, 3, 7);
        let sr_hi = measure_success_rate(&hi, 3, 3, 7);
        assert!(sr_lo > 0.0 && sr_lo <= 1.0);
        assert!(sr_hi > 0.0 && sr_hi <= 1.0);
        assert!(
            sr_hi < sr_lo,
            "denser → more collisions: {sr_hi} !< {sr_lo}"
        );
    }

    #[test]
    fn per_node_mapping_clamps_and_aligns() {
        let ctl = AdaptiveController { ratio: 10.0 };
        let rates = [0.0, 0.05, 0.2, 1.0];
        let probs = per_node_probabilities(&ctl, &rates);
        assert_eq!(probs.len(), 4);
        assert_eq!(probs[0], 0.0);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        assert_eq!(probs[2], 1.0); // clamped
        assert_eq!(probs[3], 1.0);
    }

    #[test]
    fn adaptive_rule_competitive_with_oracle() {
        let model = NetworkModel::paper(80.0);
        let ctl = AdaptiveController::calibrate(fast_ring(), &[40.0, 100.0], 5.0);
        let out = evaluate_adaptive(&model, &ctl, 5.0, 4, 99);
        assert!(out.measured_success_rate > 0.0);
        assert!(out.adaptive_prob > 0.0 && out.adaptive_prob <= 1.0);
        assert!(
            out.efficiency() > 0.6,
            "adaptive rule too far from oracle: {:?}",
            out
        );
    }
}
