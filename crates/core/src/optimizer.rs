//! Metric-driven selection of the broadcast probability, with simulated
//! validation — the "performance analysis → refine → choose p" loop of the
//! paper's Fig. 1(b).

use crate::network::NetworkModel;
use nss_analysis::mu::MuMode;
use nss_analysis::optimize::{Objective, Optimum, ProbabilitySweep};
use nss_analysis::ring_model::RingModelConfig;
use nss_model::comm::{CollisionRule, CommunicationModel, MediumBackend};
use nss_model::deployment::Deployment;
use nss_model::error::ConfigError;
use nss_sim::runner::{ReplicatedTraces, Replication};
use nss_sim::slotted::GossipConfig;
use serde::{Deserialize, Serialize};

/// Design-time optimizer: evaluates the analytical model over a probability
/// grid and picks the best `p` for a §4.1 objective.
#[derive(Debug, Clone)]
pub struct DesignOptimizer {
    model: NetworkModel,
    grid: Vec<f64>,
    quad_points: usize,
}

impl DesignOptimizer {
    /// Creates an optimizer for the given network model (must be a disk
    /// deployment under CAM — the configuration the analysis covers).
    pub fn new(model: NetworkModel) -> Result<Self, ConfigError> {
        model.validate()?;
        if model.rho().is_none() {
            return Err(ConfigError::Inconsistent {
                what: "analytical optimization requires the disk deployment",
                at: None,
            });
        }
        if !model.comm.collisions_possible() {
            return Err(ConfigError::Inconsistent {
                what: "PB_CAM optimization targets the Collision Aware Model",
                at: None,
            });
        }
        Ok(DesignOptimizer {
            model,
            grid: ProbabilitySweep::paper_grid(),
            quad_points: 64,
        })
    }

    /// Overrides the probability grid (default: the paper's 0.01..1.00).
    pub fn with_grid(mut self, grid: Vec<f64>) -> Self {
        assert!(!grid.is_empty(), "empty probability grid");
        self.grid = grid;
        self
    }

    /// Overrides the quadrature resolution (speed/accuracy knob).
    pub fn with_quad_points(mut self, q: usize) -> Self {
        self.quad_points = q;
        self
    }

    /// The analytical ring-model configuration implied by the network
    /// model (with a placeholder probability).
    pub fn ring_config(&self) -> RingModelConfig {
        let Deployment::Disk(d) = self.model.deployment else {
            unreachable!("checked in constructor");
        };
        let collision = match self.model.comm {
            CommunicationModel::Cam(rule) => rule,
            CommunicationModel::Cfm => CollisionRule::TransmissionRange,
        };
        let mut cfg = RingModelConfig::paper(d.rho(), 0.0);
        cfg.p = d.p_factor;
        cfg.s = self.model.slots;
        cfg.r = d.comm_radius;
        cfg.collision = collision;
        cfg.mu_mode = MuMode::Interpolate;
        cfg.quad_points = self.quad_points;
        cfg
    }

    /// Selects the best probability for `objective` on the analytical
    /// model. `None` when no grid point satisfies the constraint.
    pub fn choose(&self, objective: Objective) -> Option<Optimum> {
        ProbabilitySweep::run(self.ring_config(), &self.grid).optimum(objective)
    }

    /// Validates a chosen probability by simulation: runs `replications`
    /// seeded executions of PB_CAM at `prob` and returns the traces for
    /// metric extraction.
    pub fn validate(&self, prob: f64, replications: u32, master_seed: u64) -> ReplicatedTraces {
        let gossip = GossipConfig {
            s: self.model.slots,
            prob,
            model: self.model.comm,
            max_phases: 10_000,
            track_success_rate: false,
            node_failure_per_phase: 0.0,
            backend: MediumBackend::UnitDisk,
        };
        Replication::paper(self.model.deployment, gossip, master_seed)
            .with_runs(replications)
            .run()
    }

    /// Full design loop: choose `p` analytically, validate by simulation,
    /// and report predicted vs measured values of the objective.
    pub fn design(
        &self,
        objective: Objective,
        replications: u32,
        master_seed: u64,
    ) -> Option<DesignReport> {
        let optimum = self.choose(objective)?;
        let traces = self.validate(optimum.prob, replications, master_seed);
        let measured: Vec<Option<f64>> = traces
            .series()
            .iter()
            .map(|s| objective.evaluate(s))
            .collect();
        let (summary, feasible) = nss_sim::stats::Summary::of_feasible(&measured);
        Some(DesignReport {
            objective,
            optimum,
            measured_mean: summary.mean,
            measured_std: summary.std_dev,
            feasible_fraction: feasible,
            replications,
        })
    }
}

/// Outcome of one design-and-validate cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// The optimized objective.
    pub objective: Objective,
    /// Analytically chosen probability and predicted metric value.
    pub optimum: Optimum,
    /// Simulated mean of the metric at the chosen probability.
    pub measured_mean: f64,
    /// Simulated standard deviation.
    pub measured_std: f64,
    /// Fraction of replications satisfying the constraint.
    pub feasible_fraction: f64,
    /// Number of replications run.
    pub replications: u32,
}

impl DesignReport {
    /// Relative gap between prediction and measurement (measured −
    /// predicted, as a fraction of the prediction's magnitude).
    pub fn relative_gap(&self) -> f64 {
        if self.optimum.value.abs() < f64::EPSILON {
            return 0.0;
        }
        (self.measured_mean - self.optimum.value) / self.optimum.value.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;

    fn fast_optimizer(rho: f64) -> DesignOptimizer {
        DesignOptimizer::new(NetworkModel::paper(rho))
            .unwrap()
            .with_grid((1..=10).map(|i| f64::from(i) / 10.0).collect())
            .with_quad_points(32)
    }

    #[test]
    fn rejects_incompatible_models() {
        let mut m = NetworkModel::paper(40.0);
        m.comm = CommunicationModel::Cfm;
        assert!(DesignOptimizer::new(m).is_err());
        let m = NetworkModel {
            deployment: Deployment::Grid(nss_model::deployment::GridDeployment::new(5, 1.0, 1.0)),
            ..NetworkModel::paper(40.0)
        };
        assert!(DesignOptimizer::new(m).is_err());
    }

    #[test]
    fn ring_config_mirrors_model() {
        let opt = fast_optimizer(60.0);
        let cfg = opt.ring_config();
        assert_eq!(cfg.p, 5);
        assert_eq!(cfg.s, 3);
        assert!((cfg.rho - 60.0).abs() < 1e-9);
    }

    #[test]
    fn choose_picks_feasible_optimum() {
        let opt = fast_optimizer(60.0);
        let best = opt
            .choose(Objective::MaxReachAtLatency { phases: 5.0 })
            .unwrap();
        assert!(best.prob > 0.0 && best.prob <= 1.0);
        assert!(best.value > 0.3, "optimum reachability {}", best.value);
        // Flooding must not be the optimum at this density.
        assert!(best.prob < 1.0);
    }

    #[test]
    fn design_loop_prediction_close_to_simulation() {
        let opt = fast_optimizer(60.0);
        let report = opt
            .design(Objective::MaxReachAtLatency { phases: 5.0 }, 8, 42)
            .unwrap();
        assert_eq!(report.replications, 8);
        assert!(report.feasible_fraction > 0.99);
        assert!(report.measured_mean > 0.0 && report.measured_mean <= 1.0);
        // The paper finds analysis and simulation agree on shape; allow a
        // generous band for the absolute level on few replications.
        assert!(
            report.relative_gap().abs() < 0.4,
            "prediction {} vs measured {} gap too large",
            report.optimum.value,
            report.measured_mean
        );
    }

    #[test]
    fn infeasible_objective_gives_none() {
        let opt = fast_optimizer(20.0);
        assert!(opt
            .design(Objective::MinLatencyForReach { target: 1.01 }, 2, 1)
            .is_none());
    }
}
