//! Algorithm specification with tunable parameters (Fig. 1's "algorithm
//! specification" box).
//!
//! The paper's methodology separates *what* the algorithm does (its
//! specification against the network model's primitives) from *how its
//! parameters are set* (design-time optimization against cost functions).
//! This module captures that separation for the broadcasting family: a
//! [`BroadcastAlgorithm`] names the scheme and its tunable parameter, and
//! [`BroadcastAlgorithm::instantiate`] lowers it onto the simulator.

use nss_model::comm::{CommunicationModel, MediumBackend};
use nss_model::error::ConfigError;
use nss_sim::slotted::GossipConfig;
use serde::{Deserialize, Serialize};

/// The broadcasting schemes studied by the paper (§4) and its cited
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BroadcastAlgorithm {
    /// Simple flooding: every informed node rebroadcasts exactly once.
    SimpleFlooding,
    /// Probability-based broadcasting with tunable probability `p`.
    ProbabilityBased {
        /// The broadcast probability — the design parameter the paper's
        /// case study optimizes.
        prob: f64,
    },
    /// Counter-based suppression with threshold `C` (future-work family).
    CounterBased {
        /// Duplicate-count threshold.
        threshold: u32,
    },
}

impl BroadcastAlgorithm {
    /// The tunable parameter's value, if the scheme has one.
    pub fn parameter(&self) -> Option<f64> {
        match *self {
            BroadcastAlgorithm::SimpleFlooding => None,
            BroadcastAlgorithm::ProbabilityBased { prob } => Some(prob),
            BroadcastAlgorithm::CounterBased { threshold } => Some(f64::from(threshold)),
        }
    }

    /// Validates the parameterization.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            BroadcastAlgorithm::ProbabilityBased { prob } => {
                if !(0.0..=1.0).contains(&prob) {
                    return Err(ConfigError::OutOfUnitRange {
                        field: "broadcast probability",
                        value: prob,
                    });
                }
            }
            BroadcastAlgorithm::CounterBased { threshold } => {
                if threshold == 0 {
                    return Err(ConfigError::TooSmall {
                        field: "counter threshold",
                        min: 1,
                        value: u64::from(threshold),
                    });
                }
            }
            BroadcastAlgorithm::SimpleFlooding => {}
        }
        Ok(())
    }

    /// Lowers the specification onto the slotted simulator for gossip-style
    /// schemes. Counter-based uses its own executor
    /// ([`nss_sim::protocols::counter`]), so it returns `None` here.
    pub fn instantiate(&self, model: CommunicationModel, s: u32) -> Option<GossipConfig> {
        match *self {
            BroadcastAlgorithm::SimpleFlooding => Some(GossipConfig {
                s,
                prob: 1.0,
                model,
                max_phases: 10_000,
                track_success_rate: false,
                node_failure_per_phase: 0.0,
                backend: MediumBackend::UnitDisk,
            }),
            BroadcastAlgorithm::ProbabilityBased { prob } => Some(GossipConfig {
                s,
                prob,
                model,
                max_phases: 10_000,
                track_success_rate: false,
                node_failure_per_phase: 0.0,
                backend: MediumBackend::UnitDisk,
            }),
            BroadcastAlgorithm::CounterBased { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters() {
        assert_eq!(BroadcastAlgorithm::SimpleFlooding.parameter(), None);
        assert_eq!(
            BroadcastAlgorithm::ProbabilityBased { prob: 0.3 }.parameter(),
            Some(0.3)
        );
        assert_eq!(
            BroadcastAlgorithm::CounterBased { threshold: 4 }.parameter(),
            Some(4.0)
        );
    }

    #[test]
    fn validation() {
        assert!(BroadcastAlgorithm::SimpleFlooding.validate().is_ok());
        assert!(BroadcastAlgorithm::ProbabilityBased { prob: 0.5 }
            .validate()
            .is_ok());
        assert!(BroadcastAlgorithm::ProbabilityBased { prob: 1.5 }
            .validate()
            .is_err());
        assert!(BroadcastAlgorithm::CounterBased { threshold: 0 }
            .validate()
            .is_err());
    }

    #[test]
    fn instantiation() {
        let cam = CommunicationModel::CAM;
        let cfg = BroadcastAlgorithm::SimpleFlooding
            .instantiate(cam, 3)
            .unwrap();
        assert_eq!(cfg.prob, 1.0);
        let cfg = BroadcastAlgorithm::ProbabilityBased { prob: 0.2 }
            .instantiate(cam, 4)
            .unwrap();
        assert_eq!(cfg.prob, 0.2);
        assert_eq!(cfg.s, 4);
        assert!(BroadcastAlgorithm::CounterBased { threshold: 3 }
            .instantiate(cam, 3)
            .is_none());
    }
}
