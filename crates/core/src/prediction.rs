//! Quantifying the CFM/CAM prediction gap for simple flooding.
//!
//! The paper's motivating claim (§1.2, §4): analyzing simple flooding under
//! CFM predicts reachability 1 with latency `O(P)` phases and energy
//! `O(N)`, but those predictions are "inaccurate or even misleading" once
//! packet collisions exist. This module computes the CFM predictions
//! exactly (they are graph properties) and measures the CAM reality by
//! simulation, packaging the gap the paper motivates with.

use crate::network::NetworkModel;
use nss_model::ids::NodeId;
use nss_model::rng::{SeedFactory, Stream};
use nss_model::topology::Topology;
use nss_sim::executor::Executor;
use nss_sim::slotted::GossipConfig;
use nss_sim::stats::Summary;
use serde::{Deserialize, Serialize};

/// CFM's analytical predictions for simple flooding on one topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfmPrediction {
    /// Predicted reachability: the connected fraction from the source
    /// (exactly 1 in the paper's idealized connected network).
    pub reachability: f64,
    /// Predicted latency in phases: the source's graph eccentricity
    /// (information moves one hop per phase under CFM).
    pub latency_phases: f64,
    /// Predicted broadcast count: every reached node broadcasts once.
    pub broadcasts: f64,
}

/// Measured CAM behavior of simple flooding on the same deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CamMeasurement {
    /// Mean final reachability (unbounded time — collisions mostly slow
    /// the cascade rather than stop it).
    pub final_reachability: Summary,
    /// Mean reachability at the CFM-predicted completion time (the
    /// source's eccentricity in phases) — where the CFM promise is
    /// actually broken.
    pub reachability_at_cfm_latency: Summary,
    /// Mean latency (phases) until the cascade died.
    pub latency_phases: Summary,
    /// Mean broadcast count.
    pub broadcasts: Summary,
}

/// The paper's motivating gap, for one network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapReport {
    /// What CFM analysis promises.
    pub cfm: CfmPrediction,
    /// What CAM execution delivers.
    pub cam: CamMeasurement,
}

impl GapReport {
    /// Reachability shortfall at the CFM-predicted completion time: CFM
    /// promises full coverage by the eccentricity phase; CAM delivers this
    /// much less.
    pub fn reachability_gap(&self) -> f64 {
        self.cfm.reachability - self.cam.reachability_at_cfm_latency.mean
    }

    /// Latency inflation: how much longer the CAM cascade ran than CFM's
    /// predicted completion time.
    pub fn latency_inflation(&self) -> f64 {
        if self.cfm.latency_phases <= 0.0 {
            return 1.0;
        }
        self.cam.latency_phases.mean / self.cfm.latency_phases
    }
}

/// Computes the CFM prediction and the CAM measurement for simple flooding
/// on `replications` fresh deployments of `model`.
pub fn flooding_gap(model: &NetworkModel, replications: u32, master_seed: u64) -> GapReport {
    let factory = SeedFactory::new(master_seed);
    let mut cfm_reach = Vec::new();
    let mut cfm_lat = Vec::new();
    let mut cfm_bc = Vec::new();
    let mut cam_reach = Vec::new();
    let mut cam_reach_at = Vec::new();
    let mut cam_lat = Vec::new();
    let mut cam_bc = Vec::new();

    for rep in 0..replications {
        let net = model
            .deployment
            .sample(factory.seed(Stream::Deployment, u64::from(rep)));
        let topo = Topology::build(&net);

        // CFM prediction: pure graph analysis, no simulation needed.
        let ecc = f64::from(topo.source_eccentricity(NodeId::SOURCE));
        cfm_reach.push(topo.reachable_fraction(NodeId::SOURCE));
        cfm_lat.push(ecc);
        cfm_bc.push(
            topo.bfs_levels(NodeId::SOURCE)
                .iter()
                .filter(|&&l| l != u32::MAX)
                .count() as f64,
        );

        // CAM reality.
        let mut cfg = GossipConfig::flooding_cam();
        cfg.s = model.slots;
        let trace = Executor::new(&topo)
            .gossip(cfg)
            .run(factory.seed(Stream::Protocol, u64::from(rep)));
        cam_reach.push(trace.final_reachability());
        cam_reach_at.push(trace.phase_series().reachability_at_latency(ecc));
        cam_lat.push(trace.phases() as f64);
        cam_bc.push(trace.total_broadcasts() as f64);
    }

    GapReport {
        cfm: CfmPrediction {
            reachability: mean(&cfm_reach),
            latency_phases: mean(&cfm_lat),
            broadcasts: mean(&cfm_bc),
        },
        cam: CamMeasurement {
            final_reachability: Summary::of(&cam_reach),
            reachability_at_cfm_latency: Summary::of(&cam_reach_at),
            latency_phases: Summary::of(&cam_lat),
            broadcasts: Summary::of(&cam_bc),
        },
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_grows_with_density() {
        let sparse = flooding_gap(&NetworkModel::paper(20.0), 4, 5);
        let dense = flooding_gap(&NetworkModel::paper(120.0), 4, 5);
        // CFM promises ≈ full coverage at both densities...
        assert!(sparse.cfm.reachability > 0.9);
        assert!(dense.cfm.reachability > 0.99);
        // ...but CAM flooding degrades as density rises.
        assert!(
            dense.reachability_gap() > sparse.reachability_gap(),
            "gap should grow with density: sparse {:.3}, dense {:.3}",
            sparse.reachability_gap(),
            dense.reachability_gap()
        );
        assert!(
            dense.reachability_gap() > 0.1,
            "dense flooding should visibly miss CFM's promise"
        );
        // ...and run far longer than the CFM-predicted completion time.
        assert!(
            dense.latency_inflation() > 1.3,
            "latency inflation {}",
            dense.latency_inflation()
        );
    }

    #[test]
    fn cfm_broadcast_prediction_counts_reached_nodes() {
        let report = flooding_gap(&NetworkModel::paper(40.0), 3, 9);
        // Under CFM every reached node broadcasts once: count ≈ reach · N.
        let n = 40.0 * 25.0;
        assert!(
            (report.cfm.broadcasts - report.cfm.reachability * n).abs() < 1.0,
            "CFM broadcasts {} vs reach·N {}",
            report.cfm.broadcasts,
            report.cfm.reachability * n
        );
    }

    #[test]
    fn cam_never_beats_cfm_reachability() {
        for rho in [20.0, 60.0] {
            let r = flooding_gap(&NetworkModel::paper(rho), 3, 11);
            assert!(
                r.cam.final_reachability.mean <= r.cfm.reachability + 1e-9,
                "rho={rho}: CAM {} > CFM {}",
                r.cam.final_reachability.mean,
                r.cfm.reachability
            );
        }
    }
}
