//! # nss-core — the algorithm-design methodology layer
//!
//! The top of the paper's Fig. 1 stack: algorithms are specified against an
//! abstract [`network::NetworkModel`] (deployment + communication model +
//! primitives + cost functions), their tunable parameters are optimized
//! against the analytical framework, and the result is validated on the
//! packet-level simulator.
//!
//! * [`network`] — the abstract network model bundle.
//! * [`algorithm`] — broadcast algorithm specifications with tunable
//!   parameters.
//! * [`optimizer`] — the design loop: choose `p` analytically, validate by
//!   simulation (Fig. 1b).
//! * [`adaptive`] — the §6/Fig. 12 density-oblivious tuning rule
//!   (`p ≈ ratio · success_rate`).
//! * [`prediction`] — the CFM-vs-CAM flooding gap that motivates the paper.
//!
//! ```
//! use nss_core::prelude::*;
//!
//! let model = NetworkModel::paper(60.0);
//! let optimizer = DesignOptimizer::new(model)
//!     .unwrap()
//!     .with_grid((1..=10).map(|i| f64::from(i) / 10.0).collect())
//!     .with_quad_points(24);
//! let best = optimizer
//!     .choose(Objective::MaxReachAtLatency { phases: 5.0 })
//!     .unwrap();
//! assert!(best.prob < 1.0); // flooding is not optimal at rho = 60
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod algorithm;
pub mod network;
pub mod optimizer;
pub mod prediction;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::adaptive::{
        evaluate_adaptive, measure_success_rate, per_node_probabilities, AdaptiveController,
        AdaptiveOutcome,
    };
    pub use crate::algorithm::BroadcastAlgorithm;
    pub use crate::network::NetworkModel;
    pub use crate::optimizer::{DesignOptimizer, DesignReport};
    pub use crate::prediction::{flooding_gap, CfmPrediction, GapReport};
    pub use nss_analysis::optimize::Objective;
}

pub use prelude::*;
