//! Item-level parse over the token stream: `fn` items, `impl` blocks, and
//! `use` imports.
//!
//! This is the structural layer the interprocedural rules (lock-order,
//! nondeterminism-taint, blocking-in-handler) stand on. Like everything in
//! this crate it is deliberately heuristic — no `syn` under the vendored
//! no-network constraint — so it extracts exactly what the rules consume
//! and nothing more: which functions exist, which impl type owns them,
//! where their bodies start and end in the token stream, which parameters
//! are callable (closures whose invocation under a lock the rules must
//! see), and which call sites each body contains. Precision limits are
//! documented on [`CallSite`]; the pragma escape hatch covers the rest.

use crate::lexer::{Tok, TokKind};
use crate::SourceFile;
use std::collections::BTreeSet;

/// Keywords that look like `ident (` call heads but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "move", "in", "as", "fn",
    "impl", "where", "use", "pub", "mod",
];

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` receivers are skipped entirely).
    pub name: String,
    /// Type mentions `Fn`/`FnMut`/`FnOnce`/`fn` — invoking it runs
    /// caller-supplied code.
    pub is_callable: bool,
}

/// One `fn` item (free function or method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Owning impl type for methods (`ShardedCache`), `None` for free fns.
    pub qual: Option<String>,
    /// Index of the containing file in the workspace file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body `{` and its matching `}`; `None` for
    /// trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Identifier tokens of the return type (empty for `()`).
    pub ret: Vec<String>,
    /// Declared inside `#[cfg(test)]`/`#[test]` code (or a test file).
    pub is_test: bool,
}

/// One call site inside a function body.
///
/// Precision notes: macro invocations (`name!(…)`) are not calls, struct
/// literals are not calls, and a bare `f(…)` where `f` is a callable
/// parameter is reported with `name == f` and resolved by the call graph
/// against the enclosing function's parameter list.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name (last path segment).
    pub name: String,
    /// `recv.name(…)` method-call shape.
    pub method: bool,
    /// Last path segment before `::name(…)` (`Topology::build` → `Topology`),
    /// when present.
    pub prefix: Option<String>,
    /// Token index of the name.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
}

/// Parses every `fn` item of `file` (which sits at index `file_idx` in the
/// workspace file list).
pub fn parse_fns(file_idx: usize, file: &SourceFile) -> Vec<FnItem> {
    let toks = &file.toks;
    let n = toks.len();
    // Impl frames: (body-close token, type name).
    let mut impls: Vec<(usize, String)> = Vec::new();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((open, name)) = impl_header(file, i) {
                if let Some(close) = file.match_delim(open) {
                    impls.push((close, name));
                    i = open + 1;
                    continue;
                }
            }
        } else if t.is_ident("fn") && i + 1 < n && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = t.line;
            let qual = impls
                .iter()
                .rev()
                .find(|(close, _)| i < *close)
                .map(|(_, ty)| ty.clone());
            // Skip optional generics between the name and the `(`, noting
            // which type parameters carry `Fn`-family bounds.
            let mut j = i + 2;
            let mut callable_tys = BTreeSet::new();
            if j < n && toks[j].is_punct("<") {
                let end = skip_angles(file, j);
                callable_tys = callable_generics(&toks[j..end]);
                j = end;
            }
            let (params, after_params) = if j < n && toks[j].is_punct("(") {
                let close = file.match_delim(j).unwrap_or(j);
                (parse_params(file, j, close, &callable_tys), close + 1)
            } else {
                (Vec::new(), j)
            };
            // Return-type idents, then body `{` or declaration `;`.
            let mut ret = Vec::new();
            let mut k = after_params;
            let mut saw_arrow = false;
            let mut body = None;
            while k < n {
                let t = &toks[k];
                if t.is_punct("->") {
                    saw_arrow = true;
                } else if t.is_punct("<") {
                    k = skip_angles(file, k);
                    continue;
                } else if t.is_punct("{") {
                    if let Some(close) = file.match_delim(k) {
                        body = Some((k, close));
                    }
                    break;
                } else if t.is_punct(";") {
                    break;
                } else if saw_arrow && t.kind == TokKind::Ident && !t.is_ident("where") {
                    ret.push(t.text.clone());
                } else if t.is_ident("where") {
                    saw_arrow = false;
                }
                k += 1;
            }
            out.push(FnItem {
                name,
                qual,
                file: file_idx,
                line,
                body,
                params,
                ret,
                is_test: file.is_test_line(line),
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Resolves an `impl` header starting at token `at` to its body-open `{`
/// and the implemented type name (`impl Trait for Type` → `Type`).
fn impl_header(file: &SourceFile, at: usize) -> Option<(usize, String)> {
    let toks = &file.toks;
    let n = toks.len();
    let mut j = at + 1;
    if j < n && toks[j].is_punct("<") {
        j = skip_angles(file, j);
    }
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < n {
        let t = &toks[j];
        if t.is_punct("{") {
            return after_for.or(first_ident).map(|name| (j, name));
        }
        if t.is_punct(";") || t.is_ident("fn") {
            return None;
        }
        if t.is_punct("<") {
            j = skip_angles(file, j);
            continue;
        }
        if t.is_ident("for") {
            saw_for = true;
        } else if t.kind == TokKind::Ident && !t.is_ident("where") && !t.is_ident("dyn") {
            if saw_for {
                if after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
            } else {
                // Keep the *last* pre-`for` ident: `impl fmt::Display` →
                // `Display`; overwritten path segments are fine.
                first_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Skips a balanced `<…>` region starting at `open` (which must be `<`);
/// returns the index just past the matching `>`. `->` is a distinct token
/// and never miscounts.
fn skip_angles(file: &SourceFile, open: usize) -> usize {
    let toks = &file.toks;
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("<") {
            depth += 1;
        } else if toks[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if toks[j].is_punct("(") || toks[j].is_punct("{") {
            // `Fn() -> T` bounds inside generics: skip the parens.
            if let Some(c) = file.match_delim(j) {
                j = c;
            }
        } else if toks[j].is_punct(";") {
            // Not a generic after all (comparison operator); bail.
            return open + 1;
        }
        j += 1;
    }
    open + 1
}

/// Type parameters in a generics token slice (`<…>`) whose bounds mention
/// an `Fn` family trait: `F: FnOnce() -> V` ⇒ `F`.
fn callable_generics(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut current: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            current = Some(t.text.clone());
        } else if t.is_punct(",") {
            current = None;
        } else if t.is_ident("Fn") || t.is_ident("FnMut") || t.is_ident("FnOnce") {
            if let Some(name) = &current {
                out.insert(name.clone());
            }
        }
    }
    out
}

/// Parses the parameter list between `(` at `open` and `)` at `close`.
fn parse_params(
    file: &SourceFile,
    open: usize,
    close: usize,
    callable_tys: &BTreeSet<String>,
) -> Vec<Param> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut seg_start = open + 1;
    let mut depth = 0i32;
    let mut j = open + 1;
    while j <= close {
        let t = &toks[j];
        let is_end = j == close;
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") && !is_end
            || t.is_punct("]")
            || t.is_punct("}")
            || t.is_punct(">")
        {
            depth -= 1;
        }
        if (t.is_punct(",") && depth == 0) || is_end {
            let seg = &toks[seg_start..j];
            if !seg.is_empty() && !seg.iter().any(|t| t.is_ident("self")) {
                let name = seg
                    .iter()
                    .take_while(|t| !t.is_punct(":"))
                    .filter(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                    .last()
                    .map(|t| t.text.clone());
                let is_callable = seg.iter().skip_while(|t| !t.is_punct(":")).any(|t| {
                    t.is_ident("Fn")
                        || t.is_ident("FnMut")
                        || t.is_ident("FnOnce")
                        || (t.kind == TokKind::Ident && callable_tys.contains(&t.text))
                });
                if let Some(name) = name {
                    out.push(Param { name, is_callable });
                }
            }
            seg_start = j + 1;
        }
        j += 1;
    }
    out
}

/// Extracts every call site in the token range `(open, close)` (exclusive
/// of the braces themselves).
pub fn call_sites(file: &SourceFile, body: (usize, usize)) -> Vec<CallSite> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for j in body.0 + 1..body.1 {
        let t = &toks[j];
        if t.kind != TokKind::Ident || !toks[j + 1].is_punct("(") {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = &toks[j - 1];
        if prev.is_ident("fn") {
            continue;
        }
        let method = prev.is_punct(".");
        let prefix = if prev.is_punct("::") && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            Some(toks[j - 2].text.clone())
        } else {
            None
        };
        out.push(CallSite {
            name: t.text.clone(),
            method,
            prefix,
            tok: j,
            line: t.line,
        });
    }
    out
}

/// First-party crates imported by `file`'s `use` declarations, as crate
/// directory names (`use nss_analysis::…` → `analysis`). `crate`-relative
/// imports contribute the file's own crate.
pub fn imported_crates(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.toks;
    let mut out = BTreeSet::new();
    for j in 0..toks.len().saturating_sub(1) {
        if !toks[j].is_ident("use") {
            continue;
        }
        let seg = &toks[j + 1];
        if seg.kind != TokKind::Ident {
            continue;
        }
        let text = seg.text.as_str();
        if text == "crate" {
            out.insert(file.crate_name.clone());
        } else if let Some(rest) = text.strip_prefix("nss_") {
            out.insert(rest.to_string());
        } else if text == "nss" {
            out.insert("nss".to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn parse(src: &str) -> (SourceFile, Vec<FnItem>) {
        let f = SourceFile::parse("x.rs", "model", FileKind::LibSrc, src);
        let fns = parse_fns(0, &f);
        (f, fns)
    }

    #[test]
    fn free_fns_and_methods_with_bodies() {
        let (_, fns) = parse(
            "fn free(a: u32, b: &str) -> u64 { a as u64 }\n\
             impl Foo { fn method(&self, x: f64) { go(x); } }\n\
             impl fmt::Display for Foo { fn fmt(&self) {} }\n",
        );
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "free");
        assert_eq!(fns[0].qual, None);
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].ret, vec!["u64"]);
        assert_eq!(fns[1].name, "method");
        assert_eq!(fns[1].qual.as_deref(), Some("Foo"));
        assert_eq!(fns[2].name, "fmt");
        assert_eq!(fns[2].qual.as_deref(), Some("Foo"));
    }

    #[test]
    fn callable_params_and_generics() {
        let (_, fns) = parse(
            "fn cached<K, V, F: FnOnce() -> V>(key: K, build: F) -> V { build() }\n\
             fn probs(topo: &T, prob_of: impl Fn(usize) -> f64) {}\n",
        );
        assert!(fns[0]
            .params
            .iter()
            .any(|p| p.name == "build" && p.is_callable));
        assert!(fns[1]
            .params
            .iter()
            .any(|p| p.name == "prob_of" && p.is_callable));
        assert!(fns[1]
            .params
            .iter()
            .any(|p| p.name == "topo" && !p.is_callable));
    }

    #[test]
    fn call_site_shapes() {
        let (f, fns) = parse(
            "fn f() {\n    helper(1);\n    recv.method(2);\n    Topology::build(x);\n    not_a_macro!(3);\n    if (x) {}\n}\n",
        );
        let calls = call_sites(&f, fns[0].body.unwrap());
        let names: Vec<(&str, bool, Option<&str>)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.method, c.prefix.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("helper", false, None),
                ("method", true, None),
                ("build", false, Some("Topology")),
            ]
        );
    }

    #[test]
    fn imports_map_to_crate_dirs() {
        let f = SourceFile::parse(
            "x.rs",
            "serve",
            FileKind::LibSrc,
            "use nss_analysis::sharded::ShardedCache;\nuse nss_obs::http::Router;\nuse crate::QueryService;\nuse std::sync::Arc;\n",
        );
        let imp = imported_crates(&f);
        assert!(imp.contains("analysis"));
        assert!(imp.contains("obs"));
        assert!(imp.contains("serve"));
        assert!(!imp.contains("std"));
    }

    #[test]
    fn test_region_fns_are_marked() {
        let (_, fns) = parse("fn a() {}\n#[cfg(test)]\nmod t {\n    fn b() {}\n}\n");
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
    }
}
