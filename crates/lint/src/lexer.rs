//! A comment- and string-aware token scanner for Rust source.
//!
//! `nss-lint` deliberately avoids a full parser (`syn` is not vendorable
//! under the no-network constraint, and the rules below are lexical): the
//! scanner strips comments, string/char literals, and lifetimes into typed
//! tokens with line numbers, which is exactly enough context for the rule
//! engine to match call-shaped patterns (`ident ( … )`, `.method(`,
//! `path :: macro !`) without being fooled by occurrences inside comments
//! or string literals.
//!
//! Line comments are additionally scanned for `nss-lint:` pragmas, which
//! are returned alongside the token stream (see [`crate::pragma`]).

/// Classification of a scanned token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    Int,
    /// Floating-point literal (`1.0`, `1e3`, `2.5f64`, …).
    Float,
    /// String literal of any flavor (regular, raw, byte); text is dropped.
    Str,
    /// Character literal; text is dropped.
    Char,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Punctuation. Multi-character operators that the rules care about
    /// (`==`, `!=`, `::`, `->`, `..`) are emitted as single tokens; all
    /// other punctuation is single-character.
    Punct,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text. Empty for `Str`/`Char` (contents are irrelevant to the
    /// rules and would only invite accidental matching).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A line comment captured during scanning (pragma candidates).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Comment text after the `//` marker, untrimmed.
    pub text: String,
}

/// Result of scanning one source file.
#[derive(Debug)]
pub struct Scan {
    /// The token stream, comments and literals stripped.
    pub toks: Vec<Tok>,
    /// Every `//` comment in the file (block comments are not pragma
    /// carriers by design; the grammar is line-comment only).
    pub comments: Vec<LineComment>,
}

/// Scans `src` into tokens and line comments.
pub fn scan(src: &str) -> Scan {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = b.len();

    let push = |toks: &mut Vec<Tok>, kind, text: String, line| {
        toks.push(Tok { kind, text, line });
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                comments.push(LineComment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment with nesting, newline-aware.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let tok_line = line;
                i = skip_string(&b, i, &mut line);
                push(&mut toks, TokKind::Str, String::new(), tok_line);
            }
            '\'' => {
                // Char literal vs lifetime. A lifetime is `'` followed by an
                // identifier that is *not* closed by another `'`.
                let tok_line = line;
                if i + 1 < n && (b[i + 1].is_alphanumeric() || b[i + 1] == '_') && b[i + 1] != '\\'
                {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' && j == i + 2 {
                        // 'x' — a one-character char literal.
                        push(&mut toks, TokKind::Char, String::new(), tok_line);
                        i = j + 1;
                    } else {
                        let text: String = b[i + 1..j].iter().collect();
                        push(&mut toks, TokKind::Lifetime, text, tok_line);
                        i = j;
                    }
                } else {
                    // Escaped char like '\n' or '\u{..}'.
                    let mut j = i + 1;
                    while j < n && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        if j < n && b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    push(&mut toks, TokKind::Char, String::new(), tok_line);
                    i = (j + 1).min(n);
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let (j, kind, text) = scan_number(&b, i);
                push(&mut toks, kind, text, tok_line);
                i = j;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
                let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
                if is_str_prefix && j < n && (b[j] == '"' || b[j] == '#') {
                    let tok_line = line;
                    i = skip_raw_string(&b, j, &mut line);
                    push(&mut toks, TokKind::Str, String::new(), tok_line);
                } else {
                    push(&mut toks, TokKind::Ident, text, line);
                    i = j;
                }
            }
            _ => {
                // Punctuation; combine the few multi-char operators the
                // rules must see as units.
                let two: Option<&str> = if i + 1 < n {
                    match (c, b[i + 1]) {
                        ('=', '=') => Some("=="),
                        ('!', '=') => Some("!="),
                        (':', ':') => Some("::"),
                        ('-', '>') => Some("->"),
                        ('.', '.') => Some(".."),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(op) = two {
                    push(&mut toks, TokKind::Punct, op.to_string(), line);
                    i += 2;
                    // `..=` — fold the `=` in so it cannot pair elsewhere.
                    if op == ".." && i < n && b[i] == '=' {
                        i += 1;
                    }
                } else {
                    push(&mut toks, TokKind::Punct, c.to_string(), line);
                    i += 1;
                }
            }
        }
    }

    Scan { toks, comments }
}

/// Skips a regular string literal starting at the opening `"`; returns the
/// index just past the closing quote and updates the line counter.
fn skip_string(b: &[char], start: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = start + 1;
    while j < n {
        match b[j] {
            '\\' => {
                // An escaped newline (line continuation) still ends a
                // source line.
                if b.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Skips a raw string body starting at the first `#` or `"` after the `r`
/// prefix; returns the index just past the closing delimiter.
fn skip_raw_string(b: &[char], start: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut hashes = 0usize;
    let mut j = start;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != '"' {
        // Not actually a raw string (e.g. `r#ident`); treat as consumed.
        return j;
    }
    j += 1;
    while j < n {
        if b[j] == '\n' {
            *line += 1;
            j += 1;
        } else if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && b[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    n
}

/// Scans a numeric literal starting at a digit; returns (end index, kind,
/// text). Distinguishes floats from ints, including exponent and suffix
/// forms; `1..2` and `1.max(…)` keep the `1` integral.
fn scan_number(b: &[char], start: usize) -> (usize, TokKind, String) {
    let n = b.len();
    let mut j = start;
    let mut float = false;
    if b[j] == '0' && j + 1 < n && matches!(b[j + 1], 'x' | 'o' | 'b') {
        j += 2;
        while j < n && (b[j].is_ascii_hexdigit() || b[j] == '_') {
            j += 1;
        }
    } else {
        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
            j += 1;
        }
        // Fractional part: only if `.` is followed by a digit (so ranges
        // and method calls on integers stay integral) or ends the number.
        if j < n && b[j] == '.' {
            let next = b.get(j + 1);
            let next_is_digit = next.is_some_and(|c| c.is_ascii_digit());
            let next_is_cont = next.is_some_and(|c| c.is_alphanumeric() || *c == '_' || *c == '.');
            if next_is_digit || !next_is_cont {
                float = true;
                j += 1;
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
            }
        }
        // Exponent.
        if j < n && (b[j] == 'e' || b[j] == 'E') {
            let mut k = j + 1;
            if k < n && (b[k] == '+' || b[k] == '-') {
                k += 1;
            }
            if k < n && b[k].is_ascii_digit() {
                float = true;
                j = k;
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
            }
        }
    }
    // Type suffix (`f64` forces float; `u32` etc. keep the kind).
    let suffix_start = j;
    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    if suffix_start < j && b[suffix_start] == 'f' {
        float = true;
    }
    let text: String = b[start..j].iter().collect();
    let kind = if float { TokKind::Float } else { TokKind::Int };
    (j, kind, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        scan(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let s = scan("let x = \"thread_rng()\"; // thread_rng\n/* unwrap() */ y");
        assert!(!s.toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(!s.toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("thread_rng"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let ks = kinds(r##"let a = r#"unwrap()"#; let c = 'x'; let lt: &'a str;"##);
        assert!(!ks.iter().any(|(_, t)| t == "unwrap"));
        assert!(ks.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
    }

    #[test]
    fn numbers_classified() {
        let ks = kinds("1 1.0 1e3 0x10 1..2 1.max(2) 2.5f64 3f32 7u64");
        let floats: Vec<&String> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(floats, ["1.0", "1e3", "2.5f64", "3f32"]);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Int && t == "0x10"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Int && t == "7u64"));
    }

    #[test]
    fn operators_combined() {
        let ks = kinds("a == b != c :: d -> e .. f <= g");
        let puncts: Vec<&String> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t)
            .collect();
        assert!(puncts.contains(&&"==".to_string()));
        assert!(puncts.contains(&&"!=".to_string()));
        assert!(puncts.contains(&&"::".to_string()));
        assert!(puncts.contains(&&"->".to_string()));
        assert!(puncts.contains(&&"..".to_string()));
        // `<=` must not manufacture a spurious `==`.
        assert_eq!(puncts.iter().filter(|p| ***p == "==").count(), 1);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let s = scan("a\n\"two\nlines\"\nb");
        let b = s.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn escaped_newline_in_string_counts_a_line() {
        let s = scan("a\n\"continued \\\n string\"\nb");
        let b = s.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
