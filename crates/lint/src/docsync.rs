//! Generated-block splicing shared by the doc-sync subcommands.
//!
//! `nss-lint metrics --write docs/METRICS.md` and
//! `nss-lint rules --write docs/LINTS.md` both maintain a generated
//! markdown block between HTML-comment markers inside a hand-written
//! document; `--check` is the CI gate that the committed block matches
//! what the code produces. This module holds the marker-agnostic splice
//! machinery plus the rule-catalogue renderer (the metric renderer lives
//! with its scanner in [`crate::metrics`]).

use crate::rules;

/// Opening marker of the generated rules block in `docs/LINTS.md`.
pub const RULES_BEGIN: &str = "<!-- BEGIN nss-lint rules (generated; edit with \
                               `cargo run -p nss-lint -- rules --write docs/LINTS.md`) -->";
/// Closing marker. See [`RULES_BEGIN`].
pub const RULES_END: &str = "<!-- END nss-lint rules -->";

/// Renders the rule catalogue as a generated markdown block (markers
/// included), one row per rule plus the reserved `pragma` id.
pub fn render_rules() -> String {
    let mut out = String::new();
    out.push_str(RULES_BEGIN);
    out.push_str("\n\n| id | scope | invariant |\n|---|---|---|\n");
    for rule in rules::all() {
        out.push_str(&format!(
            "| `{}` | file | {} |\n",
            rule.id(),
            oneline(rule.describe())
        ));
    }
    for rule in rules::workspace_rules() {
        out.push_str(&format!(
            "| `{}` | workspace | {} |\n",
            rule.id(),
            oneline(rule.describe())
        ));
    }
    out.push_str(
        "| `pragma` | — | reserved: malformed or stale \
         `// nss-lint: allow(…) — reason` pragmas |\n",
    );
    out.push('\n');
    out.push_str(RULES_END);
    out.push('\n');
    out
}

/// Collapses the describe() string's whitespace for a table cell.
fn oneline(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Replaces the `begin…end` block of `doc` with `block` (which must carry
/// its own markers).
pub fn splice(doc: &str, block: &str, begin: &str, end: &str) -> Result<String, String> {
    let (b, e) = locate(doc, begin, end)?;
    let tail = &doc[e + end.len()..];
    let tail = tail.strip_prefix('\n').unwrap_or(tail);
    Ok(format!("{}{}{}", &doc[..b], block, tail))
}

/// Extracts the currently committed block (markers included, trailing
/// newline included).
pub fn committed_block<'a>(doc: &'a str, begin: &str, end: &str) -> Result<&'a str, String> {
    let (b, e) = locate(doc, begin, end)?;
    Ok(&doc[b..e + end.len() + 1])
}

fn locate(doc: &str, begin: &str, end: &str) -> Result<(usize, usize), String> {
    let b = doc
        .find(begin)
        .ok_or_else(|| format!("missing `{begin}` marker"))?;
    let e = doc
        .find(end)
        .ok_or_else(|| format!("missing `{end}` marker"))?;
    if e < b {
        return Err("END marker precedes BEGIN marker".to_string());
    }
    Ok((b, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_block_lists_every_rule() {
        let block = render_rules();
        for id in rules::ids() {
            assert!(block.contains(&format!("| `{id}` |")), "{id}");
        }
        assert!(block.contains("| `pragma` |"));
        assert!(block.starts_with(RULES_BEGIN));
        assert!(block.ends_with(&format!("{RULES_END}\n")));
    }

    #[test]
    fn splice_round_trips() {
        let doc = format!("# Title\n\n{RULES_BEGIN}\nold\n{RULES_END}\n\n## Tail\n");
        let block = render_rules();
        let updated = splice(&doc, &block, RULES_BEGIN, RULES_END).unwrap();
        assert!(updated.starts_with("# Title"));
        assert!(updated.ends_with("## Tail\n"));
        assert_eq!(
            committed_block(&updated, RULES_BEGIN, RULES_END).unwrap(),
            block
        );
        // Idempotent.
        assert_eq!(
            splice(&updated, &block, RULES_BEGIN, RULES_END).unwrap(),
            updated
        );
    }

    #[test]
    fn missing_marker_is_an_error() {
        assert!(splice("no markers", "x", RULES_BEGIN, RULES_END).is_err());
    }
}
