//! The `nss-lint: allow(...)` pragma grammar.
//!
//! A violation is suppressed by a line comment of the form
//!
//! ```text
//! // nss-lint: allow(rule-id[, rule-id…]) — reason text
//! ```
//!
//! placed either on the offending line or on the line directly above it.
//! The reason is **mandatory** (an allow without a written justification is
//! itself a violation) and the separator may be an em-dash `—`, `--`, `-`,
//! or `:`. Rule ids must name known rules; unknown ids are violations so
//! typos cannot silently disable nothing.

use crate::lexer::LineComment;

/// A parsed pragma, or a record of why parsing failed.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// Rule ids this pragma allows.
    pub rules: Vec<String>,
    /// Parse failure, reported as a `pragma` violation (`None` = well-formed).
    pub error: Option<String>,
}

/// Extracts pragmas from the file's line comments.
pub fn parse_pragmas(comments: &[LineComment], known_rules: &[&str]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        // A pragma must *begin* the comment (`// nss-lint: …`). Doc
        // comments (`///`, `//!`) can never be pragmas — their captured
        // text starts with `/` or `!` — so prose *about* the grammar is
        // not mistaken for an instance of it.
        let Some(body) = c.text.trim_start().strip_prefix("nss-lint:") else {
            continue;
        };
        out.push(parse_one(c.line, body.trim_start(), known_rules));
    }
    out
}

fn parse_one(line: u32, body: &str, known_rules: &[&str]) -> Pragma {
    let fail = |msg: &str| Pragma {
        line,
        rules: Vec::new(),
        error: Some(msg.to_string()),
    };
    let Some(rest) = body.strip_prefix("allow(") else {
        return fail("expected `allow(<rule>[, <rule>…])` after `nss-lint:`");
    };
    let Some(close) = rest.find(')') else {
        return fail("unclosed `allow(` in pragma");
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return fail("pragma allows no rules");
    }
    for r in &rules {
        if !known_rules.contains(&r.as_str()) {
            return fail(&format!("unknown rule `{r}` in pragma"));
        }
    }
    // Everything after the `)` minus separators must be a non-empty reason.
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':', ' '])
        .trim();
    if reason.is_empty() {
        return fail("pragma must carry a reason: `… — <why this is sound>`");
    }
    Pragma {
        line,
        rules,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["rng-discipline", "panic-hygiene"];

    fn parse(text: &str) -> Pragma {
        let c = [LineComment {
            line: 7,
            text: text.to_string(),
        }];
        parse_pragmas(&c, RULES).pop().expect("one pragma")
    }

    #[test]
    fn well_formed() {
        let p = parse(" nss-lint: allow(rng-discipline) — fixed seed is the point of this test");
        assert!(p.error.is_none(), "{:?}", p.error);
        assert_eq!(p.rules, ["rng-discipline"]);
        assert_eq!(p.line, 7);
    }

    #[test]
    fn multiple_rules_and_ascii_separator() {
        let p = parse(" nss-lint: allow(rng-discipline, panic-hygiene) -- both fine here");
        assert!(p.error.is_none());
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let p = parse(" nss-lint: allow(rng-discipline)");
        assert!(p.error.as_deref().unwrap_or("").contains("reason"));
        let p = parse(" nss-lint: allow(rng-discipline) — ");
        assert!(p.error.is_some());
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let p = parse(" nss-lint: allow(no-such-rule) — because");
        assert!(p.error.as_deref().unwrap_or("").contains("unknown rule"));
    }

    #[test]
    fn malformed_shapes() {
        assert!(parse(" nss-lint: disable(rng-discipline) — x")
            .error
            .is_some());
        assert!(parse(" nss-lint: allow(rng-discipline — x").error.is_some());
        assert!(parse(" nss-lint: allow() — x").error.is_some());
    }

    #[test]
    fn non_pragma_comments_ignored() {
        let c = [LineComment {
            line: 1,
            text: " just words".to_string(),
        }];
        assert!(parse_pragmas(&c, RULES).is_empty());
    }
}
