//! Machine-readable report rendering.
//!
//! The vendored `serde` carries no serializer (it is a derive-only marker
//! subset), so the JSON report is rendered by hand. The shape is stable —
//! CI uploads it as an artifact and tooling may diff it across runs:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "files_scanned": 87,
//!   "violation_count": 0,
//!   "violations": [ {"path": "…", "line": 12, "rule": "…", "message": "…"} ]
//! }
//! ```

use crate::Report;

/// Renders the report as pretty-printed JSON.
pub fn render(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files.len()));
    s.push_str(&format!(
        "  \"violation_count\": {},\n",
        report.violations.len()
    ));
    s.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            escape(&v.path),
            v.line,
            escape(v.rule),
            escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    #[test]
    fn renders_and_escapes() {
        let report = Report {
            files: vec!["a.rs".into(), "b.rs".into()],
            violations: vec![Violation {
                path: "a.rs".into(),
                line: 3,
                rule: "panic-hygiene",
                message: "say \"no\" to\npanics".into(),
            }],
        };
        let j = render(&report);
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\\\"no\\\" to\\npanics"));
    }

    #[test]
    fn empty_report_is_valid() {
        let j = render(&Report {
            files: vec![],
            violations: vec![],
        });
        assert!(j.contains("\"violations\": []"));
    }
}
