//! `nss-lint` CLI.
//!
//! ```text
//! cargo run -p nss-lint -- check [--root DIR] [--json FILE]
//! cargo run -p nss-lint -- rules
//! ```
//!
//! `check` exits 0 when the workspace is clean, 1 with one `file:line:
//! [rule] message` diagnostic per violation otherwise, and 2 on usage or IO
//! errors. `--json` additionally writes the machine-readable report
//! (uploaded as a CI artifact).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nss-lint: {msg}");
            eprintln!("usage: nss-lint <check|rules> [--root DIR] [--json FILE]");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut cmd: Option<&str> = None;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                json_out = Some(PathBuf::from(it.next().ok_or("--json needs a file path")?));
            }
            "check" | "rules" if cmd.is_none() => cmd = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    match cmd {
        Some("rules") => {
            for rule in nss_lint::rules::all() {
                println!("{:<16} {}", rule.id(), rule.describe());
            }
            println!(
                "{:<16} reserved: malformed or stale `// nss-lint: allow(…) — reason` pragmas",
                "pragma"
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("check") => {
            let report = nss_lint::lint_workspace(&root)?;
            if let Some(path) = json_out {
                std::fs::write(&path, nss_lint::json::render(&report))
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            for v in &report.violations {
                println!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "nss-lint: {} files clean ({} rules)",
                    report.files.len(),
                    nss_lint::rules::all().len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "nss-lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        _ => Err("missing subcommand".to_string()),
    }
}
