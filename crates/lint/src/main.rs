//! `nss-lint` CLI.
//!
//! ```text
//! cargo run -p nss-lint -- check [--root DIR] [--json FILE]
//! cargo run -p nss-lint -- rules
//! cargo run -p nss-lint -- metrics [--root DIR] [--check FILE | --write FILE]
//! ```
//!
//! `check` exits 0 when the workspace is clean, 1 with one `file:line:
//! [rule] message` diagnostic per violation otherwise, and 2 on usage or IO
//! errors. `--json` additionally writes the machine-readable report
//! (uploaded as a CI artifact).
//!
//! `metrics` prints the scanned metric inventory as markdown; with
//! `--check docs/METRICS.md` it exits 1 when the file's generated block
//! has drifted from the code (the CI sync gate), with `--write` it
//! refreshes the block in place.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nss-lint: {msg}");
            eprintln!(
                "usage: nss-lint <check|rules|metrics> [--root DIR] [--json FILE]\n       \
                 nss-lint metrics [--root DIR] [--check FILE | --write FILE]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut cmd: Option<&str> = None;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut metrics_check: Option<PathBuf> = None;
    let mut metrics_write: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                json_out = Some(PathBuf::from(it.next().ok_or("--json needs a file path")?));
            }
            "--check" => {
                metrics_check = Some(PathBuf::from(it.next().ok_or("--check needs a file path")?));
            }
            "--write" => {
                metrics_write = Some(PathBuf::from(it.next().ok_or("--write needs a file path")?));
            }
            "check" | "rules" | "metrics" if cmd.is_none() => cmd = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if (metrics_check.is_some() || metrics_write.is_some()) && cmd != Some("metrics") {
        return Err("--check/--write only apply to the `metrics` subcommand".to_string());
    }
    if metrics_check.is_some() && metrics_write.is_some() {
        return Err("--check and --write are mutually exclusive".to_string());
    }
    match cmd {
        Some("rules") => {
            for rule in nss_lint::rules::all() {
                println!("{:<16} {}", rule.id(), rule.describe());
            }
            println!(
                "{:<16} reserved: malformed or stale `// nss-lint: allow(…) — reason` pragmas",
                "pragma"
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("check") => {
            let report = nss_lint::lint_workspace(&root)?;
            if let Some(path) = json_out {
                std::fs::write(&path, nss_lint::json::render(&report))
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            for v in &report.violations {
                println!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "nss-lint: {} files clean ({} rules)",
                    report.files.len(),
                    nss_lint::rules::all().len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "nss-lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Some("metrics") => {
            let rows = nss_lint::metrics::scan_workspace(&root)?;
            let block = nss_lint::metrics::render(&rows);
            if let Some(path) = metrics_check {
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let committed = nss_lint::metrics::committed_block(&doc)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                if committed == block {
                    println!(
                        "nss-lint: {} metrics table in sync ({} metrics)",
                        path.display(),
                        rows.len()
                    );
                    Ok(ExitCode::SUCCESS)
                } else {
                    eprintln!(
                        "nss-lint: {} metrics table is out of date with the code;\n          \
                         regenerate with `cargo run -p nss-lint -- metrics --write {}`",
                        path.display(),
                        path.display()
                    );
                    Ok(ExitCode::FAILURE)
                }
            } else if let Some(path) = metrics_write {
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let updated = nss_lint::metrics::splice(&doc, &block)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                std::fs::write(&path, updated)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!(
                    "nss-lint: refreshed {} ({} metrics)",
                    path.display(),
                    rows.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                print!("{block}");
                Ok(ExitCode::SUCCESS)
            }
        }
        _ => Err("missing subcommand".to_string()),
    }
}
