//! `nss-lint` CLI.
//!
//! ```text
//! cargo run -p nss-lint -- check [--root DIR] [--json FILE] [--sarif FILE]
//! cargo run -p nss-lint -- rules [--check FILE | --write FILE]
//! cargo run -p nss-lint -- metrics [--root DIR] [--check FILE | --write FILE]
//! ```
//!
//! `check` exits 0 when the workspace is clean, 1 with one `file:line:
//! [rule] message` diagnostic per violation otherwise, and 2 on usage or IO
//! errors. `--json` additionally writes the machine-readable report and
//! `--sarif` the SARIF 2.1.0 form (both uploaded as CI artifacts).
//!
//! `rules` prints the rule catalogue; with `--check docs/LINTS.md` it exits
//! 1 when the file's generated block has drifted from the registered rules
//! (the CI sync gate), with `--write` it refreshes the block in place.
//! `metrics` does the same for the metric inventory in `docs/METRICS.md`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("nss-lint: {msg}");
            eprintln!(
                "usage: nss-lint check [--root DIR] [--json FILE] [--sarif FILE]\n       \
                 nss-lint rules [--check FILE | --write FILE]\n       \
                 nss-lint metrics [--root DIR] [--check FILE | --write FILE]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut cmd: Option<&str> = None;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut doc_check: Option<PathBuf> = None;
    let mut doc_write: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--json" => {
                json_out = Some(PathBuf::from(it.next().ok_or("--json needs a file path")?));
            }
            "--sarif" => {
                sarif_out = Some(PathBuf::from(it.next().ok_or("--sarif needs a file path")?));
            }
            "--check" => {
                doc_check = Some(PathBuf::from(it.next().ok_or("--check needs a file path")?));
            }
            "--write" => {
                doc_write = Some(PathBuf::from(it.next().ok_or("--write needs a file path")?));
            }
            "check" | "rules" | "metrics" if cmd.is_none() => cmd = Some(a),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if (doc_check.is_some() || doc_write.is_some()) && !matches!(cmd, Some("metrics" | "rules")) {
        return Err("--check/--write only apply to `metrics` and `rules`".to_string());
    }
    if doc_check.is_some() && doc_write.is_some() {
        return Err("--check and --write are mutually exclusive".to_string());
    }
    if sarif_out.is_some() && cmd != Some("check") {
        return Err("--sarif only applies to the `check` subcommand".to_string());
    }
    match cmd {
        Some("rules") => {
            let block = nss_lint::docsync::render_rules();
            if let Some(path) = doc_check {
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let committed = nss_lint::docsync::committed_block(
                    &doc,
                    nss_lint::docsync::RULES_BEGIN,
                    nss_lint::docsync::RULES_END,
                )
                .map_err(|e| format!("{}: {e}", path.display()))?;
                if committed == block {
                    println!(
                        "nss-lint: {} rule catalogue in sync ({} rules)",
                        path.display(),
                        nss_lint::rules::ids().len()
                    );
                    Ok(ExitCode::SUCCESS)
                } else {
                    eprintln!(
                        "nss-lint: {} rule catalogue is out of date with the code;\n          \
                         regenerate with `cargo run -p nss-lint -- rules --write {}`",
                        path.display(),
                        path.display()
                    );
                    Ok(ExitCode::FAILURE)
                }
            } else if let Some(path) = doc_write {
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let updated = nss_lint::docsync::splice(
                    &doc,
                    &block,
                    nss_lint::docsync::RULES_BEGIN,
                    nss_lint::docsync::RULES_END,
                )
                .map_err(|e| format!("{}: {e}", path.display()))?;
                std::fs::write(&path, updated)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!(
                    "nss-lint: refreshed {} ({} rules)",
                    path.display(),
                    nss_lint::rules::ids().len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                for rule in nss_lint::rules::all() {
                    println!("{:<20} {}", rule.id(), rule.describe());
                }
                for rule in nss_lint::rules::workspace_rules() {
                    println!("{:<20} {}", rule.id(), rule.describe());
                }
                println!(
                    "{:<20} reserved: malformed or stale `// nss-lint: allow(…) — reason` pragmas",
                    "pragma"
                );
                Ok(ExitCode::SUCCESS)
            }
        }
        Some("check") => {
            let report = nss_lint::lint_workspace(&root)?;
            if let Some(path) = json_out {
                std::fs::write(&path, nss_lint::json::render(&report))
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            if let Some(path) = sarif_out {
                std::fs::write(&path, nss_lint::sarif::render(&report))
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
            }
            for v in &report.violations {
                println!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "nss-lint: {} files clean ({} rules)",
                    report.files.len(),
                    nss_lint::rules::ids().len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "nss-lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Some("metrics") => {
            let rows = nss_lint::metrics::scan_workspace(&root)?;
            let block = nss_lint::metrics::render(&rows);
            if let Some(path) = doc_check {
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let committed = nss_lint::metrics::committed_block(&doc)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                if committed == block {
                    println!(
                        "nss-lint: {} metrics table in sync ({} metrics)",
                        path.display(),
                        rows.len()
                    );
                    Ok(ExitCode::SUCCESS)
                } else {
                    eprintln!(
                        "nss-lint: {} metrics table is out of date with the code;\n          \
                         regenerate with `cargo run -p nss-lint -- metrics --write {}`",
                        path.display(),
                        path.display()
                    );
                    Ok(ExitCode::FAILURE)
                }
            } else if let Some(path) = doc_write {
                let doc = std::fs::read_to_string(&path)
                    .map_err(|e| format!("reading {}: {e}", path.display()))?;
                let updated = nss_lint::metrics::splice(&doc, &block)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                std::fs::write(&path, updated)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!(
                    "nss-lint: refreshed {} ({} metrics)",
                    path.display(),
                    rows.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                print!("{block}");
                Ok(ExitCode::SUCCESS)
            }
        }
        _ => Err("missing subcommand".to_string()),
    }
}
