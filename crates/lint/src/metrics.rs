//! Metric-name inventory: the scanner behind `nss-lint metrics`.
//!
//! Walks the same first-party file set as the lint pass and extracts every
//! metric the workspace can emit — literal names passed to the
//! `nss_obs::{counter,gauge,observe,span,trace_span}!` macros plus the
//! dynamic `format!`-named registry calls the sharding layers use — into a
//! deterministic markdown table. `docs/METRICS.md` commits that table
//! between `BEGIN`/`END` markers; `nss-lint metrics --check` fails CI when
//! the committed block drifts from the code, and `--write` refreshes it in
//! place without touching the surrounding prose.
//!
//! The extraction is lexical, like the rules: comments are blanked first
//! (so doctest examples in `///` blocks don't register phantom metrics)
//! and `#[cfg(test)]` regions are skipped (test-only metric names are not
//! part of the exported surface).

use crate::{FileKind, SourceFile, LIB_CRATES};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One exported metric (or dynamic metric family).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Registry name; span macros export `<name>.seconds`, dynamic
    /// families keep their `{placeholder}` segments.
    pub name: String,
    /// `counter` / `gauge` / `histogram` / `histogram (span)`.
    pub kind: &'static str,
    /// Name is a `format!` template, not a literal.
    pub dynamic: bool,
    /// Workspace-relative source files that emit it.
    pub sites: BTreeSet<String>,
}

/// The markers delimiting the generated block in `docs/METRICS.md`.
pub const BEGIN_MARK: &str = "<!-- BEGIN nss-lint metrics (generated; edit with \
                              `cargo run -p nss-lint -- metrics --write docs/METRICS.md`) -->";
/// Closing marker. See [`BEGIN_MARK`].
pub const END_MARK: &str = "<!-- END nss-lint metrics -->";

/// Blanks comments (line, nested block) to spaces, preserving newlines and
/// byte offsets, so later pattern matches never fire inside docs.
fn strip_comments(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0usize;
    let n = b.len();
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < n {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal: copy verbatim (metric names live here).
                out.push(b[i]);
                i += 1;
                while i < n {
                    out.push(b[i]);
                    if b[i] == b'\\' && i + 1 < n {
                        i += 1;
                        out.push(b[i]);
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes (`'x'`, `'\n'`); a lifetime never has a closing
                // quote before an identifier boundary.
                let close = (i + 1..n.min(i + 5)).find(|&j| b[j] == b'\'' && b[j - 1] != b'\\');
                if let Some(close) = close {
                    out.extend_from_slice(&b[i..=close]);
                    i = close + 1;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads the string literal starting at `text[i]` (which must be `"`);
/// returns (contents, index past the closing quote).
fn read_str(text: &[u8], mut i: usize) -> Option<(String, usize)> {
    if text.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let start = i;
    while i < text.len() {
        match text[i] {
            b'\\' => i += 2,
            b'"' => {
                return Some((String::from_utf8_lossy(&text[start..i]).into_owned(), i + 1));
            }
            _ => i += 1,
        }
    }
    None
}

fn line_of(src: &str, offset: usize) -> u32 {
    src.as_bytes()[..offset]
        .iter()
        .filter(|&&c| c == b'\n')
        .count() as u32
        + 1
}

/// Scans one comment-stripped source for metric emissions.
fn scan_file(rel: &str, crate_name: &str, kind: FileKind, src: &str, out: &mut Vec<MetricRow>) {
    let stripped = strip_comments(src);
    let file = SourceFile::parse(rel, crate_name, kind, src);
    let bytes = stripped.as_bytes();

    let mut push = |name: String, kind: &'static str, dynamic: bool| {
        let mut sites = BTreeSet::new();
        sites.insert(rel.to_string());
        out.push(MetricRow {
            name,
            kind,
            dynamic,
            sites,
        });
    };

    // Macro emissions: `nss_obs::<macro>!(<first-arg>, …)`.
    const MACROS: &[(&str, &str)] = &[
        ("counter", "counter"),
        ("gauge", "gauge"),
        ("observe", "histogram"),
        ("trace_span", "histogram (span)"),
        ("span", "histogram (span)"),
    ];
    let mut pos = 0usize;
    while let Some(hit) = stripped[pos..].find("nss_obs::") {
        let at = pos + hit + "nss_obs::".len();
        pos = at;
        if file.is_test_line(line_of(&stripped, at)) {
            continue;
        }
        for &(mac, metric_kind) in MACROS {
            let Some(rest) = stripped[at..].strip_prefix(mac) else {
                continue;
            };
            let Some(rest) = rest.trim_start().strip_prefix('!') else {
                continue;
            };
            let Some(rest) = rest.trim_start().strip_prefix('(') else {
                continue;
            };
            let arg_at = stripped.len() - rest.len();
            let arg = rest.trim_start();
            let arg_at = arg_at + (rest.len() - arg.len());
            if let Some((name, _)) = read_str(bytes, arg_at) {
                let name = if metric_kind == "histogram (span)" {
                    format!("{name}.seconds")
                } else {
                    name
                };
                push(name, metric_kind, false);
            } else {
                // Dynamic macro arg: record the inner format template when
                // one is visible, else the raw expression head.
                let head: String = arg.chars().take_while(|&c| c != ')' && c != ',').collect();
                let name = arg
                    .find("format!(")
                    .and_then(|f| {
                        let lit_at = arg_at + f + "format!(".len();
                        read_str(bytes, lit_at).map(|(s, _)| s)
                    })
                    .unwrap_or_else(|| format!("<{}>", head.trim()));
                let name = if metric_kind == "histogram (span)" {
                    format!("{name}.seconds")
                } else {
                    name
                };
                push(name, metric_kind, true);
            }
            break;
        }
    }

    // Dynamic registry families: `.histogram(&format!("…"))` and friends,
    // the idiom the sharding layers use for per-stage metrics.
    const METHODS: &[(&str, &str)] = &[
        (".counter(&format!(", "counter"),
        (".gauge(&format!(", "gauge"),
        (".histogram(&format!(", "histogram"),
    ];
    for &(pat, metric_kind) in METHODS {
        let mut pos = 0usize;
        while let Some(hit) = stripped[pos..].find(pat) {
            let lit_at = pos + hit + pat.len();
            pos = lit_at;
            if file.is_test_line(line_of(&stripped, lit_at)) {
                continue;
            }
            if let Some((name, _)) = read_str(bytes, lit_at) {
                push(name, metric_kind, true);
            }
        }
    }
}

/// Scans the workspace and returns the merged, sorted inventory.
pub fn scan_workspace(root: &Path) -> Result<Vec<MetricRow>, String> {
    if !root.join("Cargo.toml").exists() || !root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (need Cargo.toml and crates/)",
            root.display()
        ));
    }
    // Same first-party set as the lint pass, but `src/` only: metrics
    // emitted by tests and benches are not part of the exported surface.
    let mut files: Vec<(PathBuf, String, FileKind)> = Vec::new();
    crate::collect_rs(&root.join("src"), &mut files, "nss", FileKind::LibSrc)?;
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .map_err(|e| format!("reading crates/: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        // The linter's sources contain the scan patterns themselves, and
        // `obs` is the metrics plumbing (its `format!("{}.seconds", …)`
        // is the span mechanism, not an emission site).
        if name == "lint" || name == "obs" {
            continue;
        }
        let kind = if LIB_CRATES.contains(&name.as_str()) {
            FileKind::LibSrc
        } else {
            FileKind::BinSrc
        };
        crate::collect_rs(&dir.join("src"), &mut files, &name, kind)?;
    }

    let mut rows = Vec::new();
    for (path, crate_name, kind) in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        scan_file(&rel, &crate_name, kind, &src, &mut rows);
    }

    // Merge duplicate (name, kind) rows, unioning sites.
    let mut merged: BTreeMap<(String, &'static str), MetricRow> = BTreeMap::new();
    for row in rows {
        merged
            .entry((row.name.clone(), row.kind))
            .and_modify(|m| {
                m.sites.extend(row.sites.iter().cloned());
                m.dynamic |= row.dynamic;
            })
            .or_insert(row);
    }
    Ok(merged.into_values().collect())
}

/// Renders the inventory as the committed markdown block, markers
/// included.
pub fn render(rows: &[MetricRow]) -> String {
    let mut out = String::new();
    out.push_str(BEGIN_MARK);
    out.push('\n');
    out.push_str("| Metric | Kind | Emitted from |\n|---|---|---|\n");
    for row in rows {
        let name = if row.dynamic {
            format!("`{}` (dynamic)", row.name)
        } else {
            format!("`{}`", row.name)
        };
        let sites = row
            .sites
            .iter()
            .map(|s| format!("`{s}`"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("| {} | {} | {} |\n", name, row.kind, sites));
    }
    out.push_str(END_MARK);
    out.push('\n');
    out
}

/// Replaces the marked block inside `doc` with `block`; `Err` when the
/// markers are missing or out of order.
pub fn splice(doc: &str, block: &str) -> Result<String, String> {
    crate::docsync::splice(doc, block, BEGIN_MARK, END_MARK)
}

/// Extracts the currently committed block (markers included).
pub fn committed_block(doc: &str) -> Result<&str, String> {
    crate::docsync::committed_block(doc, BEGIN_MARK, END_MARK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_literal_macro_names_and_span_suffix() {
        let src = r#"
fn f() {
    nss_obs::counter!("a.requests").inc();
    nss_obs::gauge!("a.bytes").set(1.0);
    nss_obs::observe!("a.latency", 0.5);
    let _s = nss_obs::trace_span!("a.work");
}
"#;
        let mut rows = Vec::new();
        scan_file("x.rs", "model", FileKind::LibSrc, src, &mut rows);
        let names: Vec<(&str, &str)> = rows.iter().map(|r| (r.name.as_str(), r.kind)).collect();
        assert!(names.contains(&("a.requests", "counter")), "{names:?}");
        assert!(names.contains(&("a.bytes", "gauge")), "{names:?}");
        assert!(names.contains(&("a.latency", "histogram")), "{names:?}");
        assert!(
            names.contains(&("a.work.seconds", "histogram (span)")),
            "{names:?}"
        );
    }

    #[test]
    fn skips_doc_comments_and_test_regions() {
        let src = r#"
/// ```
/// nss_obs::counter!("doc.phantom").inc();
/// ```
fn f() {}
#[cfg(test)]
mod tests {
    fn t() {
        nss_obs::counter!("test.only").inc();
    }
}
"#;
        let mut rows = Vec::new();
        scan_file("x.rs", "model", FileKind::LibSrc, src, &mut rows);
        assert!(rows.is_empty(), "{rows:?}");
    }

    #[test]
    fn captures_dynamic_format_families() {
        let src = r#"
fn f(stage: &str) {
    let reg = nss_obs::registry::Registry::global();
    let h = reg.histogram(&format!("{stage}.shard.seconds"));
    reg.gauge(&format!("{stage}.imbalance")).set(2.0);
    let _ = h;
}
"#;
        let mut rows = Vec::new();
        scan_file("x.rs", "sim", FileKind::LibSrc, src, &mut rows);
        let names: Vec<(&str, bool)> = rows.iter().map(|r| (r.name.as_str(), r.dynamic)).collect();
        assert!(
            names.contains(&("{stage}.shard.seconds", true)),
            "{names:?}"
        );
        assert!(names.contains(&("{stage}.imbalance", true)), "{names:?}");
    }

    #[test]
    fn splice_round_trips_and_check_detects_drift() {
        let rows = vec![MetricRow {
            name: "x.y".into(),
            kind: "counter",
            dynamic: false,
            sites: ["crates/a/src/lib.rs".to_string()].into_iter().collect(),
        }];
        let block = render(&rows);
        let doc = format!("# Title\n\nprose\n\n{BEGIN_MARK}\nstale\n{END_MARK}\n\nmore prose\n");
        let updated = splice(&doc, &block).expect("splice");
        assert!(updated.contains("| `x.y` | counter |"));
        assert!(updated.starts_with("# Title"));
        assert!(updated.ends_with("more prose\n"));
        assert_eq!(committed_block(&updated).expect("block"), block);
        // And a doc with no markers is a hard error, not silent success.
        assert!(splice("no markers", &block).is_err());
    }
}
