//! SARIF 2.1.0 rendering of the lint report.
//!
//! Like [`crate::json`], this is hand-rendered (the vendored `serde` is a
//! derive-only marker subset). The output is the minimal static-analysis
//! interchange shape CI artifact viewers and code-scanning uploads accept:
//! one `run` with the `nss-lint` tool driver, its rule catalogue, and one
//! `result` per surviving violation with a physical location.

use crate::{rules, Report};

/// Renders the report as a SARIF 2.1.0 document.
pub fn render(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"nss-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/nss-lint\",\n");
    s.push_str("          \"rules\": [");
    let mut first = true;
    for (id, describe) in rule_catalogue() {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            escape(id),
            escape(describe)
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            escape(v.rule),
            escape(&v.message),
            escape(&v.path),
            v.line
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

/// Every rule id with its one-line description, `pragma` included.
fn rule_catalogue() -> Vec<(&'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str)> = Vec::new();
    for r in rules::all() {
        out.push((r.id(), r.describe()));
    }
    for r in rules::workspace_rules() {
        out.push((r.id(), r.describe()));
    }
    out.push((
        "pragma",
        "reserved: malformed or stale `// nss-lint: allow(…) — reason` pragmas",
    ));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    #[test]
    fn renders_rules_and_results() {
        let report = Report {
            files: vec!["a.rs".into()],
            violations: vec![Violation {
                path: "a.rs".into(),
                line: 7,
                rule: "lock-order",
                message: "cycle: \"a\" → b".into(),
            }],
        };
        let s = render(&report);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("cycle: \\\"a\\\" → b"));
        // Every registered rule appears in the driver catalogue.
        for id in crate::rules::ids() {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn empty_results_is_valid() {
        let s = render(&Report {
            files: vec![],
            violations: vec![],
        });
        assert!(s.contains("\"results\": []"));
    }
}
