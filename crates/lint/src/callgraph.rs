//! Cross-crate call graph over the [`parser`](crate::parser) item model.
//!
//! Resolution is name-based and deliberately conservative about *shape*:
//! a bare `f(…)` resolves only to free functions (or the enclosing
//! function's callable parameters), `recv.m(…)` only to methods, and
//! `Type::f(…)` prefers methods of `Type`. Cross-crate candidates are
//! admitted only through the file's `use nss_*` imports, and a denylist of
//! ubiquitous std method names (`push`, `insert`, `len`, …) keeps the
//! graph from inventing edges through standard-library calls. False
//! negatives are possible — this is a lint, not a compiler — but every
//! admitted edge corresponds to a plausible same-name call.

use crate::parser::{self, CallSite, FnItem};
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Std method names never resolved against workspace items: edges through
/// these would almost always be `Vec`/`HashMap`/iterator calls.
const STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "get_or_insert_with",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "next_back",
    "clone",
    "to_string",
    "to_vec",
    "to_owned",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "collect",
    "extend",
    "contains",
    "contains_key",
    "entry",
    "or_insert_with",
    "or_default",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "min",
    "max",
    "min_by",
    "max_by",
    "sum",
    "count",
    "rev",
    "enumerate",
    "zip",
    "chain",
    "take",
    "skip",
    "find",
    "position",
    "any",
    "all",
    "fold",
    "for_each",
    "retain",
    "drain",
    "clear",
    "split",
    "splitn",
    "trim",
    "parse",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "as_slice",
    "as_deref",
    "to_le_bytes",
    "to_be_bytes",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "write",
    "read",
    "flatten",
    "flat_map",
    "copied",
    "cloned",
    "windows",
    "chunks",
    "first",
    "last",
    "starts_with",
    "ends_with",
    "abs",
    "min_by_key",
    "max_by_key",
    "push_str",
    "replace",
    "split_whitespace",
    "lines",
    "bytes",
    "chars",
    "floor",
    "ceil",
    "round",
    "powi",
    "powf",
    "exp",
    "ln",
    "keys",
    "values",
];

/// One call site with its resolved workspace candidates.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// The lexical site.
    pub site: CallSite,
    /// Indices into [`Workspace::fns`] (empty when the call resolves to
    /// std / vendored code — no edge).
    pub callees: Vec<usize>,
    /// The call invokes a callable parameter of the enclosing function.
    pub param_call: bool,
}

/// Parsed workspace: files, functions, and the resolved call graph.
pub struct Workspace {
    /// Parsed source files, in scan order.
    pub files: Vec<SourceFile>,
    /// Every `fn` item across the workspace.
    pub fns: Vec<FnItem>,
    /// `calls[f]` = resolved call sites inside `fns[f]`'s body.
    pub calls: Vec<Vec<ResolvedCall>>,
}

impl Workspace {
    /// Parses items and resolves the call graph over `files`.
    pub fn build(files: Vec<SourceFile>) -> Workspace {
        let mut fns = Vec::new();
        for (idx, file) in files.iter().enumerate() {
            fns.extend(parser::parse_fns(idx, file));
        }
        // Name → candidate fn indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        let imports: Vec<BTreeSet<String>> = files.iter().map(parser::imported_crates).collect();
        let crate_names: Vec<String> = files.iter().map(|f| f.crate_name.clone()).collect();

        let mut calls = Vec::with_capacity(fns.len());
        for f in &fns {
            let Some(body) = f.body else {
                calls.push(Vec::new());
                continue;
            };
            let file = &files[f.file];
            let sites = parser::call_sites(file, body);
            let resolved = sites
                .into_iter()
                .map(|site| {
                    resolve(
                        &site,
                        f,
                        file,
                        &fns,
                        &by_name,
                        &imports[f.file],
                        &crate_names,
                    )
                })
                .collect();
            calls.push(resolved);
        }
        Workspace { files, fns, calls }
    }

    /// Index of the innermost function whose body contains token `tok` of
    /// file `file`.
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body.is_some_and(|(o, c)| o < tok && tok < c))
            .min_by_key(|(_, f)| {
                let (o, c) = f.body.unwrap_or((0, usize::MAX));
                c - o
            })
            .map(|(i, _)| i)
    }

    /// Breadth-first reachability from `from` over resolved call edges.
    /// Returns `parent[f] = caller` links for every function reached
    /// (excluding `from` itself) — follow them backwards for a path.
    pub fn reach(&self, from: usize) -> BTreeMap<usize, usize> {
        let mut parent = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(f) = queue.pop_front() {
            for rc in &self.calls[f] {
                for &callee in &rc.callees {
                    if callee != from && !parent.contains_key(&callee) {
                        parent.insert(callee, f);
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// Renders the call path `from → … → to` (function names) implied by a
    /// [`Workspace::reach`] parent map.
    pub fn path(&self, from: usize, to: usize, parent: &BTreeMap<usize, usize>) -> String {
        let mut chain = vec![to];
        let mut cur = to;
        while let Some(&p) = parent.get(&cur) {
            chain.push(p);
            cur = p;
            if p == from || chain.len() > 12 {
                break;
            }
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fn_name(i))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// `Type::name` / `name` display form of `fns[i]`.
    pub fn fn_name(&self, i: usize) -> String {
        let f = &self.fns[i];
        match &f.qual {
            Some(q) => format!("{}::{}", q, f.name),
            None => f.name.clone(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    site: &CallSite,
    caller: &FnItem,
    file: &SourceFile,
    fns: &[FnItem],
    by_name: &BTreeMap<&str, Vec<usize>>,
    imports: &BTreeSet<String>,
    crate_names: &[String],
) -> ResolvedCall {
    // Callable parameter invocation: `build()` inside a fn taking
    // `build: impl FnOnce() -> V`.
    if !site.method
        && site.prefix.is_none()
        && caller
            .params
            .iter()
            .any(|p| p.is_callable && p.name == site.name)
    {
        return ResolvedCall {
            site: site.clone(),
            callees: Vec::new(),
            param_call: true,
        };
    }
    if site.method && STD_METHODS.contains(&site.name.as_str()) {
        return unresolved(site);
    }
    let Some(cands) = by_name.get(site.name.as_str()) else {
        return unresolved(site);
    };
    // Shape filter first.
    let shaped: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| {
            let cand = &fns[i];
            if let Some(pfx) = &site.prefix {
                // `Type::f` → methods of Type; `Self::f` → own impl type;
                // `module::f` → free fns.
                match &cand.qual {
                    Some(q) => q == pfx || (pfx == "Self" && caller.qual.as_deref() == Some(q)),
                    None => pfx.chars().next().is_some_and(|c| c.is_lowercase()),
                }
            } else if site.method {
                cand.qual.is_some()
            } else {
                cand.qual.is_none()
            }
        })
        .collect();
    // Locality filter: same file, else same crate, else imported crates.
    let pick = |pred: &dyn Fn(&FnItem) -> bool| -> Vec<usize> {
        shaped.iter().copied().filter(|&i| pred(&fns[i])).collect()
    };
    let same_file = pick(&|c: &FnItem| c.file == caller.file);
    let callees = if !same_file.is_empty() {
        same_file
    } else {
        let caller_crate = file.crate_name.clone();
        let same_crate = pick(&|c: &FnItem| crate_names[c.file] == caller_crate);
        if !same_crate.is_empty() {
            same_crate
        } else {
            pick(&|c: &FnItem| imports.contains(&crate_names[c.file]))
        }
    };
    ResolvedCall {
        site: site.clone(),
        callees,
        param_call: false,
    }
}

fn unresolved(site: &CallSite) -> ResolvedCall {
    ResolvedCall {
        site: site.clone(),
        callees: Vec::new(),
        param_call: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(path, krate, src)| SourceFile::parse(path, krate, FileKind::LibSrc, src))
                .collect(),
        )
    }

    #[test]
    fn resolves_same_crate_free_calls() {
        let w = ws(&[("a.rs", "model", "fn leaf() {}\nfn root() { leaf(); }\n")]);
        let root = w.fns.iter().position(|f| f.name == "root").unwrap();
        let leaf = w.fns.iter().position(|f| f.name == "leaf").unwrap();
        assert_eq!(w.calls[root][0].callees, vec![leaf]);
    }

    #[test]
    fn cross_crate_needs_import() {
        let files = [
            (
                "crates/model/src/a.rs",
                "model",
                "pub fn shared_leaf() {}\n",
            ),
            (
                "crates/sim/src/b.rs",
                "sim",
                "use nss_model::a::shared_leaf;\nfn root() { shared_leaf(); }\n",
            ),
            (
                "crates/core/src/c.rs",
                "core",
                "fn other() { shared_leaf(); }\n",
            ),
        ];
        let w = ws(&files);
        let leaf = w.fns.iter().position(|f| f.name == "shared_leaf").unwrap();
        let root = w.fns.iter().position(|f| f.name == "root").unwrap();
        let other = w.fns.iter().position(|f| f.name == "other").unwrap();
        assert_eq!(w.calls[root][0].callees, vec![leaf], "imported: edge");
        assert!(w.calls[other][0].callees.is_empty(), "no import: no edge");
    }

    #[test]
    fn method_shape_and_std_denylist() {
        let w = ws(&[(
            "a.rs",
            "model",
            "impl Foo { fn work(&self) {} }\nfn root(f: &Foo, v: &mut Vec<u32>) { f.work(); v.push(1); work_free(); }\nfn work_free() {}\n",
        )]);
        let root = w.fns.iter().position(|f| f.name == "root").unwrap();
        let work = w.fns.iter().position(|f| f.name == "work").unwrap();
        let free = w.fns.iter().position(|f| f.name == "work_free").unwrap();
        let names: Vec<(String, Vec<usize>)> = w.calls[root]
            .iter()
            .map(|c| (c.site.name.clone(), c.callees.clone()))
            .collect();
        assert_eq!(names[0], ("work".into(), vec![work]));
        assert_eq!(names[1], ("push".into(), vec![]));
        assert_eq!(names[2], ("work_free".into(), vec![free]));
    }

    #[test]
    fn param_call_is_flagged_not_resolved() {
        let w = ws(&[(
            "a.rs",
            "analysis",
            "fn build() {}\nfn cached(build: impl FnOnce() -> u32) -> u32 { build() }\n",
        )]);
        let cached = w.fns.iter().position(|f| f.name == "cached").unwrap();
        assert!(w.calls[cached][0].param_call);
        assert!(w.calls[cached][0].callees.is_empty());
    }

    #[test]
    fn reach_and_path() {
        let w = ws(&[(
            "a.rs",
            "model",
            "fn c() {}\nfn b() { c(); }\nfn a() { b(); }\n",
        )]);
        let a = w.fns.iter().position(|f| f.name == "a").unwrap();
        let c = w.fns.iter().position(|f| f.name == "c").unwrap();
        let parent = w.reach(a);
        assert!(parent.contains_key(&c));
        assert_eq!(w.path(a, c, &parent), "a → b → c");
    }
}
