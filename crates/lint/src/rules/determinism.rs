//! `determinism` — no iteration over hash-ordered collections.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and (upstream)
//! randomized per process; any such order reaching CSV/SVG/trace output or
//! a float accumulation (`sum` over f64 is not associative) breaks bitwise
//! reproducibility. The rule tracks identifiers bound to hash collections
//! within a file — `name: HashMap<…>` annotations (fields, lets, params,
//! including nested types like `Vec<HashMap<…>>`) and
//! `let name = HashMap::new()` initializers — and flags any iteration-shaped
//! use of them: `.iter()`, `.values()`, `.drain()`, … (through postfix
//! chains like `self.map.read().values()`) or direct `for x in &name`.
//!
//! Keyed access (`get`/`insert`/`entry`/`remove`) is order-free and not
//! flagged. Order-independent folds (e.g. summing `usize`) are legitimate —
//! use a pragma with that reason.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{SourceFile, Violation};

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn describe(&self) -> &'static str {
        "no iteration over HashMap/HashSet outside tests (unspecified order); \
         use BTreeMap/BTreeSet or sort before draining"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let toks = &file.toks;
        let names = hash_bound_names(file);
        if names.is_empty() {
            return;
        }
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || !names.contains(&t.text) || file.is_test_line(t.line) {
                continue;
            }
            // Skip the declaration site itself (`name :` / `name =`).
            if toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct(":") || n.is_punct("="))
            {
                continue;
            }
            if let Some((line, method)) = chain_iteration(file, i) {
                out.push(violation(
                    file,
                    line,
                    self.id(),
                    format!(
                        "iteration over hash-ordered `{}` via `.{}()` has unspecified \
                         order; use a BTree collection or an explicit sort",
                        t.text, method
                    ),
                ));
            }
            // `for x in name` / `for x in &mut name { … }`.
            let mut back = i;
            while back > 0 {
                let p = &toks[back - 1];
                if p.is_punct("&") || p.is_ident("mut") {
                    back -= 1;
                } else {
                    break;
                }
            }
            if back >= 1
                && toks[back - 1].is_ident("in")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("{"))
            {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    format!(
                        "`for … in {}` iterates a hash-ordered collection in \
                         unspecified order",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// Identifiers in this file that are (or contain) hash collections: type
/// ascriptions whose type mentions `HashMap`/`HashSet`, and `let`-bindings
/// initialized from `HashMap::new()`-style constructors. Shared with the
/// `nondeterminism-taint` rule, which treats the same iterations as taint
/// sources.
pub(super) fn hash_bound_names(file: &SourceFile) -> Vec<String> {
    let toks = &file.toks;
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over the type expression to the `:` or `=` that binds
        // it, then take the identifier before that. Bounded lookback keeps
        // this linear in practice.
        let lo = i.saturating_sub(24);
        let mut j = i;
        while j > lo {
            j -= 1;
            let p = &toks[j];
            if p.is_punct(":") || p.is_punct("=") {
                if j > 0 && toks[j - 1].kind == TokKind::Ident {
                    let name = &toks[j - 1].text;
                    if name != "mut" && !names.contains(name) {
                        names.push(name.clone());
                    }
                }
                break;
            }
            // A statement boundary or arrow before the binder means this
            // mention is a return type / standalone path — no binder.
            if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") || p.is_punct("->") {
                break;
            }
        }
    }
    names
}

/// If the postfix chain rooted at token `i` reaches an iteration method,
/// returns `(line, method)`. The chain follows field projections, index
/// groups, and intermediate calls (`self.map.read().values()`).
pub(super) fn chain_iteration(file: &SourceFile, i: usize) -> Option<(u32, String)> {
    let toks = &file.toks;
    let mut j = i + 1;
    let mut hops = 0usize;
    while j < toks.len() && hops < 8 {
        let t = &toks[j];
        if t.is_punct("[") {
            j = file.match_delim(j)? + 1;
            continue;
        }
        if !t.is_punct(".") {
            return None;
        }
        let m = toks.get(j + 1)?;
        if m.kind != TokKind::Ident {
            return None;
        }
        if ITER_METHODS.contains(&m.text.as_str())
            && toks.get(j + 2).is_some_and(|n| n.is_punct("("))
        {
            return Some((m.line, m.text.clone()));
        }
        match toks.get(j + 2) {
            Some(n) if n.is_punct("(") => {
                // Intermediate call (e.g. `.read()`); continue after it.
                j = file.match_delim(j + 2)? + 1;
            }
            _ => {
                // Field projection; continue after the field.
                j += 2;
            }
        }
        hops += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(src: &str) -> Vec<Violation> {
        lint_source(
            "crates/analysis/src/x.rs",
            "analysis",
            FileKind::LibSrc,
            src,
        )
        .into_iter()
        .filter(|v| v.rule == "determinism")
        .collect()
    }

    #[test]
    fn direct_iteration_flagged() {
        let vs = lint("fn f(m: HashMap<u32, f64>) { for (k, v) in m.iter() { use_it(k, v); } }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("iter"));
    }

    #[test]
    fn for_loop_over_reference_flagged() {
        let vs = lint("fn f(s: HashSet<u32>) { for v in &s { use_it(v); } }\n");
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn chained_iteration_through_lock_flagged() {
        let src = "struct C { map: RwLock<HashMap<K, V>> }\n\
                   impl C { fn b(&self) -> usize { self.map.read().values().count() } }\n";
        let vs = lint(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("values"));
    }

    #[test]
    fn nested_type_and_index_flagged() {
        let src = "fn f(audible: Vec<HashMap<u32, bool>>, v: usize) {\n\
                   for flag in audible[v].values_mut() { *flag = false; }\n}\n";
        let vs = lint(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn keyed_access_clean() {
        let src = "fn f(memo: &mut HashMap<(u64, u64), f64>) -> f64 {\n\
                   if let Some(&v) = memo.get(&(1, 2)) { return v; }\n\
                   memo.insert((1, 2), 0.5);\n\
                   *memo.entry((1, 2)).or_insert(0.0)\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn btree_iteration_clean() {
        let src = "fn f(m: BTreeMap<u32, f64>) { for (k, v) in m.iter() { use_it(k, v); } }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn tests_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(m: HashMap<u32, u32>) { for v in m.values() { use_it(v); } }\n}\n";
        assert!(lint(src).is_empty());
    }
}
