//! `blocking-in-handler` — HTTP route handlers stay cheap.
//!
//! The obs scrape endpoint and the nss-serve query routes run on a small
//! fixed worker pool (`nss_obs::http`); one handler that parks a thread or
//! holds a shard lock through a kernel build stalls the whole plane. The
//! rule finds route registrations — `.get("/path", handler)` /
//! `.post("/path", handler)` with a literal path — and checks the handler
//! closure's body:
//!
//! * no unbounded reads (`read_to_end` / `read_to_string`): request bodies
//!   are length-delimited by the server, a handler re-reading the stream
//!   can hang on a slow client;
//! * no lock guard held across kernel computation — a call whose name
//!   says it computes (`run`/`build`/`solve`/`sweep`/`compute`/`simulate`)
//!   while a `.lock()` guard is live. The blessed pattern is the
//!   `ShardedCache` one: compute outside, lock briefly to install.
//!
//! Deeper blocking through callees of the handler is covered by the
//! `lock-order` rule's transitive pass; this rule is the handler-local
//! gate.

use super::{Violation, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::lexer::TokKind;
use crate::SourceFile;

/// Call-name stems that mark kernel-scale computation.
const COMPUTE_STEMS: &[&str] = &["run", "build", "solve", "sweep", "compute", "simulate"];

/// Methods that read a stream to exhaustion.
const UNBOUNDED_READS: &[&str] = &["read_to_end", "read_to_string"];

pub struct BlockingInHandler;

impl WorkspaceRule for BlockingInHandler {
    fn id(&self) -> &'static str {
        "blocking-in-handler"
    }

    fn describe(&self) -> &'static str {
        "route handlers must not hold a lock across kernel computation or \
         perform unbounded stream reads"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        for file in &ws.files {
            let toks = &file.toks;
            for (i, t) in toks.iter().enumerate() {
                // `.get("…", …)` / `.post("…", …)` route registration.
                if !(t.is_ident("get") || t.is_ident("post"))
                    || i == 0
                    || !toks[i - 1].is_punct(".")
                    || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    || !toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Str)
                    || file.is_test_line(t.line)
                {
                    continue;
                }
                let Some(close) = file.match_delim(i + 1) else {
                    continue;
                };
                check_handler(file, (i + 3, close), out);
            }
        }
    }
}

/// Scans the handler region (everything after the path literal, up to the
/// registration call's closing paren).
fn check_handler(file: &SourceFile, region: (usize, usize), out: &mut Vec<Violation>) {
    let toks = &file.toks;
    // (depth, temporary) of live guards; ids don't matter here.
    let mut guards: Vec<(usize, bool)> = Vec::new();
    let mut depth = 0usize;
    for i in region.0..region.1 {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            guards.retain(|&(d, _)| d < depth);
            depth = depth.saturating_sub(1);
        } else if t.is_punct(";") {
            guards.retain(|&(d, temp)| !(temp && d == depth));
        } else if t.kind != TokKind::Ident {
            continue;
        }
        let callish = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if t.is_ident("lock") && callish && i > 0 && toks[i - 1].is_punct(".") {
            // Named (`let g = ….lock()…;`) vs temporary guard: a statement
            // keyword `let` anywhere earlier on the line is good enough at
            // handler scale.
            let named = toks[..i]
                .iter()
                .rev()
                .take_while(|p| p.line == t.line)
                .any(|p| p.is_ident("let"));
            guards.push((depth, !named));
        } else if callish && UNBOUNDED_READS.contains(&t.text.as_str()) {
            out.push(Violation {
                path: file.path.clone(),
                line: t.line,
                rule: "blocking-in-handler",
                message: format!(
                    "`{}` in a route handler reads the stream to exhaustion and can \
                     hang on a slow client — the server already length-delimits the \
                     body",
                    t.text
                ),
            });
        } else if callish
            && !guards.is_empty()
            && COMPUTE_STEMS
                .iter()
                .any(|s| t.text == *s || t.text.starts_with(&format!("{s}_")))
        {
            out.push(Violation {
                path: file.path.clone(),
                line: t.line,
                rule: "blocking-in-handler",
                message: format!(
                    "handler holds a lock guard across `{}(…)` — compute outside the \
                     lock, then re-lock briefly to install the result",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, SourceFile};

    fn run(src: &str) -> Vec<Violation> {
        let ws = Workspace::build(vec![SourceFile::parse(
            "crates/serve/src/lib.rs",
            "serve",
            FileKind::LibSrc,
            src,
        )]);
        let mut out = Vec::new();
        BlockingInHandler.check(&ws, &mut out);
        out
    }

    #[test]
    fn unbounded_read_in_handler_flagged() {
        let vs = run("fn router() -> Router {\n\
               Router::new().get(\"/dump\", |req| {\n\
                 let mut body = String::new();\n\
                 req.stream.read_to_string(&mut body);\n\
                 Response::text(body)\n\
               })\n\
             }\n");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("read_to_string"));
    }

    #[test]
    fn lock_across_compute_in_handler_flagged() {
        let vs = run("fn router(s: Arc<S>) -> Router {\n\
               Router::new().post(\"/v1/solve\", move |req| {\n\
                 let mut cache = s.cache.lock().unwrap();\n\
                 let v = solve_grid(req);\n\
                 cache.insert(v);\n\
                 Response::json(v)\n\
               })\n\
             }\n");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("solve_grid"));
    }

    #[test]
    fn compute_outside_lock_is_clean() {
        let vs = run("fn router(s: Arc<S>) -> Router {\n\
               Router::new().post(\"/v1/solve\", move |req| {\n\
                 let v = solve_grid(req);\n\
                 s.cache.lock().unwrap().insert(v);\n\
                 Response::json(v)\n\
               })\n\
             }\n");
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn hashmap_get_is_not_a_route() {
        let vs = run("fn f(m: &BTreeMap<String, u32>) {\n\
               let v = m.get(\"key\");\n\
               stream.read_to_string(&mut s);\n\
             }\n");
        // `m.get(\"key\")` has a Str first arg but no handler; the read is
        // outside any handler region…
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn compute_outside_handler_is_clean() {
        let vs = run(
            "fn precompute(s: &S) { let g = s.cache.lock().unwrap(); let v = build_kernel(); }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }
}
