//! The rule catalogue.
//!
//! Each rule is a pure function over a parsed [`SourceFile`]; adding a rule
//! means adding a module here, registering it in [`all`], and giving it a
//! fixture pair under `tests/fixtures/` (see DESIGN.md §8 for the recipe).

use crate::{SourceFile, Violation};

mod determinism;
mod float;
mod obs;
mod panic;
mod rng;

/// A single lint rule.
pub trait Rule {
    /// Stable id, as named by pragmas and JSON reports.
    fn id(&self) -> &'static str;
    /// One-line description for `nss-lint rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>);
}

/// Every registered rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(rng::RngDiscipline),
        Box::new(determinism::Determinism),
        Box::new(panic::PanicHygiene),
        Box::new(float::FloatSafety),
        Box::new(obs::FeatureHygiene),
    ]
}

/// Ids of every rule (pragma validation).
pub fn ids() -> Vec<&'static str> {
    all().iter().map(|r| r.id()).collect()
}

/// Shorthand used by the rule modules.
pub(crate) fn violation(
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    message: String,
) -> Violation {
    Violation {
        path: file.path.clone(),
        line,
        rule,
        message,
    }
}
