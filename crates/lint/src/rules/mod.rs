//! The rule catalogue.
//!
//! Rules come in two shapes. A [`Rule`] is a pure function over one parsed
//! [`SourceFile`]; a [`WorkspaceRule`] sees the whole parsed workspace —
//! the cross-crate call graph in [`Workspace`] — and powers the
//! interprocedural checks (lock ordering, taint flow, handler hygiene).
//! Adding a rule means adding a module here, registering it in [`all`] or
//! [`workspace_rules`], giving it a fixture pair under `tests/fixtures/`
//! (see DESIGN.md §8 for the recipe), and re-running
//! `cargo run -p nss-lint -- rules --write docs/LINTS.md`.

use crate::callgraph::Workspace;
use crate::{SourceFile, Violation};

mod atomic;
mod blocking;
pub(crate) mod determinism;
mod float;
mod lock_order;
mod obs;
mod panic;
mod rng;
mod taint;
mod unsafe_hygiene;

/// A single per-file lint rule.
pub trait Rule {
    /// Stable id, as named by pragmas and JSON reports.
    fn id(&self) -> &'static str;
    /// One-line description for `nss-lint rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings for `file` to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>);
}

/// An interprocedural rule over the whole parsed workspace.
pub trait WorkspaceRule {
    /// Stable id, as named by pragmas and JSON reports.
    fn id(&self) -> &'static str;
    /// One-line description for `nss-lint rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings across `ws` to `out` (paths identify the files).
    fn check(&self, ws: &Workspace, out: &mut Vec<Violation>);
}

/// Every registered per-file rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(rng::RngDiscipline),
        Box::new(determinism::Determinism),
        Box::new(panic::PanicHygiene),
        Box::new(float::FloatSafety),
        Box::new(obs::FeatureHygiene),
        Box::new(atomic::AtomicProtocol),
        Box::new(unsafe_hygiene::UnsafeHygiene),
    ]
}

/// Every registered workspace rule, in reporting order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(taint::NondeterminismTaint),
        Box::new(blocking::BlockingInHandler),
    ]
}

/// Ids of every rule, per-file and workspace (pragma validation).
pub fn ids() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = all().iter().map(|r| r.id()).collect();
    out.extend(workspace_rules().iter().map(|r| r.id()));
    out
}

/// Shorthand used by the rule modules.
pub(crate) fn violation(
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    message: String,
) -> Violation {
    Violation {
        path: file.path.clone(),
        line,
        rule,
        message,
    }
}
