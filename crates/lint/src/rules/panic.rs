//! `panic-hygiene` — library crates fail through `ConfigError`, not panics.
//!
//! A panic inside `nss-model`/`nss-analysis`/`nss-sim`/… aborts a whole
//! sweep or replication batch from deep inside a worker thread; callers
//! can neither map it to a grid cell nor degrade gracefully. Library code
//! must surface failures as `Result<_, ConfigError>` (or `io::Error` at IO
//! boundaries). `assert!` on internal invariants is fine — those are bug
//! traps, not error paths — as are panics in tests, binaries, and benches.
//!
//! Flagged in `LibSrc` outside `#[cfg(test)]`: `.unwrap()`, `.expect(…)`,
//! `panic!`, `todo!`, `unimplemented!`.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{FileKind, SourceFile, Violation};

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

pub struct PanicHygiene;

impl Rule for PanicHygiene {
    fn id(&self) -> &'static str {
        "panic-hygiene"
    }

    fn describe(&self) -> &'static str {
        "no unwrap()/expect()/panic! in library crates outside #[cfg(test)]; \
         route failures through ConfigError"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.kind != FileKind::LibSrc {
            return;
        }
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || file.is_test_line(t.line) {
                continue;
            }
            let method_call = |name: &str| {
                t.text == name
                    && i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            };
            if method_call("unwrap") || method_call("expect") {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    format!(
                        "`.{}()` can panic in library code; return a ConfigError \
                         (or io::Error) instead",
                        t.text
                    ),
                ));
            } else if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    format!(
                        "`{}!` in library code aborts the caller; return a \
                         ConfigError instead",
                        t.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(kind: FileKind, src: &str) -> Vec<Violation> {
        lint_source("crates/model/src/x.rs", "model", kind, src)
            .into_iter()
            .filter(|v| v.rule == "panic-hygiene")
            .collect()
    }

    #[test]
    fn unwrap_expect_panic_flagged_in_lib() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"msg\");\n\
                   if a + b == 0 { panic!(\"boom\"); }\n\
                   a\n}\n";
        let vs = lint(FileKind::LibSrc, src);
        assert_eq!(vs.len(), 3, "{vs:?}");
    }

    #[test]
    fn unwrap_or_family_clean() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default() }\n";
        assert!(lint(FileKind::LibSrc, src).is_empty());
    }

    #[test]
    fn asserts_are_allowed() {
        let src = "fn f(s: u32) { assert!(s >= 1); debug_assert_eq!(s, s); }\n";
        assert!(lint(FileKind::LibSrc, src).is_empty());
    }

    #[test]
    fn tests_bins_and_benches_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint(FileKind::BinSrc, src).is_empty());
        assert!(lint(FileKind::TestSrc, src).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests {\n fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint(FileKind::LibSrc, in_test_mod).is_empty());
    }

    #[test]
    fn doc_comment_mentions_not_flagged() {
        let src =
            "/// Panics if `x` is `None` — call `validate()` first; never unwrap().\nfn f() {}\n";
        assert!(lint(FileKind::LibSrc, src).is_empty());
    }
}
