//! `nondeterminism-taint` — nondeterministic sources must not reach
//! determinism sinks.
//!
//! The repo's outputs are bitwise-pinned: fig4/fig8 CSVs, `SimTrace`
//! digests, and the Exact-policy BENCH fields are compared byte-for-byte
//! across runs and machines. A wall-clock read, a thread id, a pointer
//! address, or a hash-iteration order anywhere on the call path that
//! produces those artifacts silently breaks the pin.
//!
//! **Sources** (per site): `Instant::now` / `SystemTime::now`, thread-id
//! reads (`thread::current().id()` / `ThreadId`), pointer-as-integer
//! (`as_ptr() as usize`), and iteration over hash-ordered collections
//! (shared detection with the per-file `determinism` rule).
//!
//! **Sinks** (per function): anything `csv` in its name (`write_csv`,
//! `csv_to_markdown`), and simulation entry points returning `SimTrace` /
//! `TdmaOutcome` / `ReplicatedTraces` — their return values feed the
//! pinned digests.
//!
//! **Flow**: a source site in function `F` is flagged when the value can
//! plausibly reach a sink through the call graph — `F` is a sink, `F`
//! transitively calls a sink, or `F`'s return value propagates up through
//! callers to a function that does (`emit()` calling both `rows()` — which
//! iterates a `HashMap` — and `write_csv(rows(…))`). The diagnostic names
//! the sink and one example chain. Timing that feeds the obs plane only
//! (histograms, status lines) is legal by design — that is exactly what
//! the pragma is for, and the live workspace's clock reads carry pragmas
//! saying so.

use super::{determinism, Violation, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::lexer::TokKind;
use crate::SourceFile;
use std::collections::{BTreeSet, VecDeque};

/// Return-type names that mark a function as a determinism sink.
const SINK_RETURNS: &[&str] = &["SimTrace", "TdmaOutcome", "ReplicatedTraces"];

pub struct NondeterminismTaint;

/// One nondeterministic read site.
struct Source {
    line: u32,
    what: &'static str,
    detail: String,
}

impl WorkspaceRule for NondeterminismTaint {
    fn id(&self) -> &'static str {
        "nondeterminism-taint"
    }

    fn describe(&self) -> &'static str {
        "clock/thread-id/pointer/hash-order reads must not sit on a call path \
         that produces pinned artifacts (CSV writers, SimTrace-returning fns)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        let n = ws.fns.len();
        let sinks: BTreeSet<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_test && is_sink(f))
            .map(|(i, _)| i)
            .collect();
        if sinks.is_empty() {
            return;
        }
        // Reverse call edges, then "can reach a sink" = backward closure
        // from the sinks over callers.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for fi in 0..n {
            for rc in &ws.calls[fi] {
                for &c in &rc.callees {
                    rev[c].push(fi);
                }
            }
        }
        let mut reaches_sink = vec![false; n];
        let mut queue: VecDeque<usize> = sinks.iter().copied().collect();
        for &s in &sinks {
            reaches_sink[s] = true;
        }
        while let Some(f) = queue.pop_front() {
            for &caller in &rev[f] {
                if !reaches_sink[caller] {
                    reaches_sink[caller] = true;
                    queue.push_back(caller);
                }
            }
        }

        for (fi, f) in ws.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(body) = f.body else { continue };
            let file = &ws.files[f.file];
            let srcs = find_sources(file, body);
            if srcs.is_empty() {
                continue;
            }
            // Nearest function (self included, then callers upward) whose
            // forward call cone contains a sink: the tainted value can flow
            // up to it as a return value and onward into the sink.
            let Some(carrier) = nearest_carrier(fi, &rev, &reaches_sink) else {
                continue;
            };
            let (sink, route) = forward_route(ws, carrier, &sinks);
            for s in srcs {
                let how = if carrier == fi && sink == fi {
                    format!("inside sink `{}` itself", ws.fn_name(sink))
                } else if carrier == fi {
                    format!("can reach sink `{}` via {route}", ws.fn_name(sink))
                } else {
                    format!(
                        "flows (through return values) up to `{}`, which reaches sink \
                         `{}` via {route}",
                        ws.fn_name(carrier),
                        ws.fn_name(sink)
                    )
                };
                out.push(Violation {
                    path: file.path.clone(),
                    line: s.line,
                    rule: self.id(),
                    message: format!(
                        "{} ({}) {how} — pinned outputs must not depend on it; if this \
                         feeds timing/obs fields only, say so in a pragma",
                        s.what, s.detail
                    ),
                });
            }
        }
    }
}

/// BFS over callers from `fi` (self first) for a fn that reaches a sink.
fn nearest_carrier(fi: usize, rev: &[Vec<usize>], reaches_sink: &[bool]) -> Option<usize> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(fi);
    queue.push_back(fi);
    while let Some(a) = queue.pop_front() {
        if reaches_sink[a] {
            return Some(a);
        }
        for &caller in &rev[a] {
            if seen.insert(caller) {
                queue.push_back(caller);
            }
        }
    }
    None
}

/// The first sink in `carrier`'s forward cone, with a rendered call path
/// (`carrier` must satisfy `reaches_sink`).
fn forward_route(ws: &Workspace, carrier: usize, sinks: &BTreeSet<usize>) -> (usize, String) {
    if sinks.contains(&carrier) {
        return (carrier, ws.fn_name(carrier));
    }
    let parent = ws.reach(carrier);
    let sink = sinks
        .iter()
        .find(|s| parent.contains_key(s))
        .copied()
        .expect("carrier reaches a sink");
    let route = ws.path(carrier, sink, &parent);
    (sink, route)
}

/// A function is a sink when its name mentions `csv` or it returns a
/// pinned simulation artifact.
fn is_sink(f: &crate::parser::FnItem) -> bool {
    f.name.contains("csv") || f.ret.iter().any(|r| SINK_RETURNS.contains(&r.as_str()))
}

/// Scans one body for nondeterministic reads.
fn find_sources(file: &SourceFile, body: (usize, usize)) -> Vec<Source> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let hash_names = determinism::hash_bound_names(file);
    for i in body.0 + 1..body.1 {
        let t = &toks[i];
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        // `Instant::now(` / `SystemTime::now(`.
        if t.is_ident("now")
            && i >= 2
            && toks[i - 1].is_punct("::")
            && (toks[i - 2].is_ident("Instant") || toks[i - 2].is_ident("SystemTime"))
        {
            out.push(Source {
                line: t.line,
                what: "wall-clock read",
                detail: format!("{}::now", toks[i - 2].text),
            });
        }
        // `thread::current().id()` / explicit `ThreadId`.
        if (t.is_ident("id")
            && i >= 4
            && toks[i - 1].is_punct(".")
            && toks[i - 2].is_punct(")")
            && toks[i - 4].is_ident("current"))
            || t.is_ident("ThreadId")
        {
            out.push(Source {
                line: t.line,
                what: "thread-id read",
                detail: "thread identity varies per run".to_string(),
            });
        }
        // `as_ptr() as usize` — pointer addresses are ASLR-random.
        if (t.is_ident("as_ptr") || t.is_ident("as_mut_ptr"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(")"))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("as"))
            && toks
                .get(i + 4)
                .is_some_and(|n| n.is_ident("usize") || n.is_ident("u64"))
        {
            out.push(Source {
                line: t.line,
                what: "pointer-as-integer",
                detail: format!("{} as {}", t.text, toks[i + 4].text),
            });
        }
        // Hash-ordered iteration (same detection as the determinism rule).
        if hash_names.contains(&t.text) {
            if let Some((line, method)) = determinism::chain_iteration(file, i) {
                out.push(Source {
                    line,
                    what: "hash-ordered iteration",
                    detail: format!("`{}.{}()`", t.text, method),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, SourceFile};

    fn run(files: &[(&str, &str, &str)]) -> Vec<Violation> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, c, s)| SourceFile::parse(p, c, FileKind::LibSrc, s))
                .collect(),
        );
        let mut out = Vec::new();
        NondeterminismTaint.check(&ws, &mut out);
        out
    }

    #[test]
    fn clock_in_sink_fn_flagged() {
        let vs = run(&[(
            "x.rs",
            "sim",
            "fn run_one() -> SimTrace { let t = Instant::now(); go(t) }\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("wall-clock"));
        assert!(vs[0].message.contains("inside sink"));
    }

    #[test]
    fn clock_reaching_csv_across_files_flagged() {
        let files = [
            (
                "crates/experiments/src/common.rs",
                "experiments",
                "pub fn write_csv(rows: &[String]) {}\n",
            ),
            (
                "crates/experiments/src/fig.rs",
                "experiments",
                "use crate::common::write_csv;\n\
                 fn emit() { let t0 = Instant::now(); write_csv(&rows(t0)); }\n",
            ),
        ];
        let vs = run(&files);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("write_csv"), "{vs:?}");
    }

    #[test]
    fn clock_feeding_obs_only_is_clean() {
        let vs = run(&[(
            "x.rs",
            "obs",
            "fn observe_cell() { let t0 = Instant::now(); histogram(t0.elapsed()); }\n\
             fn histogram(d: Duration) {}\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn hash_iteration_flowing_through_caller_to_sink_flagged() {
        // The source fn `rows` never calls the sink; its *return value* is
        // handed to `write_csv` by the shared caller `emit`.
        let vs = run(&[(
            "x.rs",
            "experiments",
            "fn rows(m: HashMap<u32, f64>) -> Vec<String> { m.values().map(render).collect() }\n\
             fn emit(m: HashMap<u32, f64>) { write_csv(&rows(m)); }\n\
             fn write_csv(rows: &[String]) {}\n",
        )]);
        assert!(
            vs.iter()
                .any(|v| v.message.contains("hash-ordered") && v.message.contains("emit")),
            "{vs:?}"
        );
    }

    #[test]
    fn thread_id_in_sink_flagged() {
        let vs = run(&[(
            "x.rs",
            "sim",
            "fn run_one() -> SimTrace { let id = std::thread::current().id(); go(id) }\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("thread-id"));
    }

    #[test]
    fn tests_exempt() {
        let vs = run(&[(
            "x.rs",
            "sim",
            "#[cfg(test)]\nmod t {\n fn run_one() -> SimTrace { let t = Instant::now(); go(t) }\n}\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }
}
