//! `rng-discipline` — every RNG originates from a labeled `Stream`.
//!
//! Thread-count-invariant replication (PR 3) depends on all randomness
//! flowing through `nss_model::rng::SeedFactory` / `derive_seed` with a
//! `Stream` enum label. Three lexical hazards break that:
//!
//! 1. Entropy-seeded generators (`thread_rng`, `from_entropy`, `OsRng`,
//!    `ThreadRng`) — nondeterministic by construction, banned everywhere
//!    including tests.
//! 2. `SmallRng::seed_from_u64(<integer literal>)` in non-test code — a
//!    hard-coded seed is an unlabeled ad-hoc stream that collides with
//!    nothing by luck only. (Tests pin seeds deliberately; allowed there.)
//! 3. `derive_seed(master, "raw string", …)` outside `nss-model::rng` — a
//!    string label bypasses the `Stream` enum, so a typo silently forks or
//!    collides a stream.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{SourceFile, Violation};

/// The entropy-source identifiers banned outright.
const ENTROPY: &[&str] = &["thread_rng", "from_entropy", "ThreadRng", "OsRng"];

pub struct RngDiscipline;

impl Rule for RngDiscipline {
    fn id(&self) -> &'static str {
        "rng-discipline"
    }

    fn describe(&self) -> &'static str {
        "RNGs must come from labeled Streams: no entropy seeding, no literal seeds \
         outside tests, no raw string labels in derive_seed"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        // The stream-derivation module itself defines the primitives.
        if file.path.ends_with("model/src/rng.rs") {
            return;
        }
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if ENTROPY.contains(&t.text.as_str()) {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    format!(
                        "`{}` is entropy-seeded and nondeterministic; derive seeds via \
                         nss_model::rng::SeedFactory with a Stream label",
                        t.text
                    ),
                ));
                continue;
            }
            if file.is_test_line(t.line) {
                continue;
            }
            if t.text == "seed_from_u64" && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                if let Some(close) = file.match_delim(i + 1) {
                    let args = &toks[i + 2..close];
                    if args.len() == 1 && args[0].kind == TokKind::Int {
                        out.push(violation(
                            file,
                            t.line,
                            self.id(),
                            format!(
                                "literal seed `seed_from_u64({})` creates an unlabeled RNG \
                                 stream; derive the seed from a Stream",
                                args[0].text
                            ),
                        ));
                    }
                }
            }
            if t.text == "derive_seed" && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
                if let Some(close) = file.match_delim(i + 1) {
                    // Second top-level argument must not be a bare string.
                    let mut depth = 0usize;
                    let mut arg = 0usize;
                    let mut j = i + 2;
                    while j < close {
                        let a = &toks[j];
                        match a.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => arg += 1,
                            _ => {
                                if arg == 1 && a.kind == TokKind::Str {
                                    out.push(violation(
                                        file,
                                        a.line,
                                        self.id(),
                                        "raw string label in derive_seed bypasses the Stream \
                                         enum; add a Stream variant and pass its label()"
                                            .to_string(),
                                    ));
                                    break;
                                }
                            }
                        }
                        j += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(src: &str) -> Vec<Violation> {
        lint_source("crates/sim/src/x.rs", "sim", FileKind::LibSrc, src)
            .into_iter()
            .filter(|v| v.rule == "rng-discipline")
            .collect()
    }

    #[test]
    fn entropy_sources_flagged_even_in_tests() {
        let vs = lint("#[cfg(test)]\nmod tests {\n fn t() { let r = rand::thread_rng(); }\n}\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("thread_rng"));
    }

    #[test]
    fn literal_seed_flagged_outside_tests_only() {
        let bad = lint("fn f() { let r = SmallRng::seed_from_u64(42); }\n");
        assert_eq!(bad.len(), 1);
        let ok = lint("#[test]\nfn t() { let r = SmallRng::seed_from_u64(42); }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn derived_seed_variable_is_fine() {
        let vs = lint("fn f(seed: u64) { let r = SmallRng::seed_from_u64(seed); }\n");
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn raw_string_label_flagged() {
        let vs = lint("fn f(m: u64) { let s = derive_seed(m, \"adhoc\", 0); }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("Stream"));
        let ok = lint("fn f(m: u64) { let s = derive_seed(m, Stream::Probe.label(), 0); }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn rng_module_itself_exempt() {
        let vs = lint_source(
            "crates/model/src/rng.rs",
            "model",
            FileKind::LibSrc,
            "pub fn derive_seed(m: u64, label: &str, i: u64) -> u64 { m }\n",
        );
        assert!(vs.is_empty());
    }
}
