//! `lock-order` — deadlock-freedom over the workspace's mutexes.
//!
//! Builds a lock-acquisition graph over every `.lock()` site (nss-obs
//! registry/trace, nss-analysis `ShardedCache`, nss-serve, the experiment
//! harness) by walking each function body with a lexical guard tracker:
//!
//! * `let g = x.lock()…;` binds a guard until `drop(g)` or the end of its
//!   enclosing block; `x.lock().…` without a binding is a temporary that
//!   lives to the end of the statement;
//! * a lock is identified by its receiver's tail field (`shard.state.lock()`
//!   → `analysis:state`), which is stable across functions;
//! * while any guard is held: acquiring the *same* id is an immediate
//!   self-deadlock finding; acquiring a *different* id records an order
//!   edge; a blocking call (`recv`, `accept`, `read_to_string`, `sleep`,
//!   `join()`, …) is a finding; a `Condvar` wait is a finding only when a
//!   *second* guard is held (the wait consumes its own); and invoking a
//!   caller-supplied closure is a finding — this is the static check of
//!   `ShardedCache`'s "the builder runs outside the shard lock" contract;
//! * calls into other workspace functions propagate: a callee's
//!   (transitive) acquisitions become edges from the held lock, and a
//!   callee that may block makes the call site a finding.
//!
//! Any cycle in the resulting order graph — including through multiple
//! functions and crates — is reported at each participating edge site.
//!
//! Precision notes: `RwLock::read/write` are not tracked (those names are
//! overwhelmingly io/iterator calls in this codebase, which has no
//! first-party `RwLock`), and a guard moved into a `Condvar::wait` is
//! treated as still held afterwards (true: `wait` reacquires).

use super::{Violation, WorkspaceRule};
use crate::callgraph::Workspace;
use crate::lexer::TokKind;
use crate::parser::FnItem;
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Calls that park the thread. `wait`/`wait_timeout` are condvar-special
/// (they consume one guard); the rest block outright.
const BLOCKING: &[&str] = &[
    "recv",
    "recv_timeout",
    "accept",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "sleep",
    "join",
    "wait",
    "wait_timeout",
];

/// Result-unwrapping adapters chained directly onto `.lock()` that do not
/// end the guard's life.
const UNWRAPPERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];

pub struct LockOrder;

#[derive(Debug)]
struct Guard {
    /// `crate:field` lock id.
    id: String,
    /// `let`-binding name, if any (for `drop(g)` release).
    binding: Option<String>,
    /// Brace depth at acquisition; released when the block closes.
    depth: usize,
    /// Temporaries die at the first `;` at their depth.
    temporary: bool,
}

/// Per-function facts feeding the interprocedural pass.
#[derive(Debug, Default)]
struct FnFacts {
    /// Lock ids acquired directly in this fn.
    locks: BTreeSet<String>,
    /// A directly blocking call `(line, op)`, if any.
    blocking: Option<(u32, String)>,
    /// Workspace calls made while holding locks: (held ids, candidate
    /// callees of the one site, line). Name resolution can be ambiguous
    /// (`c.reset()` matches every `reset` method); the pass only asserts
    /// facts true of *every* candidate, so one innocuous same-name method
    /// vetoes the edge rather than inventing a deadlock.
    calls_under_lock: Vec<(Vec<String>, Vec<usize>, u32)>,
}

/// One order edge with its example site.
#[derive(Debug)]
struct Edge {
    from: String,
    to: String,
    path: String,
    line: u32,
    note: String,
}

impl WorkspaceRule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "no cycles in the lock-acquisition graph; no blocking calls or \
         caller-supplied closures while holding a Mutex guard"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Violation>) {
        let mut facts: Vec<FnFacts> = Vec::with_capacity(ws.fns.len());
        let mut edges: Vec<Edge> = Vec::new();
        for (fi, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.body.is_none() {
                facts.push(FnFacts::default());
                continue;
            }
            facts.push(scan_fn(ws, fi, f, &mut edges, out));
        }

        // Transitive lock sets and blocking reach, to a fixpoint.
        let trans_locks = transitive_locks(ws, &facts);
        let trans_blocking = transitive_blocking(ws, &facts);

        for (fi, fact) in facts.iter().enumerate() {
            let file = &ws.files[ws.fns[fi].file];
            for (held, callees, line) in &fact.calls_under_lock {
                // Ambiguous sites assert only what every candidate does.
                let Some((&first, rest)) = callees.split_first() else {
                    continue;
                };
                let blocks = callees.iter().all(|&c| trans_blocking[c].is_some());
                let mut locks: BTreeSet<String> = trans_locks[first].clone();
                for &c in rest {
                    locks.retain(|l| trans_locks[c].contains(l));
                }
                for h in held {
                    if blocks {
                        let (op, via) = trans_blocking[first].as_ref().expect("blocks");
                        out.push(Violation {
                            path: file.path.clone(),
                            line: *line,
                            rule: self.id(),
                            message: format!(
                                "holds `{h}` across a call to `{}`, which may block \
                                 (`{op}` via {via})",
                                ws.fn_name(first)
                            ),
                        });
                    }
                    for l in &locks {
                        if l == h {
                            out.push(Violation {
                                path: file.path.clone(),
                                line: *line,
                                rule: self.id(),
                                message: format!(
                                    "calls `{}` which (transitively) re-acquires `{h}` \
                                     while it is already held — self-deadlock",
                                    ws.fn_name(first)
                                ),
                            });
                        } else {
                            edges.push(Edge {
                                from: h.clone(),
                                to: l.clone(),
                                path: file.path.clone(),
                                line: *line,
                                note: format!("via call to `{}`", ws.fn_name(first)),
                            });
                        }
                    }
                }
            }
        }

        report_cycles(&edges, self.id(), out);
    }
}

/// Walks one function body, tracking guards; returns its direct facts and
/// appends direct findings / order edges.
fn scan_fn(
    ws: &Workspace,
    fi: usize,
    f: &FnItem,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Violation>,
) -> FnFacts {
    let file = &ws.files[f.file];
    let toks = &file.toks;
    let (open, close) = f.body.expect("checked by caller");
    // Resolved workspace calls by token index (all candidates per site).
    let calls: BTreeMap<usize, &[usize]> = ws.calls[fi]
        .iter()
        .filter(|rc| !rc.callees.is_empty())
        .map(|rc| (rc.site.tok, rc.callees.as_slice()))
        .collect();

    let mut facts = FnFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = open + 1;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct("}") {
            guards.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            stmt_start = i + 1;
        } else if t.is_punct(";") {
            guards.retain(|g| !(g.temporary && g.depth == depth));
            stmt_start = i + 1;
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.binding.as_deref() != Some(arg.text.as_str()));
                }
            }
        } else if t.is_ident("lock")
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let id = format!("{}:{}", file.crate_name, receiver_field(file, i));
            facts.locks.insert(id.clone());
            for g in &guards {
                if g.id == id {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "acquires `{id}` while already holding it — self-deadlock \
                             on a non-reentrant Mutex"
                        ),
                    });
                } else {
                    edges.push(Edge {
                        from: g.id.clone(),
                        to: id.clone(),
                        path: file.path.clone(),
                        line: t.line,
                        note: "direct nested acquisition".to_string(),
                    });
                }
            }
            // A named guard bound in an `if let`/`while let` head lives in
            // the block that follows; approximating with the current depth
            // only over-holds until the enclosing `}`, which is safe.
            let (binding, temporary) = guard_binding(file, i, stmt_start);
            guards.push(Guard {
                id,
                binding,
                depth,
                temporary,
            });
        } else if t.kind == TokKind::Ident
            && BLOCKING.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("fn"))
        {
            let condvar = t.text.starts_with("wait");
            // `join` doubles as `slice::join(sep)`; only the nullary
            // thread-handle form blocks.
            let nullary_join = t.text != "join" || toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
            if nullary_join {
                if facts.blocking.is_none() {
                    facts.blocking = Some((t.line, t.text.clone()));
                }
                let needed = if condvar { 2 } else { 1 };
                if guards.len() >= needed {
                    let held: Vec<&str> = guards.iter().map(|g| g.id.as_str()).collect();
                    out.push(Violation {
                        path: file.path.clone(),
                        line: t.line,
                        rule: "lock-order",
                        message: format!(
                            "blocking `{}` while holding {} — release the guard before \
                             parking the thread",
                            t.text,
                            held.join(", ")
                        ),
                    });
                }
            }
        } else if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !guards.is_empty()
        {
            // Caller-supplied closure under a guard: the "compute outside
            // the lock" contract, checked statically.
            let is_param_call = !toks[i - 1].is_punct(".")
                && !toks[i - 1].is_punct("::")
                && f.params.iter().any(|p| p.is_callable && p.name == t.text);
            if is_param_call {
                out.push(Violation {
                    path: file.path.clone(),
                    line: t.line,
                    rule: "lock-order",
                    message: format!(
                        "runs caller-supplied closure `{}` while holding `{}` — build \
                         outside the lock, then re-lock to install the result",
                        t.text,
                        guards.last().map(|g| g.id.as_str()).unwrap_or("?")
                    ),
                });
            } else if let Some(&callees) = calls.get(&i) {
                let held: Vec<String> = guards.iter().map(|g| g.id.clone()).collect();
                facts
                    .calls_under_lock
                    .push((held, callees.to_vec(), t.line));
            }
        }
        i += 1;
    }
    facts
}

/// Tail field of the receiver chain before the `.` at `lock_tok - 1`:
/// `self.shards[i].lock()` → `shards`; `rx.lock()` → `rx`.
fn receiver_field(file: &SourceFile, lock_tok: usize) -> String {
    let toks = &file.toks;
    let mut j = lock_tok - 1; // the `.`
    while j > 0 {
        let p = &toks[j - 1];
        if p.is_punct("]") {
            // Skip the index group backwards.
            let mut d = 0usize;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct("]") {
                    d += 1;
                } else if toks[k].is_punct("[") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        if p.kind == TokKind::Ident {
            if p.is_ident("self") && j >= 2 {
                j -= 1;
                continue;
            }
            return p.text.clone();
        }
        if p.is_punct(".") || p.is_punct("::") || p.is_punct(")") {
            j -= 1;
            continue;
        }
        break;
    }
    "<expr>".to_string()
}

/// Classifies the guard born at `.lock()` token `i`: named (`let g = …;`,
/// `if let Ok(g) = …`) vs a temporary that dies at the statement's `;`.
fn guard_binding(file: &SourceFile, i: usize, stmt_start: usize) -> (Option<String>, bool) {
    let toks = &file.toks;
    // Step past `lock(…)` and any chained unwrap adapters.
    let mut k = match file.match_delim(i + 1) {
        Some(c) => c + 1,
        None => return (None, true),
    };
    while toks.get(k).is_some_and(|t| t.is_punct("."))
        && toks
            .get(k + 1)
            .is_some_and(|t| UNWRAPPERS.contains(&t.text.as_str()))
        && toks.get(k + 2).is_some_and(|t| t.is_punct("("))
    {
        k = match file.match_delim(k + 2) {
            Some(c) => c + 1,
            None => return (None, true),
        };
    }
    let ends_expr = toks
        .get(k)
        .is_none_or(|t| t.is_punct(";") || t.is_punct("{") || t.is_punct(","));
    let has_let = toks[stmt_start..i].iter().any(|t| t.is_ident("let"));
    if ends_expr && has_let {
        // Binding = identifier just before the `=`.
        let eq = toks[stmt_start..i].iter().position(|t| t.is_punct("="));
        let binding = eq.and_then(|e| {
            toks[stmt_start..stmt_start + e]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                .map(|t| t.text.clone())
        });
        (binding, false)
    } else {
        (None, true)
    }
}

/// Fixpoint of `locks(f) = direct(f) ∪ ⋃ per-site ⋂ locks(candidates)`.
/// The per-site intersection keeps ambiguous name resolution from
/// attributing one candidate's locks to every same-name method.
fn transitive_locks(ws: &Workspace, facts: &[FnFacts]) -> Vec<BTreeSet<String>> {
    let mut locks: Vec<BTreeSet<String>> = facts.iter().map(|f| f.locks.clone()).collect();
    loop {
        let mut changed = false;
        for fi in 0..ws.fns.len() {
            for rc in &ws.calls[fi] {
                let Some((&first, rest)) = rc.callees.split_first() else {
                    continue;
                };
                let mut site: BTreeSet<String> = locks[first].clone();
                for &c in rest {
                    site.retain(|l| locks[c].contains(l));
                }
                let add: Vec<String> = site
                    .into_iter()
                    .filter(|l| !locks[fi].contains(l))
                    .collect();
                if !add.is_empty() {
                    locks[fi].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return locks;
        }
    }
}

/// Fixpoint blocking reach: `(op, via-path)` when the fn or any callee may
/// block.
fn transitive_blocking(ws: &Workspace, facts: &[FnFacts]) -> Vec<Option<(String, String)>> {
    let mut blocking: Vec<Option<(String, String)>> = facts
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            f.blocking
                .as_ref()
                .map(|(_, op)| (op.clone(), ws.fn_name(fi)))
        })
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..ws.fns.len() {
            if blocking[fi].is_some() {
                continue;
            }
            for rc in &ws.calls[fi] {
                // A site blocks only if every resolution candidate does.
                if !rc.callees.is_empty() && rc.callees.iter().all(|&c| blocking[c].is_some()) {
                    let (op, via) = blocking[rc.callees[0]].clone().expect("all block");
                    blocking[fi] = Some((op, format!("{} → {}", ws.fn_name(fi), via)));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return blocking;
        }
    }
}

/// Emits one violation per edge that sits on a cycle in the order graph.
fn report_cycles(edges: &[Edge], rule: &'static str, out: &mut Vec<Violation>) {
    // Adjacency over lock ids.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    // `to` can reach `from` ⇒ the edge closes a cycle.
    let reaches = |from: &str, target: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut reported = BTreeSet::new();
    for e in edges {
        if reaches(&e.to, &e.from) && reported.insert((e.path.clone(), e.line, e.from.clone())) {
            out.push(Violation {
                path: e.path.clone(),
                line: e.line,
                rule,
                message: format!(
                    "lock-order cycle: acquiring `{}` while holding `{}` ({}) closes a \
                     cycle in the workspace lock graph — pick one global order",
                    e.to, e.from, e.note
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, SourceFile};

    fn run(files: &[(&str, &str, &str)]) -> Vec<Violation> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, c, s)| SourceFile::parse(p, c, FileKind::LibSrc, s))
                .collect(),
        );
        let mut out = Vec::new();
        LockOrder.check(&ws, &mut out);
        out
    }

    #[test]
    fn two_fn_ab_ba_cycle_detected() {
        let vs = run(&[(
            "x.rs",
            "obs",
            "fn f(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n\
             fn g(s: &S) { let b = s.b.lock().unwrap(); let a = s.a.lock().unwrap(); }\n",
        )]);
        assert!(vs.iter().any(|v| v.message.contains("cycle")), "{vs:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let vs = run(&[(
            "x.rs",
            "obs",
            "fn f(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n\
             fn g(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn blocking_recv_under_temporary_guard() {
        let vs = run(&[(
            "x.rs",
            "obs",
            "fn f(rx: &M) { let conn = rx.lock().unwrap().recv(); }\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("recv"));
    }

    #[test]
    fn drop_releases_named_guard() {
        let vs = run(&[(
            "x.rs",
            "obs",
            "fn f(s: &S) { let g = s.state.lock().unwrap(); drop(g); helper(); }\n\
             fn helper() { std::thread::sleep(d); }\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn closure_param_under_lock_flagged() {
        let vs = run(&[(
            "x.rs",
            "analysis",
            "fn get_or_build(s: &S, build: impl FnOnce() -> u32) -> u32 {\n\
                 let mut st = s.state.lock().unwrap();\n\
                 let v = build();\n\
                 v\n\
             }\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("caller-supplied"));
    }

    #[test]
    fn build_outside_lock_is_clean() {
        let vs = run(&[(
            "x.rs",
            "analysis",
            "fn get_or_build(s: &S, build: impl FnOnce() -> u32) -> u32 {\n\
                 { let st = s.state.lock().unwrap(); if st.has() { return st.v(); } }\n\
                 let v = build();\n\
                 let mut st = s.state.lock().unwrap();\n\
                 v\n\
             }\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn condvar_wait_with_own_guard_clean_second_guard_flagged() {
        let ok = run(&[(
            "x.rs",
            "analysis",
            "fn f(b: &B) { let mut st = b.state.lock().unwrap(); st = b.cv.wait(st).unwrap(); }\n",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(&[(
            "x.rs",
            "analysis",
            "fn f(s: &S, b: &B) { let g = s.other.lock().unwrap(); let mut st = b.state.lock().unwrap(); st = b.cv.wait(st).unwrap(); }\n",
        )]);
        assert!(bad.iter().any(|v| v.message.contains("wait")), "{bad:?}");
    }

    #[test]
    fn transitive_blocking_through_callee() {
        let vs = run(&[(
            "x.rs",
            "serve",
            "fn handler(s: &S) { let g = s.state.lock().unwrap(); slow(); }\n\
             fn slow() { stream.read_to_string(&mut buf); }\n",
        )]);
        assert!(vs.iter().any(|v| v.message.contains("may block")), "{vs:?}");
    }

    #[test]
    fn ambiguous_method_resolution_does_not_invent_deadlock() {
        // `c.reset()` under the lock matches both `Counter::reset` (leaf,
        // lock-free) and `Registry::reset` (re-locks); only facts true of
        // every candidate may fire, so this must stay clean.
        let vs = run(&[(
            "x.rs",
            "obs",
            "impl Counter { fn reset(&self) { self.v = 0; } }\n\
             impl Registry {\n\
                 fn reset(&self) { for c in self.counters.lock().unwrap().values() { c.reset(); } }\n\
             }\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn transitive_self_deadlock_through_callee() {
        let vs = run(&[(
            "x.rs",
            "obs",
            "fn outer(s: &S) { let g = s.state.lock().unwrap(); inner(s); }\n\
             fn inner(s: &S) { let g = s.state.lock().unwrap(); }\n",
        )]);
        assert!(
            vs.iter().any(|v| v.message.contains("re-acquires")),
            "{vs:?}"
        );
    }
}
