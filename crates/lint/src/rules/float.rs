//! `float-safety` — numerical hygiene in the analytical crates.
//!
//! Two hazards, scoped to `crates/analysis` and `crates/core` (the code
//! that evaluates Eq. 1–4):
//!
//! 1. **Float (in)equality** — `x == 0.3` is almost never the predicate the
//!    math means, and `== f64::NAN` is always false. Flagged whenever a
//!    float literal (or `NAN`) sits on either side of `==`/`!=`. Exact
//!    IEEE comparisons are sometimes deliberate (skipping a zero-probability
//!    branch, lattice `floor == ceil` checks); those take a pragma stating
//!    exactly that.
//! 2. **Domain-unguarded `sqrt`/`acos`/`asin`** — the lens-area formulas of
//!    Eq. 1 feed differences like `d² − r²` into `sqrt` and cosine ratios
//!    into `acos`; rounding can push them just outside the domain and the
//!    result silently becomes NaN, which then propagates through a whole
//!    sweep. `.acos()`/`.asin()` must have a `clamp`/`min`/`max` guard in
//!    the same statement; `.sqrt()` of a parenthesized expression containing
//!    a subtraction must carry a `max`/`clamp`/`abs` guard.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{SourceFile, Violation};

pub struct FloatSafety;

impl Rule for FloatSafety {
    fn id(&self) -> &'static str {
        "float-safety"
    }

    fn describe(&self) -> &'static str {
        "no ==/!= against float literals and no domain-unguarded \
         sqrt/acos/asin in analysis/core"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.crate_name != "analysis" && file.crate_name != "core" {
            return;
        }
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if file.is_test_line(t.line) {
                continue;
            }
            if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
                // A float literal immediately adjacent, or a `NAN` ident
                // within a short path (`f64::NAN`) on either side.
                let lit_adjacent = [i.checked_sub(1), Some(i + 1)]
                    .into_iter()
                    .flatten()
                    .filter_map(|j| toks.get(j))
                    .any(|n| n.kind == TokKind::Float);
                let nan_near = (i.saturating_sub(3)..=i + 3)
                    .filter(|&j| j != i)
                    .filter_map(|j| toks.get(j))
                    .any(|n| n.is_ident("NAN"));
                if lit_adjacent || nan_near {
                    out.push(violation(
                        file,
                        t.line,
                        self.id(),
                        format!(
                            "float `{}` comparison is exact IEEE equality; compare \
                             against a tolerance or justify the exact-zero test",
                            t.text
                        ),
                    ));
                }
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let is_method = i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if !is_method {
                continue;
            }
            match t.text.as_str() {
                "acos" | "asin" if !statement_has_guard(file, i, &["clamp", "min", "max"]) => {
                    out.push(violation(
                        file,
                        t.line,
                        self.id(),
                        format!(
                            "`.{}()` without a clamp in the statement: rounding can \
                             leave [-1, 1] and produce NaN (Eq. 1 lens geometry)",
                            t.text
                        ),
                    ));
                }
                "sqrt"
                    if receiver_subtracts(file, i)
                        && !statement_has_guard(file, i, &["max", "clamp", "abs"]) =>
                {
                    out.push(violation(
                        file,
                        t.line,
                        self.id(),
                        "`.sqrt()` of a difference without max(0.0)/clamp: rounding \
                         can make the radicand negative and produce NaN"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// True if any of `guards` appears as an identifier in the statement
/// containing token `i` (scanning back/forward to `;`/`{`/`}` at the
/// statement's own nesting level is overkill for a heuristic; a flat scan
/// to the nearest statement punctuation is what the pragma escape backs up).
fn statement_has_guard(file: &SourceFile, i: usize, guards: &[&str]) -> bool {
    let toks = &file.toks;
    let stmt_edge = |t: &crate::lexer::Tok| t.is_punct(";") || t.is_punct("{") || t.is_punct("}");
    let mut lo = i;
    while lo > 0 && !stmt_edge(&toks[lo - 1]) {
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < toks.len() && !stmt_edge(&toks[hi + 1]) {
        hi += 1;
    }
    toks[lo..=hi]
        .iter()
        .any(|t| t.kind == TokKind::Ident && guards.contains(&t.text.as_str()))
}

/// True if the receiver of the method at token `i` (the expression before
/// the `.`) is a parenthesized group containing a top-level-ish `-`.
fn receiver_subtracts(file: &SourceFile, i: usize) -> bool {
    let toks = &file.toks;
    // `i` is the method ident, `i - 1` the dot; receiver ends at `i - 2`.
    let Some(end) = i.checked_sub(2) else {
        return false;
    };
    if !toks[end].is_punct(")") {
        return false;
    }
    // Find the matching `(` backwards.
    let mut depth = 0usize;
    let mut start = end;
    loop {
        let t = &toks[start];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if start == 0 {
            return false;
        }
        start -= 1;
    }
    toks[start + 1..end].iter().any(|t| t.is_punct("-"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(src: &str) -> Vec<Violation> {
        lint_source(
            "crates/analysis/src/x.rs",
            "analysis",
            FileKind::LibSrc,
            src,
        )
        .into_iter()
        .filter(|v| v.rule == "float-safety")
        .collect()
    }

    #[test]
    fn float_literal_equality_flagged() {
        let vs = lint("fn f(x: f64) -> bool { x == 0.3 }\n");
        assert_eq!(vs.len(), 1);
        let vs = lint("fn f(x: f64) -> bool { 1.0 != x }\n");
        assert_eq!(vs.len(), 1);
        let vs = lint("fn f(x: f64) -> bool { x == f64::NAN }\n");
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn integer_equality_clean() {
        assert!(lint("fn f(x: u32) -> bool { x == 3 && x != 0 }\n").is_empty());
    }

    #[test]
    fn tolerance_comparison_clean() {
        assert!(lint("fn f(x: f64) -> bool { (x - 0.3).abs() < 1e-9 }\n").is_empty());
    }

    #[test]
    fn unguarded_acos_flagged_guarded_clean() {
        assert_eq!(lint("fn f(x: f64) -> f64 { (x / 2.0).acos() }\n").len(), 1);
        assert!(lint("fn f(x: f64) -> f64 { (x / 2.0).clamp(-1.0, 1.0).acos() }\n").is_empty());
    }

    #[test]
    fn sqrt_of_difference_needs_guard() {
        assert_eq!(
            lint("fn f(d2: f64, r2: f64) -> f64 { (d2 - r2).sqrt() }\n").len(),
            1
        );
        assert!(lint("fn f(d2: f64, r2: f64) -> f64 { (d2 - r2).max(0.0).sqrt() }\n").is_empty());
        // Plain sqrt of a product is fine.
        assert!(lint("fn f(x: f64) -> f64 { (x * x).sqrt() + x.sqrt() }\n").is_empty());
    }

    #[test]
    fn out_of_scope_crates_ignored() {
        let vs = lint_source(
            "crates/sim/src/x.rs",
            "sim",
            FileKind::LibSrc,
            "fn f(x: f64) -> bool { x == 0.3 }\n",
        );
        assert!(vs.iter().all(|v| v.rule != "float-safety"));
    }
}
