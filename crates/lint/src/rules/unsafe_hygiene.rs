//! `unsafe-hygiene` — the workspace is 100% safe Rust, and stays that way.
//!
//! Every claim this repo makes about bitwise reproducibility and data-race
//! freedom rests on the compiler's safety guarantees plus the runtime
//! checkers (loom, TSan, Miri). A single `unsafe` block voids that chain
//! of custody, so the rule enforces two things:
//!
//! * no `unsafe` token anywhere in first-party code (tests included —
//!   a test that needs `unsafe` is testing something the workspace
//!   doesn't ship);
//! * every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`)
//!   carries `#![forbid(unsafe_code)]`, so the guarantee is enforced by
//!   rustc itself and cannot be reintroduced silently — the lint is the
//!   meta-check that the forbid attribute is present, rustc is the
//!   enforcement.

use super::{violation, Rule};
use crate::{SourceFile, Violation};

pub struct UnsafeHygiene;

impl Rule for UnsafeHygiene {
    fn id(&self) -> &'static str {
        "unsafe-hygiene"
    }

    fn describe(&self) -> &'static str {
        "no `unsafe` anywhere; every crate root must carry #![forbid(unsafe_code)]"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for t in &file.toks {
            if t.is_ident("unsafe") {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    "`unsafe` is forbidden workspace-wide: the reproducibility and \
                     race-freedom arguments assume safe Rust end to end"
                        .to_string(),
                ));
            }
        }
        if is_crate_root(&file.path) && !has_forbid_unsafe(file) {
            out.push(violation(
                file,
                1,
                self.id(),
                "crate root is missing `#![forbid(unsafe_code)]` — add it so rustc \
                 enforces the safe-Rust guarantee"
                    .to_string(),
            ));
        }
    }
}

/// `src/lib.rs`, `src/main.rs`, and `src/bin/*.rs` are crate roots.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || path.contains("/src/bin/")
}

/// Looks for `forbid ( … unsafe_code … )` in the token stream.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("forbid") || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        if let Some(close) = file.match_delim(i + 1) {
            if toks[i + 2..close].iter().any(|a| a.is_ident("unsafe_code")) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        lint_source(path, "sim", FileKind::LibSrc, src)
            .into_iter()
            .filter(|v| v.rule == "unsafe-hygiene")
            .collect()
    }

    #[test]
    fn unsafe_block_flagged() {
        let vs = lint(
            "crates/sim/src/x.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn crate_root_without_forbid_flagged() {
        let vs = lint("crates/sim/src/lib.rs", "pub mod bits;\n");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("forbid"));
    }

    #[test]
    fn crate_root_with_forbid_clean() {
        let vs = lint(
            "crates/sim/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod bits;\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn bin_roots_are_crate_roots() {
        let vs = lint("crates/bench/src/bin/bench_sim.rs", "fn main() {}\n");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn non_root_module_needs_no_attribute() {
        let vs = lint("crates/sim/src/bits.rs", "pub fn f() {}\n");
        assert!(vs.is_empty(), "{vs:?}");
    }
}
