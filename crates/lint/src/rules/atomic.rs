//! `atomic-protocol` — every `Ordering::Relaxed` must match a proven
//! pattern.
//!
//! The workspace's atomics fall into two camps. Statistical counters
//! (`fetch_add`/`fetch_sub` accumulate, `load`/`store` publish a tally)
//! are order-free by construction and `Relaxed` is correct. Everything
//! else is a *protocol*: a `fetch_or` claim election, a
//! `compare_exchange` CAS loop, a seqlock's fenced payload accesses. Those
//! are exactly the shapes the loom models under `tests/loom_*.rs` pin
//! down, and a `Relaxed` there is either (a) proven sound by such a model
//! — say so in a pragma — or (b) a latent reordering bug.
//!
//! Concretely the rule flags, outside test code:
//!
//! * any read-modify-write other than `fetch_add`/`fetch_sub` (`fetch_or`,
//!   `swap`, `compare_exchange[_weak]`, `fetch_update`, …) that passes
//!   `Relaxed`;
//! * a `Relaxed` `load`/`store` in a **protocol file** — one that uses
//!   `fence` or `Acquire`/`Release`/`AcqRel` orderings anywhere, meaning
//!   its payload accesses participate in a happens-before protocol and
//!   each deliberate `Relaxed` deserves a written justification.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{SourceFile, Violation};

/// Read-modify-write methods whose `Relaxed` use needs a written proof.
const RMW_METHODS: &[&str] = &[
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_nand",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Orderings whose presence marks a file as protocol-bearing.
const PROTOCOL_MARKS: &[&str] = &["Acquire", "Release", "AcqRel", "fence"];

pub struct AtomicProtocol;

impl Rule for AtomicProtocol {
    fn id(&self) -> &'static str {
        "atomic-protocol"
    }

    fn describe(&self) -> &'static str {
        "Relaxed is allowed only for counter accumulate (fetch_add/fetch_sub) and \
         plain tallies; claim/CAS RMWs and load/store in fence-bearing files need \
         Acquire/Release or a pragma citing a loom/Miri proof"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let toks = &file.toks;
        let protocol_file = toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && PROTOCOL_MARKS.contains(&t.text.as_str()));
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || file.is_test_line(t.line) {
                continue;
            }
            let name = t.text.as_str();
            let is_rmw = RMW_METHODS.contains(&name);
            let is_plain = name == "load" || name == "store";
            if !(is_rmw || is_plain && protocol_file) {
                continue;
            }
            // Method-call shape with a `Relaxed` argument.
            if i == 0
                || !toks[i - 1].is_punct(".")
                || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                continue;
            }
            let Some(close) = file.match_delim(i + 1) else {
                continue;
            };
            let relaxed = toks[i + 2..close].iter().any(|a| a.is_ident("Relaxed"));
            if !relaxed {
                continue;
            }
            let msg = if is_rmw {
                format!(
                    "`{name}(…, Relaxed)` is a read-modify-write protocol step; use the \
                     Acquire/Release pairing the loom model checks, or pragma this line \
                     citing the proof that Relaxed is sound here"
                )
            } else {
                format!(
                    "Relaxed `{name}` in a fence-bearing file: this access participates \
                     in a happens-before protocol — state the fence pairing that orders \
                     it in a pragma, or use the protocol ordering"
                )
            };
            out.push(violation(file, t.line, self.id(), msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(src: &str) -> Vec<Violation> {
        lint_source("crates/sim/src/x.rs", "sim", FileKind::LibSrc, src)
            .into_iter()
            .filter(|v| v.rule == "atomic-protocol")
            .collect()
    }

    #[test]
    fn relaxed_fetch_or_flagged() {
        let vs =
            lint("fn f(w: &AtomicU64) -> bool { w.fetch_or(1, Ordering::Relaxed) & 1 == 0 }\n");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("fetch_or"));
    }

    #[test]
    fn relaxed_counter_accumulate_clean() {
        let vs = lint(
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); c.fetch_sub(1, Ordering::Relaxed); }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn relaxed_cas_flagged() {
        let vs = lint(
            "fn f(c: &AtomicU64) { let _ = c.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::Relaxed); }\n",
        );
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn relaxed_load_in_plain_file_clean_but_flagged_with_fence() {
        let plain = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
        assert!(lint(plain).is_empty());
        let fenced = "fn g() { std::sync::atomic::fence(Ordering::Release); }\n\
                      fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
        let vs = lint(fenced);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("fence-bearing"));
    }

    #[test]
    fn acquire_release_rmw_clean() {
        let vs = lint("fn f(w: &AtomicU64) { w.fetch_or(1, Ordering::AcqRel); }\n");
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn tests_exempt() {
        let src =
            "#[cfg(test)]\nmod t {\n fn f(w: &AtomicU64) { w.swap(0, Ordering::Relaxed); }\n}\n";
        assert!(lint(src).is_empty());
    }
}
