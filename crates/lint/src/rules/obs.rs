//! `feature-hygiene` — obs macro call sites stay zero-cost when disabled.
//!
//! The instrumentation macros (`counter!`, `observe!`, `span!`, …) expand
//! to no-ops with **unevaluated** arguments when the `obs` feature is off.
//! Two lexical hazards can break the "identical numerics, zero overhead"
//! guarantee:
//!
//! 1. **Unqualified invocation** — `counter!(…)` resolved through a `use`
//!    import can stop compiling (or resolve to something else) under
//!    `--no-default-features`; `nss_obs::counter!(…)` always resolves to
//!    the matching (enabled or no-op) expansion. Required outside
//!    `crates/obs` itself.
//! 2. **Effectful arguments** — because disabled macros do not evaluate
//!    their arguments, an argument that can panic or mutate
//!    (`counter!(x.unwrap())`) makes enabled and disabled builds behave
//!    differently. Arguments must be effect-free expressions.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{SourceFile, Violation};

const OBS_MACROS: &[&str] = &[
    "counter",
    "observe",
    "span",
    "set_label",
    "status",
    "status_err",
    "status_inline",
];

const EFFECTFUL: &[&str] = &["unwrap", "expect", "panic"];

pub struct FeatureHygiene;

impl Rule for FeatureHygiene {
    fn id(&self) -> &'static str {
        "feature-hygiene"
    }

    fn describe(&self) -> &'static str {
        "obs macros must be nss_obs::-qualified with effect-free arguments \
         so --no-default-features builds stay identical"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.path.starts_with("crates/obs/") {
            return;
        }
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !OBS_MACROS.contains(&t.text.as_str())
                || !toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                continue;
            }
            let qualified = i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("nss_obs");
            if !qualified {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    format!(
                        "obs macro `{}!` must be invoked as `nss_obs::{}!` so the \
                         no-op expansion resolves under --no-default-features",
                        t.text, t.text
                    ),
                ));
                continue;
            }
            // Check argument purity inside the delimiter group.
            if let Some(open) = toks
                .get(i + 2)
                .filter(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                let _ = open;
                if let Some(close) = file.match_delim(i + 2) {
                    for a in &toks[i + 3..close] {
                        if a.kind == TokKind::Ident && EFFECTFUL.contains(&a.text.as_str()) {
                            out.push(violation(
                                file,
                                a.line,
                                self.id(),
                                format!(
                                    "`{}` inside an obs macro argument: disabled builds \
                                     skip argument evaluation, so effects diverge \
                                     between feature configs",
                                    a.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(src: &str) -> Vec<Violation> {
        lint_source("crates/sim/src/x.rs", "sim", FileKind::LibSrc, src)
            .into_iter()
            .filter(|v| v.rule == "feature-hygiene")
            .collect()
    }

    #[test]
    fn unqualified_macro_flagged() {
        let vs = lint("fn f() { counter!(\"sim.broadcasts\").inc(); }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("nss_obs::"));
    }

    #[test]
    fn qualified_macro_clean() {
        assert!(lint("fn f() { nss_obs::counter!(\"sim.broadcasts\").inc(); }\n").is_empty());
    }

    #[test]
    fn effectful_argument_flagged() {
        let vs = lint("fn f(x: Option<u64>) { nss_obs::counter!(\"c\").add(x.unwrap()); }\n");
        // The add() call is outside the macro group, so this one is clean…
        assert!(vs.is_empty(), "{vs:?}");
        // …but effects inside the macro's own arguments are not.
        let vs = lint("fn f(x: Option<f64>) { nss_obs::observe!(\"h\", x.unwrap()); }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("diverge"));
    }

    #[test]
    fn obs_crate_itself_exempt() {
        let vs = lint_source(
            "crates/obs/src/lib.rs",
            "obs",
            FileKind::LibSrc,
            "fn demo() { counter!(\"x\"); }\n",
        );
        assert!(vs.iter().all(|v| v.rule != "feature-hygiene"));
    }

    #[test]
    fn module_named_counter_not_confused() {
        assert!(lint("fn f() { counter::run(); let counter = 3; use_it(counter); }\n").is_empty());
    }
}
