//! `feature-hygiene` — obs macro call sites stay zero-cost when disabled.
//!
//! The instrumentation macros (`counter!`, `observe!`, `span!`, …) expand
//! to no-ops with **unevaluated** arguments when the `obs` feature is off.
//! Two lexical hazards can break the "identical numerics, zero overhead"
//! guarantee:
//!
//! 1. **Unqualified invocation** — `counter!(…)` resolved through a `use`
//!    import can stop compiling (or resolve to something else) under
//!    `--no-default-features`; `nss_obs::counter!(…)` always resolves to
//!    the matching (enabled or no-op) expansion. Required outside
//!    `crates/obs` itself.
//! 2. **Effectful arguments** — because disabled macros do not evaluate
//!    their arguments, an argument that can panic or mutate
//!    (`counter!(x.unwrap())`) makes enabled and disabled builds behave
//!    differently. Arguments must be effect-free expressions.
//!
//! A third hazard is specific to the engine crates (`crates/sim`,
//! `crates/model`): `span!` events sink into a mutex-guarded `Vec` with
//! `O(n)` front eviction, so a `span!` inside a `for`/`while`/`loop` body
//! takes that lock every iteration. Hot-loop spans must use
//! `trace_span!`, which records into the bounded lock-free flight
//! recorder instead.

use super::{violation, Rule};
use crate::lexer::TokKind;
use crate::{SourceFile, Violation};

const OBS_MACROS: &[&str] = &[
    "counter",
    "gauge",
    "observe",
    "span",
    "trace_span",
    "set_label",
    "status",
    "status_err",
    "status_inline",
];

/// Crates whose loops are hot paths: the million-node phase engine and
/// the CSR topology builder.
const HOT_CRATES: &[&str] = &["crates/sim/", "crates/model/"];

const EFFECTFUL: &[&str] = &["unwrap", "expect", "panic"];

pub struct FeatureHygiene;

impl Rule for FeatureHygiene {
    fn id(&self) -> &'static str {
        "feature-hygiene"
    }

    fn describe(&self) -> &'static str {
        "obs macros must be nss_obs::-qualified with effect-free arguments \
         so --no-default-features builds stay identical"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.path.starts_with("crates/obs/") {
            return;
        }
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !OBS_MACROS.contains(&t.text.as_str())
                || !toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                continue;
            }
            let qualified = i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("nss_obs");
            if !qualified {
                out.push(violation(
                    file,
                    t.line,
                    self.id(),
                    format!(
                        "obs macro `{}!` must be invoked as `nss_obs::{}!` so the \
                         no-op expansion resolves under --no-default-features",
                        t.text, t.text
                    ),
                ));
                continue;
            }
            // Check argument purity inside the delimiter group.
            if let Some(open) = toks
                .get(i + 2)
                .filter(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                let _ = open;
                if let Some(close) = file.match_delim(i + 2) {
                    for a in &toks[i + 3..close] {
                        if a.kind == TokKind::Ident && EFFECTFUL.contains(&a.text.as_str()) {
                            out.push(violation(
                                file,
                                a.line,
                                self.id(),
                                format!(
                                    "`{}` inside an obs macro argument: disabled builds \
                                     skip argument evaluation, so effects diverge \
                                     between feature configs",
                                    a.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
        if HOT_CRATES.iter().any(|c| file.path.starts_with(c)) {
            check_hot_loops(file, out);
        }
    }
}

/// Flags `span!` invocations lexically inside a `for`/`while`/`loop` body
/// in the engine crates: the span sink takes a mutex per event, so loop
/// bodies must use the bounded flight recorder (`trace_span!`) instead.
///
/// Body detection is lexical but sound for Rust: struct literals are not
/// allowed in `for`-iterator / `while`-condition position without
/// parentheses, so after skipping nested delimiter groups the first brace
/// at depth 0 opens the loop body.
fn check_hot_loops(file: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &file.toks;
    let mut flagged = std::collections::BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        // Find the body brace: the first `{` outside any nested group.
        let mut j = i + 1;
        let body_open = loop {
            match toks.get(j) {
                None => break None,
                Some(n) if n.is_punct("{") => break Some(j),
                Some(n) if n.is_punct("(") || n.is_punct("[") => match file.match_delim(j) {
                    Some(close) => j = close + 1,
                    None => break None,
                },
                // A statement boundary before any brace: `for` was not a
                // loop head here (e.g. inside a macro fragment).
                Some(n) if n.is_punct(";") => break None,
                Some(_) => j += 1,
            }
        };
        let Some(open) = body_open else { continue };
        let Some(close) = file.match_delim(open) else {
            continue;
        };
        for k in open + 1..close {
            if toks[k].is_ident("span")
                && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
                && flagged.insert(k)
            {
                out.push(violation(
                    file,
                    toks[k].line,
                    "feature-hygiene",
                    "`span!` inside a loop body takes the span-sink mutex every \
                     iteration; hot-loop spans must use `nss_obs::trace_span!` \
                     (bounded lock-free flight recorder)"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, FileKind};

    fn lint(src: &str) -> Vec<Violation> {
        lint_source("crates/sim/src/x.rs", "sim", FileKind::LibSrc, src)
            .into_iter()
            .filter(|v| v.rule == "feature-hygiene")
            .collect()
    }

    #[test]
    fn unqualified_macro_flagged() {
        let vs = lint("fn f() { counter!(\"sim.broadcasts\").inc(); }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("nss_obs::"));
    }

    #[test]
    fn qualified_macro_clean() {
        assert!(lint("fn f() { nss_obs::counter!(\"sim.broadcasts\").inc(); }\n").is_empty());
    }

    #[test]
    fn effectful_argument_flagged() {
        let vs = lint("fn f(x: Option<u64>) { nss_obs::counter!(\"c\").add(x.unwrap()); }\n");
        // The add() call is outside the macro group, so this one is clean…
        assert!(vs.is_empty(), "{vs:?}");
        // …but effects inside the macro's own arguments are not.
        let vs = lint("fn f(x: Option<f64>) { nss_obs::observe!(\"h\", x.unwrap()); }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("diverge"));
    }

    #[test]
    fn obs_crate_itself_exempt() {
        let vs = lint_source(
            "crates/obs/src/lib.rs",
            "obs",
            FileKind::LibSrc,
            "fn demo() { counter!(\"x\"); }\n",
        );
        assert!(vs.iter().all(|v| v.rule != "feature-hygiene"));
    }

    #[test]
    fn module_named_counter_not_confused() {
        assert!(lint("fn f() { counter::run(); let counter = 3; use_it(counter); }\n").is_empty());
    }

    #[test]
    fn gauge_and_trace_span_require_qualification() {
        let vs = lint("fn f() { gauge!(\"sim.mem\").set(1.0); }\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("nss_obs::gauge!"));
        let vs = lint("fn f() { let _t = trace_span!(\"sim.phase\"); }\n");
        assert_eq!(vs.len(), 1);
        assert!(lint("fn f() { nss_obs::gauge!(\"sim.mem\").set(1.0); }\n").is_empty());
    }

    #[test]
    fn span_in_hot_loop_flagged() {
        for head in ["for i in 0..n", "while go()", "loop"] {
            let src = format!("fn f(n: u64) {{ {head} {{ let _s = nss_obs::span!(\"x\"); }} }}\n");
            let vs = lint(&src);
            assert_eq!(vs.len(), 1, "{head}: {vs:?}");
            assert!(vs[0].message.contains("trace_span"), "{head}");
        }
    }

    #[test]
    fn trace_span_or_loopless_span_clean() {
        assert!(
            lint("fn f(n: u64) { for i in 0..n { let _t = nss_obs::trace_span!(\"x\"); } }\n")
                .is_empty()
        );
        assert!(
            lint("fn f(n: u64) { let _s = nss_obs::span!(\"x\"); for i in 0..n { go(); } }\n")
                .is_empty()
        );
    }

    #[test]
    fn nested_loops_flag_each_span_once() {
        let vs = lint(
            "fn f(n: u64) { for i in 0..n { for j in 0..i { let _s = nss_obs::span!(\"x\"); } } }\n",
        );
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn loop_iterator_groups_are_skipped_to_find_the_body() {
        // The `(0..n).rev()` parens and `v[..]` brackets are not the body.
        let vs = lint(
            "fn f(n: u64, v: &[u64]) { for i in (0..n).rev() { \
             let _s = nss_obs::span!(\"x\"); use_it(&v[..]); } }\n",
        );
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn hot_loop_rule_is_engine_crate_scoped() {
        // The figure harness takes one span per figure inside its registry
        // loop; that is not a hot path and stays clean.
        let vs = lint_source(
            "crates/experiments/src/x.rs",
            "experiments",
            FileKind::LibSrc,
            "fn f() { for fig in REGISTRY { let _s = nss_obs::span!(\"fig\"); } }\n",
        );
        assert!(vs.iter().all(|v| v.rule != "feature-hygiene"), "{vs:?}");
    }
}
