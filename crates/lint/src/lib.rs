//! `nss-lint` — workspace static analysis for determinism, RNG-stream
//! discipline, and numerical safety.
//!
//! The repo's promise is that analytical predictions are validated against
//! **bitwise-reproducible** simulation. That promise rests on invariants a
//! compiler cannot see: every random draw flows through a labeled
//! [`Stream`](https://docs.rs/nss-model) seed, nothing iterates a hash
//! collection on a path that feeds output or float accumulation, library
//! code fails through `ConfigError` rather than panicking, lens-geometry
//! math stays inside its domain, and the obs macros stay zero-cost when the
//! feature is off. This crate checks those invariants mechanically as a CI
//! gate:
//!
//! ```text
//! cargo run -p nss-lint -- check [--json report.json]
//! ```
//!
//! The pass is deliberately **lexical** (see [`lexer`]): a comment- and
//! string-aware token scanner plus call-shape pattern rules. That keeps the
//! crate dependency-free (no `syn` under the no-network vendoring
//! constraint) at the cost of heuristic precision — which is why every rule
//! has an inline escape hatch, the
//! [`// nss-lint: allow(<rule>) — <reason>`](pragma) pragma, whose reason
//! text is mandatory and machine-checked.
//!
//! Rule catalogue (ids are what pragmas name):
//!
//! | id | invariant |
//! |---|---|
//! | `rng-discipline` | no `thread_rng`/`from_entropy`/`OsRng`; no literal-seeded `SmallRng` and no raw string stream labels outside `nss-model::rng` — every RNG originates from a labeled `Stream` |
//! | `determinism` | no iteration over `HashMap`/`HashSet` (order-dependent) outside tests; use `BTreeMap` or an explicit sort |
//! | `panic-hygiene` | no `unwrap`/`expect`/`panic!`-family in library crates outside `#[cfg(test)]`; route through `ConfigError` |
//! | `float-safety` | no `==`/`!=` against float literals and no unguarded `.sqrt()`/`.acos()`/`.asin()` in `analysis`/`core` |
//! | `feature-hygiene` | obs macros must be `nss_obs::`-qualified and carry effect-free arguments, so `--no-default-features` builds stay identical |
//! | `atomic-protocol` | `Relaxed` only for counter accumulate; claim/CAS RMWs and load/store in fence-bearing files need the proven ordering or a pragma citing a loom/Miri proof |
//! | `unsafe-hygiene` | no `unsafe` anywhere; every crate root carries `#![forbid(unsafe_code)]` |
//! | `lock-order` | no cycles in the workspace lock-acquisition graph; no blocking calls or caller-supplied closures under a Mutex guard |
//! | `nondeterminism-taint` | clock/thread-id/pointer/hash-order reads must not reach pinned artifacts (CSV writers, `SimTrace`-returning fns) through the call graph |
//! | `blocking-in-handler` | route handlers hold no lock across kernel computation and perform no unbounded stream reads |
//!
//! The last three are **interprocedural**: they run over a cross-crate
//! call graph ([`callgraph::Workspace`], built from the [`parser`] item
//! model) rather than file by file, so a deadlock seeded in one crate and
//! closed in another is still caught. `nss-lint rules --check` keeps
//! `docs/LINTS.md` in sync with this catalogue; `--sarif` emits the
//! findings as a SARIF 2.1.0 artifact for CI upload.
//!
//! Malformed pragmas (missing reason, unknown rule) and pragmas that no
//! longer suppress anything are reported under the reserved id `pragma`.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod docsync;
pub mod json;
pub mod lexer;
pub mod metrics;
pub mod parser;
pub mod pragma;
pub mod rules;
pub mod sarif;

use lexer::{scan, Tok, TokKind};
use pragma::{parse_pragmas, Pragma};
use std::fmt;
use std::path::{Path, PathBuf};

/// How a file participates in the build, which scopes the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a library crate (strictest: all rules).
    LibSrc,
    /// `src/` of a binary or tool crate (panic-hygiene off).
    BinSrc,
    /// Integration tests / benches (panic-hygiene off, literal seeds ok).
    TestSrc,
}

/// First-party library crates held to panic-hygiene (binaries may panic at
/// the top level; these must route errors through `ConfigError`).
pub const LIB_CRATES: &[&str] = &[
    "model", "analysis", "sim", "core", "plot", "obs", "serve", "nss",
];

/// One rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (see crate docs) or `pragma` for pragma-hygiene findings.
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A scanned source file plus the derived context rules match against.
pub struct SourceFile {
    /// Workspace-relative path (diagnostics).
    pub path: String,
    /// Crate directory name (`model`, `analysis`, …; `nss` for the root).
    pub crate_name: String,
    /// Build role of the file.
    pub kind: FileKind,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// `test_lines[line as usize]` = line is inside a `#[cfg(test)]` /
    /// `#[test]` region (index 0 unused).
    pub test_lines: Vec<bool>,
    /// Parsed pragmas.
    pub pragmas: Vec<Pragma>,
}

impl SourceFile {
    /// Scans `src` into a rule-ready file model.
    pub fn parse(path: &str, crate_name: &str, kind: FileKind, src: &str) -> SourceFile {
        let scanned = scan(src);
        let last_line = src.lines().count() as u32 + 1;
        let mut test_lines = vec![false; last_line as usize + 2];
        if kind == FileKind::TestSrc {
            for t in test_lines.iter_mut() {
                *t = true;
            }
        } else {
            mark_test_regions(&scanned.toks, &mut test_lines);
        }
        let pragmas = parse_pragmas(&scanned.comments, &rules::ids());
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            toks: scanned.toks,
            test_lines,
            pragmas,
        }
    }

    /// True if `line` lies inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// Index of the token matching the opening delimiter at `open`
    /// (`(`/`[`/`{`), or `None` if unbalanced.
    pub fn match_delim(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.toks[open].text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let mut depth = 0usize;
        for (j, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }
}

/// Marks lines covered by `#[cfg(test)]` (any `cfg` attribute mentioning
/// `test`) and `#[test]` item bodies.
fn mark_test_regions(toks: &[Tok], test_lines: &mut [bool]) {
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        if toks[i].is_punct("#") && i + 1 < n && toks[i + 1].is_punct("[") {
            // Find the attribute's closing bracket.
            let mut depth = 0usize;
            let mut close = None;
            for (j, t) in toks.iter().enumerate().skip(i + 1) {
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
            }
            let Some(close) = close else { break };
            let attr: Vec<&str> = toks[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr =
                attr == ["test"] || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
            if is_test_attr {
                // The attributed item's body is the next `{…}` before any
                // bare `;` (a `#[cfg(test)] use …;` has no body).
                let mut j = close + 1;
                let mut open = None;
                while j < n {
                    let t = &toks[j];
                    if t.is_punct("{") {
                        open = Some(j);
                        break;
                    }
                    if t.is_punct(";") {
                        break;
                    }
                    // Skip stacked attributes on the same item.
                    if t.is_punct("#") && j + 1 < n && toks[j + 1].is_punct("[") {
                        let mut d = 0usize;
                        while j < n {
                            if toks[j].is_punct("[") {
                                d += 1;
                            } else if toks[j].is_punct("]") {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let mut depth = 0usize;
                    let mut end = open;
                    for (k, t) in toks.iter().enumerate().skip(open) {
                        if t.is_punct("{") {
                            depth += 1;
                        } else if t.is_punct("}") {
                            depth -= 1;
                            if depth == 0 {
                                end = k;
                                break;
                            }
                        }
                    }
                    let (lo, hi) = (toks[open].line as usize, toks[end].line as usize);
                    for line in test_lines.iter_mut().take(hi + 1).skip(lo) {
                        *line = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// Lints a single in-memory source (the fixture-test entry point). Runs
/// the per-file rules *and* the workspace rules over the one-file
/// workspace.
pub fn lint_source(path: &str, crate_name: &str, kind: FileKind, src: &str) -> Vec<Violation> {
    lint_sources(vec![SourceFile::parse(path, crate_name, kind, src)])
}

/// Lints a set of parsed files as one workspace: per-file rules on each
/// file, workspace (interprocedural) rules over the shared call graph,
/// then pragma application per file. The multi-file fixture entry point
/// and the core of [`lint_workspace`].
pub fn lint_sources(files: Vec<SourceFile>) -> Vec<Violation> {
    let ws = callgraph::Workspace::build(files);
    let mut raw: Vec<Violation> = Vec::new();
    for file in &ws.files {
        for rule in rules::all() {
            rule.check(file, &mut raw);
        }
    }
    for rule in rules::workspace_rules() {
        rule.check(&ws, &mut raw);
    }
    let mut out = Vec::new();
    for file in &ws.files {
        let for_file: Vec<Violation> = raw
            .iter()
            .filter(|v| v.path == file.path)
            .cloned()
            .collect();
        out.extend(finalize(file, for_file));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Runs the per-file rules over a parsed file, applies pragmas, and
/// appends pragma-hygiene findings. (Workspace rules need
/// [`lint_sources`].)
pub fn lint_file(file: &SourceFile) -> Vec<Violation> {
    let mut raw = Vec::new();
    for rule in rules::all() {
        rule.check(file, &mut raw);
    }
    finalize(file, raw)
}

/// Applies pragma suppression to `raw`, appends pragma-hygiene findings,
/// and sorts — the per-file tail of every lint pass.
fn finalize(file: &SourceFile, raw: Vec<Violation>) -> Vec<Violation> {
    let mut out = Vec::new();
    // A pragma on line L covers violations on L and L+1.
    let covers = |p: &Pragma, v: &Violation| {
        (v.line == p.line || v.line == p.line + 1) && p.rules.iter().any(|r| r == v.rule)
    };
    for v in &raw {
        let suppressed = file
            .pragmas
            .iter()
            .any(|p| p.error.is_none() && covers(p, v));
        if !suppressed {
            out.push(v.clone());
        }
    }
    for p in &file.pragmas {
        if let Some(err) = &p.error {
            out.push(Violation {
                path: file.path.clone(),
                line: p.line,
                rule: "pragma",
                message: err.clone(),
            });
        } else {
            // An allow that suppresses nothing is stale and must go: dead
            // pragmas erode trust in the live ones.
            for r in &p.rules {
                let used = raw
                    .iter()
                    .any(|v| v.rule == r.as_str() && (v.line == p.line || v.line == p.line + 1));
                if !used {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: p.line,
                        rule: "pragma",
                        message: format!(
                            "stale pragma: no `{r}` violation on this or the next line — remove it"
                        ),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// A full workspace lint result.
#[derive(Debug)]
pub struct Report {
    /// Files scanned, in deterministic (sorted) order.
    pub files: Vec<String>,
    /// Surviving violations, ordered by (path, line, rule).
    pub violations: Vec<Violation>,
}

/// Walks the workspace at `root` and lints every first-party `.rs` file.
///
/// Scanned: `src/` (root crate), `crates/*/{src,tests,benches}`. Skipped:
/// `vendor/` (third-party API mirrors), `target/`, and any `fixtures`
/// directory (linter test inputs contain deliberate violations).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").exists() || !root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (need Cargo.toml and crates/)",
            root.display()
        ));
    }
    let mut files: Vec<(PathBuf, String, FileKind)> = Vec::new();
    collect_rs(&root.join("src"), &mut files, "nss", FileKind::LibSrc)?;
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .map_err(|e| format!("reading crates/: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name == "lint" {
            // The linter's own sources are tool code; its fixtures are
            // deliberate violations. It still lints itself as BinSrc.
            collect_rs(&dir.join("src"), &mut files, &name, FileKind::BinSrc)?;
            continue;
        }
        let src_kind = if LIB_CRATES.contains(&name.as_str()) {
            FileKind::LibSrc
        } else {
            FileKind::BinSrc
        };
        collect_rs(&dir.join("src"), &mut files, &name, src_kind)?;
        collect_rs(&dir.join("tests"), &mut files, &name, FileKind::TestSrc)?;
        collect_rs(&dir.join("benches"), &mut files, &name, FileKind::TestSrc)?;
    }

    let mut parsed: Vec<SourceFile> = Vec::with_capacity(files.len());
    for (path, crate_name, kind) in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        parsed.push(SourceFile::parse(&rel, &crate_name, kind, &src));
    }
    let file_names: Vec<String> = parsed.iter().map(|f| f.path.clone()).collect();
    Ok(Report {
        files: file_names,
        violations: lint_sources(parsed),
    })
}

/// Recursively collects `.rs` files under `dir` (sorted for deterministic
/// reports), skipping `fixtures` directories.
pub(crate) fn collect_rs(
    dir: &Path,
    out: &mut Vec<(PathBuf, String, FileKind)>,
    crate_name: &str,
    kind: FileKind,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().and_then(|n| n.to_str()) == Some("fixtures") {
                continue;
            }
            collect_rs(&p, out, crate_name, kind)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push((p, crate_name.to_string(), kind));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_marking() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", "model", FileKind::LibSrc, src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_without_body_is_no_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn a() {}\n";
        let f = SourceFile::parse("x.rs", "model", FileKind::LibSrc, src);
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn test_attribute_marks_fn_body() {
        let src = "#[test]\nfn t() {\n    boom();\n}\n";
        let f = SourceFile::parse("x.rs", "model", FileKind::LibSrc, src);
        assert!(f.is_test_line(3));
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "fn f(x: std::collections::HashMap<u32, u32>) {\n    // nss-lint: allow(determinism) — sum of u64 is order-independent\n    let _: u64 = x.values().map(|&v| u64::from(v)).sum();\n}\n";
        let vs = lint_source("x.rs", "model", FileKind::LibSrc, src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn stale_pragma_is_flagged() {
        let src = "// nss-lint: allow(determinism) — nothing here\nfn f() {}\n";
        let vs = lint_source("x.rs", "model", FileKind::LibSrc, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "pragma");
        assert!(vs[0].message.contains("stale"));
    }
}
