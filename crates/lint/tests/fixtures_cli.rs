//! End-to-end tests of the `nss-lint` binary over the fixture trees under
//! `tests/fixtures/` — each rule has a `bad_*.rs` that must be flagged with
//! `file:line` diagnostics and a `good_*.rs` (including pragma-respected
//! cases) that must pass — plus the meta-test: the live workspace itself
//! is clean.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixtures(tree: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(tree)
}

fn run_check(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nss-lint"))
        .arg("check")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn nss-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Every `bad_*.rs` fixture produces at least one `file:line: [rule]`
/// diagnostic for its rule, and the process exits non-zero.
#[test]
fn bad_fixtures_are_flagged() {
    let out = run_check(&fixtures("bad"), &[]);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{}", stdout(&out));
    let text = stdout(&out);
    let expected = [
        ("bad_rng.rs", "rng-discipline"),
        ("bad_panic.rs", "panic-hygiene"),
        ("bad_float.rs", "float-safety"),
        ("bad_determinism.rs", "determinism"),
        ("bad_obs.rs", "feature-hygiene"),
        ("bad_pragma.rs", "pragma"),
        ("bad_lock_order.rs", "lock-order"),
        ("bad_taint_rows.rs", "nondeterminism-taint"),
        ("bad_atomic.rs", "atomic-protocol"),
        ("bad_handler.rs", "blocking-in-handler"),
        ("bad_unsafe.rs", "unsafe-hygiene"),
    ];
    for (file, rule) in expected {
        let hit = text.lines().any(|l| {
            l.contains(file) && l.contains(&format!("[{rule}]")) && {
                // `path:line:` — a numeric line number between the colons.
                let after = l.split(':').nth(1).unwrap_or("");
                after.chars().all(|c| c.is_ascii_digit()) && !after.is_empty()
            }
        });
        assert!(
            hit,
            "expected a `{file}:<line>: [{rule}]` diagnostic in:\n{text}"
        );
    }
}

/// The interprocedural diagnostics carry their evidence: the seeded
/// alpha/beta deadlock is reported as a *cycle* in both participating
/// functions, and the two-crate taint chain names the carrier function
/// from the other crate in the source-site diagnostic.
#[test]
fn interprocedural_diagnostics_carry_evidence() {
    let out = run_check(&fixtures("bad"), &[]);
    let text = stdout(&out);
    let cycle_sites: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("bad_lock_order.rs") && l.contains("cycle"))
        .collect();
    assert!(
        cycle_sites.len() >= 2,
        "expected the alpha→beta and beta→alpha edges both reported as a cycle:\n{text}"
    );
    let taint = text
        .lines()
        .find(|l| l.contains("bad_taint_rows.rs") && l.contains("[nondeterminism-taint]"))
        .unwrap_or_else(|| panic!("no taint diagnostic at the source site:\n{text}"));
    assert!(
        taint.contains("emit_report") && taint.contains("write_report_csv"),
        "taint diagnostic must name the cross-crate carrier and sink: {taint}"
    );
    let closure = text
        .lines()
        .any(|l| l.contains("bad_lock_order.rs") && l.contains("caller-supplied closure"));
    assert!(closure, "closure-under-guard not reported:\n{text}");
    let blocking = text
        .lines()
        .any(|l| l.contains("bad_lock_order.rs") && l.contains("blocking `recv`"));
    assert!(blocking, "blocking-under-guard not reported:\n{text}");
}

/// Both pragma failure modes are reported: a missing reason and a stale
/// (nothing-to-suppress) allow.
#[test]
fn pragma_misuse_is_flagged_both_ways() {
    let out = run_check(&fixtures("bad"), &[]);
    let text = stdout(&out);
    let pragma_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("bad_pragma.rs") && l.contains("[pragma]"))
        .collect();
    assert!(
        pragma_lines.iter().any(|l| l.contains("reason")),
        "missing-reason pragma not reported:\n{text}"
    );
    assert!(
        pragma_lines.iter().any(|l| l.contains("stale")),
        "stale pragma not reported:\n{text}"
    );
}

/// The good tree — clean idioms plus justified pragmas — passes.
#[test]
fn good_fixtures_pass() {
    let out = run_check(&fixtures("good"), &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "good fixtures flagged:\n{}",
        stdout(&out)
    );
}

/// META-TEST: the live workspace is clean. This is the CI gate run against
/// the repository itself; a failure here means a violation (or an
/// unjustified pragma) landed in real code.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = run_check(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "live workspace has lint violations:\n{}",
        stdout(&out)
    );
}

/// META-TEST: the committed `docs/METRICS.md` table matches the scanned
/// metric inventory — the same sync gate CI runs via
/// `nss-lint metrics --check docs/METRICS.md`.
#[test]
fn live_metrics_doc_is_in_sync() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_nss-lint"))
        .args(["metrics", "--root"])
        .arg(&root)
        .arg("--check")
        .arg(root.join("docs/METRICS.md"))
        .output()
        .expect("spawn nss-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "docs/METRICS.md is out of sync; run \
         `cargo run -p nss-lint -- metrics --write docs/METRICS.md`\n{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// META-TEST: the committed `docs/LINTS.md` rule table matches the
/// compiled-in catalogue — the same sync gate CI runs via
/// `nss-lint rules --check docs/LINTS.md`.
#[test]
fn live_lints_doc_is_in_sync() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = Command::new(env!("CARGO_BIN_EXE_nss-lint"))
        .args(["rules", "--check"])
        .arg(root.join("docs/LINTS.md"))
        .output()
        .expect("spawn nss-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "docs/LINTS.md is out of sync; run \
         `cargo run -p nss-lint -- rules --write docs/LINTS.md`\n{}{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `--json` writes the machine-readable report consumed by CI artifacts.
#[test]
fn json_report_is_written() {
    let dir = std::env::temp_dir().join(format!("nss-lint-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("report.json");
    let out = run_check(
        &fixtures("bad"),
        &["--json", json_path.to_str().expect("utf-8 path")],
    );
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"rng-discipline\""), "{json}");
    assert!(json.contains("bad_rng.rs"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--sarif` writes a SARIF 2.1.0 log whose rule catalogue and results
/// reference the fixture violations — the artifact CI uploads for code
/// scanning.
#[test]
fn sarif_report_is_written() {
    let dir = std::env::temp_dir().join(format!("nss-lint-sarif-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sarif_path = dir.join("report.sarif");
    let out = run_check(
        &fixtures("bad"),
        &["--sarif", sarif_path.to_str().expect("utf-8 path")],
    );
    assert_eq!(out.status.code(), Some(1));
    let sarif = std::fs::read_to_string(&sarif_path).expect("sarif written");
    assert!(sarif.contains("\"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"nss-lint\""), "{sarif}");
    for rule in ["lock-order", "nondeterminism-taint", "blocking-in-handler"] {
        assert!(sarif.contains(rule), "missing `{rule}` in SARIF:\n{sarif}");
    }
    assert!(sarif.contains("bad_lock_order.rs"), "{sarif}");
    assert!(sarif.contains("\"startLine\""), "{sarif}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `rules` lists the full catalogue (the 10 rules plus the reserved
/// `pragma` channel).
#[test]
fn rules_subcommand_lists_catalogue() {
    let out = Command::new(env!("CARGO_BIN_EXE_nss-lint"))
        .arg("rules")
        .output()
        .expect("spawn nss-lint");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for rule in [
        "rng-discipline",
        "determinism",
        "panic-hygiene",
        "float-safety",
        "feature-hygiene",
        "pragma",
        "lock-order",
        "atomic-protocol",
        "nondeterminism-taint",
        "blocking-in-handler",
        "unsafe-hygiene",
    ] {
        assert!(text.contains(rule), "missing `{rule}` in:\n{text}");
    }
}
