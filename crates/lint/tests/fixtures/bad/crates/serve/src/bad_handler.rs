//! A route handler that does everything the blocking-in-handler rule
//! forbids: reads the stream to exhaustion, then holds the cache lock
//! across a kernel-scale sweep.

pub fn router(state: std::sync::Arc<Shared>) -> Router {
    Router::new().get("/v1/sweep", move |req| {
        let mut body = String::new();
        req.stream.read_to_string(&mut body);
        let cache = state.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let table = run_sweep(&cache, &body);
        Response::json(&table)
    })
}

fn run_sweep(_cache: &Cache, _body: &str) -> u32 {
    0
}
