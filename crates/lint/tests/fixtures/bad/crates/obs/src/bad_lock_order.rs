//! Deliberate lock-order violations: an alpha→beta / beta→alpha cycle
//! split across two functions, a blocking call under a guard, and a
//! caller-supplied closure invoked while the lock is held.

pub fn ab(s: &State) {
    let a = s.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = s.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    use_both(&a, &b);
}

pub fn ba(s: &State) {
    let b = s.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let a = s.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    use_both(&a, &b);
}

pub fn drain(rx: &std::sync::Mutex<ConnReceiver>) -> Option<Conn> {
    rx.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .recv()
        .ok()
}

pub fn fill(s: &State, build: impl FnOnce() -> u64) -> u64 {
    let mut a = s.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let v = build();
    *a = v;
    v
}

fn use_both(_a: &u64, _b: &u64) {}
