//! Fixture: `determinism` violations — hash-ordered iteration feeding
//! output.

use std::collections::{HashMap, HashSet};

pub fn dump_csv(rows: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in rows.iter() {
        // unspecified order leaks into the CSV
        out.push_str(&format!("{k},{v}\n"));
    }
    out
}

pub fn first_seen(labels: &[&str]) -> Vec<String> {
    let mut seen = HashSet::new();
    for l in labels {
        seen.insert(l.to_string());
    }
    let mut out = Vec::new();
    for l in &seen {
        // unspecified order leaks into the result
        out.push(l.clone());
    }
    out
}
