//! Sink half of the two-crate taint chain: pulls rows from `nss_model`
//! (where the clock read lives) and writes them through a CSV function.
//! The violation is reported at the source site in the other crate.

use nss_model::bad_taint_rows::noisy_rows;

pub fn emit_report() {
    write_report_csv(&noisy_rows());
}

fn write_report_csv(rows: &[String]) {
    for r in rows {
        render(r);
    }
}

fn render(_row: &str) {}
