//! Fixture: `float-safety` violations in an analysis-crate file.

pub fn exact_equality(x: f64) -> bool {
    x == 0.3 // exact IEEE comparison against a float literal
}

pub fn lens_sqrt(d2: f64, r2: f64) -> f64 {
    (d2 - r2).sqrt() // radicand can round negative
}

pub fn lens_angle(c: f64) -> f64 {
    (c / 2.0).acos() // argument can round outside [-1, 1]
}
