//! A claim-style read-modify-write at `Relaxed` with no pragma citing a
//! proof — the atomic-protocol rule must demand the ordering argument.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn claim_slot(word: &AtomicU64, mask: u64) -> bool {
    word.fetch_or(mask, Ordering::Relaxed) & mask == 0
}
