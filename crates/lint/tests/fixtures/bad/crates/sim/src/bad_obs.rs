//! Fixture: `feature-hygiene` violations — unqualified obs macros and
//! effectful macro arguments.

pub fn record_unqualified(n: u64) {
    counter!("sim.events").add(n); // unqualified: breaks --no-default-features
}

pub fn effectful_argument(v: Option<u64>) {
    nss_obs::counter!("sim.events").add(v.unwrap()); // arg vanishes when obs is off
}

pub fn span_in_hot_loop(phases: u64) {
    for _phase in 0..phases {
        let _s = nss_obs::span!("sim.phase"); // mutex per iteration: use trace_span!
    }
}
