//! Fixture: pragma misuse — a reason-less allow and a stale allow.

pub fn missing_reason(s: &str) -> u32 {
    // nss-lint: allow(panic-hygiene)
    s.parse().unwrap()
}

pub fn stale_allow(x: u32) -> u32 {
    // nss-lint: allow(panic-hygiene) — nothing on the next line can panic
    x + 1
}
