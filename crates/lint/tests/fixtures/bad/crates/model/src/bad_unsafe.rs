//! An `unsafe` block — forbidden workspace-wide regardless of soundness.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
