//! Fixture: `panic-hygiene` violations in library code.

pub fn parse_count(s: &str) -> u32 {
    let v: u32 = s.parse().unwrap(); // library unwrap
    if v == 0 {
        panic!("count must be positive"); // library panic
    }
    v
}

pub fn lookup(xs: &[u32], i: usize) -> u32 {
    *xs.get(i).expect("index in range") // library expect
}
