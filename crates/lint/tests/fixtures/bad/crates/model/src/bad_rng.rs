//! Fixture: every way to violate `rng-discipline`.

pub fn ambient_entropy() -> u64 {
    let mut rng = rand::thread_rng(); // entropy source: not reproducible
    let _ = SmallRng::from_entropy(); // ditto
    rng.random()
}

pub fn raw_literal_seed() -> SmallRng {
    SmallRng::seed_from_u64(42) // raw literal seed outside a test
}

pub fn ad_hoc_label(master: u64) -> u64 {
    derive_seed(master, "ad-hoc", 0) // raw string label bypasses Stream
}
