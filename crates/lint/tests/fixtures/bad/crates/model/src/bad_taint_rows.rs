//! Source half of the two-crate taint chain: a wall-clock read whose
//! return value is handed to a CSV writer by a caller in another crate
//! (`crates/analysis/src/bad_taint_emit.rs`).

pub fn noisy_rows() -> Vec<String> {
    let stamp = std::time::Instant::now();
    vec![format!("elapsed,{:?}", stamp.elapsed())]
}
