//! The blessed handler shape: bounded parameter parsing, the kernel
//! computed before the lock, and the guard held only for the insert.

pub fn router(state: std::sync::Arc<Shared>) -> Router {
    Router::new().get("/v1/table", move |req| {
        let key = req.param("rho");
        let table = build_table(&key);
        state
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, table.clone());
        Response::json(&table)
    })
}

fn build_table(_key: &str) -> Vec<u64> {
    Vec::new()
}
