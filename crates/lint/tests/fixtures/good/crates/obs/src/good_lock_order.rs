//! Guard discipline the lock-order rule accepts: one global acquisition
//! order, closures evaluated before locking, and the single-consumer
//! handoff idiom justified in place.

pub fn ab(s: &State) {
    let a = s.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = s.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    use_both(&a, &b);
}

pub fn also_ab(s: &State) {
    let a = s.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = s.beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    use_both(&a, &b);
}

pub fn install(s: &State, build: impl FnOnce() -> u64) -> u64 {
    let v = build();
    let mut a = s.alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *a = v;
    v
}

pub fn next_conn(rx: &std::sync::Mutex<ConnReceiver>) -> Option<Conn> {
    rx.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        // nss-lint: allow(lock-order) — single-consumer handoff mutex; this is the only lock held and nothing else ever takes it
        .recv()
        .ok()
}

fn use_both(_a: &u64, _b: &u64) {}
