//! Fixture: `panic-hygiene`-clean error handling — fallible paths return
//! `Result`; unwraps appear only under `#[cfg(test)]`.

pub fn parse_count(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

pub fn lookup(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::parse_count("3").unwrap(), 3);
        assert!(super::lookup(&[1], 9).is_none());
    }
}
