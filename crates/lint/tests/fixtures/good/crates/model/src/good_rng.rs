//! Fixture: `rng-discipline`-clean RNG use — every generator is seeded
//! through the labeled stream-derivation path.

pub fn labeled_stream(master: u64, rep: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, Stream::Misc.label(), rep))
}

pub fn via_factory(factory: &SeedFactory, rep: u64) -> u64 {
    factory.seed(Stream::Protocol, rep)
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_seeds_are_fine_in_tests() {
        let _ = SmallRng::seed_from_u64(7);
    }
}
