//! Fixture: well-formed pragmas suppressing real violations — the escape
//! hatch working as designed, with written reasons.

pub fn deliberate_fixed_seed() -> SmallRng {
    // nss-lint: allow(rng-discipline) — fixture: a fixed golden seed is the point here
    SmallRng::seed_from_u64(7)
}

pub fn documented_invariant(xs: &[u32]) -> u32 {
    // nss-lint: allow(panic-hygiene) — fixture: caller guarantees xs is non-empty
    *xs.first().expect("non-empty by contract")
}
