//! Fixture: `float-safety`-clean numerics — tolerance comparisons and
//! domain-guarded special functions.

pub fn tolerant_equality(x: f64) -> bool {
    (x - 0.3).abs() < 1e-9
}

pub fn lens_sqrt(d2: f64, r2: f64) -> f64 {
    (d2 - r2).max(0.0).sqrt()
}

pub fn lens_angle(c: f64) -> f64 {
    (c / 2.0).clamp(-1.0, 1.0).acos()
}
