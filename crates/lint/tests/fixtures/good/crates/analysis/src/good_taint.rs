//! Clock reads the taint rule accepts: a stopwatch that only feeds a
//! metrics callback, and a pinned-sink flow suppressed with a written
//! reason at the source site.

pub fn observe_stage(work: impl FnOnce()) {
    let t0 = std::time::Instant::now();
    work();
    record_seconds(t0.elapsed().as_secs_f64());
}

pub fn run_probe() -> SimTrace {
    // nss-lint: allow(nondeterminism-taint) — stopwatch feeds the timing histogram only; every SimTrace field is a pure function of the labeled seeds
    let t0 = std::time::Instant::now();
    let trace = SimTrace::fresh();
    record_seconds(t0.elapsed().as_secs_f64());
    trace
}

fn record_seconds(_s: f64) {}
