//! Fixture: `determinism`-clean collections — ordered maps for anything
//! traversed, hash maps only for keyed lookup, pragma'd sorted drains.

use std::collections::{BTreeMap, HashMap};

pub fn dump_csv(rows: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in rows.iter() {
        out.push_str(&format!("{k},{v}\n"));
    }
    out
}

pub fn keyed_lookup(memo: &HashMap<u64, f64>, k: u64) -> Option<f64> {
    memo.get(&k).copied()
}

pub fn sorted_drain(memo: &HashMap<u64, f64>) -> Vec<(u64, f64)> {
    // nss-lint: allow(determinism) — fixture: pairs are sorted by key immediately below, so hash order never escapes
    let mut pairs: Vec<(u64, f64)> = memo.iter().map(|(k, v)| (*k, *v)).collect();
    pairs.sort_by_key(|p| p.0);
    pairs
}
