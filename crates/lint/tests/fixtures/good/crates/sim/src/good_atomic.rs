//! The allowlisted relaxed patterns: monotonic counter accumulation and
//! a post-join read, with no cross-thread payload riding on either.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(total: &AtomicU64, n: u64) {
    total.fetch_add(n, Ordering::Relaxed);
}

pub fn read_after_join(total: &AtomicU64) -> u64 {
    total.load(Ordering::Relaxed)
}
