//! Fixture: `feature-hygiene`-clean instrumentation — fully qualified obs
//! macros with side-effect-free arguments.

pub fn record(n: u64) {
    nss_obs::counter!("sim.events").add(n);
}

pub fn record_timing(seconds: f64) {
    nss_obs::observe!("sim.step_seconds", seconds);
}
