//! Fixture: `feature-hygiene`-clean instrumentation — fully qualified obs
//! macros with side-effect-free arguments.

pub fn record(n: u64) {
    nss_obs::counter!("sim.events").add(n);
}

pub fn record_timing(seconds: f64) {
    nss_obs::observe!("sim.step_seconds", seconds);
}

pub fn hot_loop_uses_flight_recorder(phases: u64, mem_bytes: f64) {
    nss_obs::gauge!("sim.mem.bytes").set(mem_bytes);
    for _phase in 0..phases {
        let _t = nss_obs::trace_span!("sim.phase");
    }
}
