//! # nss-serve — the optimal-p query service
//!
//! The paper's deliverable is a *predictor*: given a density ρ, a §4.1
//! metric, and its constraint, the analytical framework names the
//! broadcast probability `p` a deployed network should use. This crate
//! turns that predictor into a long-running HTTP service (ROADMAP item 3)
//! on the workspace's dependency-free [`nss_obs::http`] machinery:
//!
//! | endpoint                | answer                                      |
//! |-------------------------|---------------------------------------------|
//! | `GET /v1/optimal-p`     | the best grid `p` for (ρ, metric, constraint) |
//! | `GET /v1/reachability`  | the full per-phase curve at (ρ, p)          |
//! | `POST /v1/batch`        | many optimal-p queries in one round trip    |
//! | `GET /metrics[.json]`, `GET /healthz` | the scrape plane ([`nss_obs::serve::metrics_routes`]) |
//!
//! `docs/API.md` documents every parameter, response schema, and error
//! code; a socket-level test in this crate keeps that document honest.
//!
//! ## The resident cache
//!
//! A cold (ρ, quad) query runs the ring model over the paper's full
//! 100-point probability grid (~milliseconds); a warm query evaluates an
//! objective over the cached [`PhaseSeries`] (~microseconds). The service
//! therefore keeps per-ρ sweeps in a
//! [`nss_analysis::sharded::ShardedCache`] — sharded by the
//! FNV-64 fingerprint of ([`KernelKey`], ρ), cold-miss-coalescing so a
//! storm of identical uncached queries computes the sweep once, and
//! LRU-evicting under the `--cache-bytes` budget. A sweep larger than a
//! whole shard's budget is answered but **not** admitted, surfaced as
//! `503` so operators see a misconfigured budget instead of silent
//! thrash. (The kernels themselves are interned by the process-wide
//! [`nss_analysis::tables::KernelCache`], exactly as in batch sweeps.)
//!
//! Every request increments `serve.requests`, runs under
//! `trace_span!("serve.request")` (→ the `serve.request.seconds`
//! histogram and the flight recorder), and mirrors its cache outcome into
//! `serve.cache.{hit,miss,coalesced}` / `serve.evictions` /
//! `serve.cache.bytes` — see `docs/METRICS.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::net::SocketAddr;
use std::sync::Arc;

use nss_analysis::optimize::{Objective, Optimum, ProbabilitySweep};
use nss_analysis::ring_model::RingModelConfig;
use nss_analysis::sharded::{CacheWeight, Fingerprint, OutcomeKind, ShardedCache};
use nss_analysis::tables::KernelKey;
use nss_model::metrics::PhaseSeries;
use nss_obs::export::json_escape;
use nss_obs::http::{HttpServer, Request, Response, Router, ServerOptions};
use nss_obs::jsonval::Json;

/// Largest accepted density — far beyond the paper's ρ ∈ [20, 140] range
/// but finite, so a single query cannot request an absurd model run.
pub const MAX_RHO: f64 = 1e6;

/// Hard cap on queries in one `POST /v1/batch` body.
pub const MAX_BATCH: usize = 4096;

/// Configuration for [`QueryServer::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// HTTP worker threads (0 = serve inline on the accept thread).
    pub workers: usize,
    /// Cache shards (clamped to ≥ 1).
    pub shards: usize,
    /// Total resident-sweep byte budget across all shards.
    pub cache_bytes: usize,
    /// Simpson quadrature points per ring integral (the paper uses 64;
    /// tests and smoke runs use 32).
    pub quad_points: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:9188".to_string(),
            // Floored at 4: each keep-alive connection pins a worker for
            // its lifetime, so on small machines a parallelism-sized pool
            // would let one idle client starve the listener.
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .max(4),
            shards: 8,
            cache_bytes: 256 << 20,
            quad_points: 64,
        }
    }
}

/// Cache key for one resident sweep: the ρ/p-independent kernel
/// fingerprint plus the bit-exact density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RhoKey {
    /// `rho.to_bits()` (bit-exact float identity, like [`KernelKey::r_bits`]).
    pub rho_bits: u64,
    /// The kernel fingerprint (quadrature, rings, slots, μ mode).
    pub kernel: KernelKey,
}

impl Fingerprint for RhoKey {
    fn fingerprint(&self) -> u64 {
        nss_analysis::sharded::fnv64(&self.rho_bits.to_le_bytes())
            ^ self.kernel.fingerprint().rotate_left(17)
    }
}

/// One resident sweep: the paper's 100-point probability grid and the
/// phase series computed at each point for a fixed ρ.
#[derive(Debug)]
pub struct RhoEntry {
    /// The probability grid ([`ProbabilitySweep::paper_grid`]).
    pub probs: Vec<f64>,
    /// Phase series aligned with `probs`.
    pub series: Vec<PhaseSeries>,
}

impl CacheWeight for RhoEntry {
    fn cache_bytes(&self) -> usize {
        let series_heap: usize = self
            .series
            .iter()
            .map(|s| {
                (s.informed_cum.capacity() + s.broadcasts_cum.capacity())
                    * std::mem::size_of::<f64>()
                    + std::mem::size_of::<PhaseSeries>()
            })
            .sum();
        self.probs.capacity() * std::mem::size_of::<f64>() + series_heap
    }
}

/// A request-level failure, rendered as `{"error": …}` with an HTTP
/// status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status (400 bad params, 413 oversized batch, 503 capacity).
    pub status: u16,
    /// Human-readable cause, returned verbatim in the JSON body.
    pub message: String,
}

impl ApiError {
    fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

/// The query engine: parameter validation, the resident sweep cache, and
/// JSON rendering. [`QueryServer`] wraps it with HTTP; tests and the
/// batch endpoint call it directly.
pub struct QueryService {
    base: RingModelConfig,
    cache: ShardedCache<RhoKey, RhoEntry>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("quad_points", &self.base.quad_points)
            .field("cache", &self.cache)
            .finish()
    }
}

/// How a query's sweep was obtained, reported in the response `cache`
/// field (`hit` | `miss` | `coalesced`).
fn cache_label(kind: OutcomeKind) -> &'static str {
    match kind {
        OutcomeKind::Hit => "hit",
        OutcomeKind::Coalesced => "coalesced",
        OutcomeKind::Built => "miss",
    }
}

impl QueryService {
    /// A service with `shards` cache shards sharing `cache_bytes`, running
    /// the ring model at `quad_points` quadrature points (paper config
    /// otherwise: `P = 5`, `s = 3`).
    pub fn new(shards: usize, cache_bytes: usize, quad_points: usize) -> QueryService {
        let mut base = RingModelConfig::paper(20.0, 0.0);
        base.quad_points = quad_points.max(2);
        QueryService {
            base,
            cache: ShardedCache::new(shards, cache_bytes),
        }
    }

    /// The cache tallies (hits, misses, coalesced, evictions, residency).
    pub fn cache_stats(&self) -> nss_analysis::sharded::CacheStats {
        self.cache.stats()
    }

    /// Parses a `metric` + `constraint` pair into a §4.1 [`Objective`].
    ///
    /// Metric names: `reach-at-latency` (constraint = latency budget in
    /// phases), `latency-for-reach` and `broadcasts-for-reach`
    /// (constraint = reachability target in (0, 1]), `reach-under-budget`
    /// (constraint = broadcast budget).
    pub fn parse_objective(metric: &str, constraint: f64) -> Result<Objective, ApiError> {
        if !constraint.is_finite() {
            return Err(ApiError::bad("constraint must be a finite number"));
        }
        match metric {
            "reach-at-latency" => {
                if constraint <= 0.0 {
                    return Err(ApiError::bad("latency budget (phases) must be > 0"));
                }
                Ok(Objective::MaxReachAtLatency { phases: constraint })
            }
            "latency-for-reach" => {
                if !(0.0..=1.0).contains(&constraint) || constraint == 0.0 {
                    return Err(ApiError::bad("reachability target must be in (0, 1]"));
                }
                Ok(Objective::MinLatencyForReach { target: constraint })
            }
            "broadcasts-for-reach" => {
                if !(0.0..=1.0).contains(&constraint) || constraint == 0.0 {
                    return Err(ApiError::bad("reachability target must be in (0, 1]"));
                }
                Ok(Objective::MinBroadcastsForReach { target: constraint })
            }
            "reach-under-budget" => {
                if constraint <= 0.0 {
                    return Err(ApiError::bad("broadcast budget must be > 0"));
                }
                Ok(Objective::MaxReachUnderBudget { budget: constraint })
            }
            other => Err(ApiError::bad(format!(
                "unknown metric {other:?}; expected reach-at-latency, \
                 latency-for-reach, broadcasts-for-reach, or reach-under-budget"
            ))),
        }
    }

    fn validate_rho(rho: f64) -> Result<(), ApiError> {
        if !rho.is_finite() || rho <= 0.0 || rho > MAX_RHO {
            return Err(ApiError::bad(format!(
                "rho must be a finite density in (0, {MAX_RHO}], got {rho}"
            )));
        }
        Ok(())
    }

    /// The resident sweep for `rho`, building (and possibly coalescing or
    /// evicting) on a miss. Mirrors the outcome into the `serve.cache.*`
    /// metrics. `Err(503)` when the sweep exceeds the per-shard budget.
    fn sweep_for(&self, rho: f64) -> Result<(Arc<RhoEntry>, OutcomeKind), ApiError> {
        let mut base = self.base;
        base.rho = rho;
        let key = RhoKey {
            rho_bits: rho.to_bits(),
            kernel: KernelKey::of(&base),
        };
        let out = self.cache.get_or_build(&key, || {
            let sweep = ProbabilitySweep::run(base, &ProbabilitySweep::paper_grid());
            RhoEntry {
                probs: sweep.probs,
                series: sweep.series,
            }
        });
        match out.kind {
            OutcomeKind::Hit => nss_obs::counter!("serve.cache.hit").inc(),
            OutcomeKind::Built => nss_obs::counter!("serve.cache.miss").inc(),
            OutcomeKind::Coalesced => nss_obs::counter!("serve.cache.coalesced").inc(),
        }
        if out.evicted > 0 {
            nss_obs::counter!("serve.evictions").add(out.evicted as u64);
        }
        let stats = self.cache.stats();
        nss_obs::gauge!("serve.cache.bytes").set(stats.resident_bytes as f64);
        if !out.admitted {
            return Err(ApiError {
                status: 503,
                message: format!(
                    "cache capacity exhausted: sweep needs {} bytes but the \
                     per-shard budget is {}; raise --cache-bytes",
                    out.value.cache_bytes(),
                    self.cache.per_shard_budget()
                ),
            });
        }
        Ok((out.value, out.kind))
    }

    /// Answers one optimal-p query as a JSON object (the body of
    /// `GET /v1/optimal-p` and of each `POST /v1/batch` result).
    pub fn optimal_p(&self, rho: f64, metric: &str, constraint: f64) -> Result<String, ApiError> {
        Self::validate_rho(rho)?;
        let obj = Self::parse_objective(metric, constraint)?;
        let (entry, kind) = self.sweep_for(rho)?;
        // Evaluate in place over the cached series — cloning the sweep
        // would copy ~300 KB per request and sink the warm-path SLO.
        let mut best: Option<(f64, f64)> = None;
        for (&p, s) in entry.probs.iter().zip(&entry.series) {
            let Some(v) = obj.evaluate(s) else { continue };
            let better = match best {
                None => true,
                Some((_, incumbent)) => {
                    if obj.is_max() {
                        v > incumbent
                    } else {
                        v < incumbent
                    }
                }
            };
            if better {
                best = Some((p, v));
            }
        }
        let body = match best.map(|(prob, value)| Optimum { prob, value }) {
            Some(opt) => format!(
                "{{\"rho\":{rho},\"metric\":\"{metric}\",\"constraint\":{constraint},\
                 \"feasible\":true,\"p\":{},\"value\":{},\"cache\":\"{}\"}}",
                opt.prob,
                opt.value,
                cache_label(kind)
            ),
            None => format!(
                "{{\"rho\":{rho},\"metric\":\"{metric}\",\"constraint\":{constraint},\
                 \"feasible\":false,\"p\":null,\"value\":null,\"cache\":\"{}\"}}",
                cache_label(kind)
            ),
        };
        Ok(body)
    }

    /// Answers one reachability-curve query as a JSON object (the body of
    /// `GET /v1/reachability`). `p` is snapped to the nearest point of the
    /// paper's 0.01-step analysis grid; the snapped value is returned.
    pub fn reachability(&self, rho: f64, p: f64) -> Result<String, ApiError> {
        Self::validate_rho(rho)?;
        if !(0.0..=1.0).contains(&p) {
            return Err(ApiError::bad(format!(
                "p must be a broadcast probability in [0, 1], got {p}"
            )));
        }
        let (entry, kind) = self.sweep_for(rho)?;
        let idx = ((p * 100.0).round() as usize).clamp(1, entry.probs.len()) - 1;
        let series = &entry.series[idx];
        let mut phases = String::new();
        for (i, (inf, bc)) in series
            .informed_cum
            .iter()
            .zip(&series.broadcasts_cum)
            .enumerate()
        {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!(
                "{{\"phase\":{},\"reach\":{},\"broadcasts\":{}}}",
                i + 1,
                inf / series.n_total,
                bc
            ));
        }
        Ok(format!(
            "{{\"rho\":{rho},\"p_requested\":{p},\"p\":{},\"n_total\":{},\
             \"final_reach\":{},\"phases\":[{phases}],\"cache\":\"{}\"}}",
            entry.probs[idx],
            series.n_total,
            series.final_reachability(),
            cache_label(kind)
        ))
    }

    /// Answers a batch body (`{"queries": [{rho, metric, constraint}, …]}`)
    /// with `{"results": […]}`, one result per query in order. Individual
    /// query failures become inline `{"error", "status"}` objects; only a
    /// malformed envelope fails the whole request.
    pub fn batch(&self, body: &[u8]) -> Result<String, ApiError> {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::bad("body must be UTF-8 JSON"))?;
        let doc = Json::parse(text).map_err(|e| ApiError::bad(format!("invalid JSON: {e}")))?;
        let queries = doc
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| ApiError::bad("body must be {\"queries\": [...]}"))?;
        if queries.len() > MAX_BATCH {
            return Err(ApiError {
                status: 413,
                message: format!(
                    "batch of {} exceeds the {MAX_BATCH}-query cap",
                    queries.len()
                ),
            });
        }
        let mut results = String::new();
        for (i, q) in queries.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            let answer = (|| -> Result<String, ApiError> {
                let rho = q
                    .get("rho")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ApiError::bad("query needs a numeric \"rho\""))?;
                let metric = q
                    .get("metric")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ApiError::bad("query needs a string \"metric\""))?;
                let constraint = q
                    .get("constraint")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ApiError::bad("query needs a numeric \"constraint\""))?;
                self.optimal_p(rho, metric, constraint)
            })();
            match answer {
                Ok(json) => results.push_str(&json),
                Err(e) => results.push_str(&format!(
                    "{{\"error\":\"{}\",\"status\":{}}}",
                    json_escape(&e.message),
                    e.status
                )),
            }
        }
        Ok(format!("{{\"results\":[{results}]}}"))
    }
}

/// Parses a required float query parameter.
fn float_param(req: &Request, name: &str) -> Result<f64, ApiError> {
    req.query_param(name)
        .ok_or_else(|| ApiError::bad(format!("missing query parameter {name:?}")))?
        .parse::<f64>()
        .map_err(|_| ApiError::bad(format!("query parameter {name:?} must be a number")))
}

/// Renders a handler result as an HTTP response and counts errors.
fn respond(result: Result<String, ApiError>) -> Response {
    match result {
        Ok(body) => Response::json(200, body),
        Err(e) => {
            nss_obs::counter!("serve.errors").inc();
            Response::json(
                e.status,
                format!(
                    "{{\"error\":\"{}\",\"status\":{}}}",
                    json_escape(&e.message),
                    e.status
                ),
            )
        }
    }
}

/// Builds the full service router: the three `/v1` query routes plus the
/// scrape plane (`/metrics`, `/metrics.json`, `/healthz`).
pub fn router(service: Arc<QueryService>) -> Router {
    let svc_opt = Arc::clone(&service);
    let svc_reach = Arc::clone(&service);
    let svc_batch = service;
    nss_obs::serve::metrics_routes(Router::new())
        .get("/v1/optimal-p", move |req| {
            nss_obs::counter!("serve.requests").inc();
            let _span = nss_obs::trace_span!("serve.request");
            respond((|| {
                svc_opt.optimal_p(
                    float_param(req, "rho")?,
                    &req.query_param("metric")
                        .ok_or_else(|| ApiError::bad("missing query parameter \"metric\""))?,
                    float_param(req, "constraint")?,
                )
            })())
        })
        .get("/v1/reachability", move |req| {
            nss_obs::counter!("serve.requests").inc();
            let _span = nss_obs::trace_span!("serve.request");
            respond((|| {
                svc_reach.reachability(float_param(req, "rho")?, float_param(req, "p")?)
            })())
        })
        .post("/v1/batch", move |req| {
            nss_obs::counter!("serve.requests").inc();
            let _span = nss_obs::trace_span!("serve.request");
            respond(svc_batch.batch(&req.body))
        })
}

/// A running query server (HTTP listener + worker pool over a
/// [`QueryService`]).
#[derive(Debug)]
pub struct QueryServer {
    http: HttpServer,
    service: Arc<QueryService>,
}

impl QueryServer {
    /// Binds `config.addr` and starts serving with keep-alive connections
    /// and `config.workers` worker threads.
    pub fn start(config: &ServeConfig) -> std::io::Result<QueryServer> {
        let service = Arc::new(QueryService::new(
            config.shards,
            config.cache_bytes,
            config.quad_points,
        ));
        let http = HttpServer::start(
            config.addr.as_str(),
            Arc::new(router(Arc::clone(&service))),
            ServerOptions {
                workers: config.workers,
                keep_alive: true,
                // Looser than the scrape endpoint's 2 s: query clients hold
                // persistent connections with natural think-time gaps.
                io_timeout: std::time::Duration::from_secs(30),
                thread_name: "nss-serve".to_string(),
                ..ServerOptions::default()
            },
        )?;
        Ok(QueryServer { http, service })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The underlying service (for stats inspection).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Graceful shutdown: stops accepting, drains workers, joins threads.
    /// Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        self.http.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_obs::serve::http_get;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    /// Small quadrature + tiny grid cost so socket tests stay fast.
    fn test_server(cache_bytes: usize) -> QueryServer {
        QueryServer::start(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            shards: 4,
            cache_bytes,
            quad_points: 32,
        })
        .expect("bind loopback")
    }

    fn parse(body: &str) -> Json {
        Json::parse(body).unwrap_or_else(|e| panic!("invalid JSON {e}: {body}"))
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("conn");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn optimal_p_miss_then_hit() {
        let server = test_server(256 << 20);
        let q = "/v1/optimal-p?rho=20&metric=reach-at-latency&constraint=5";
        let (status, body) = http_get(server.addr(), q).expect("query");
        assert_eq!(status, 200, "{body}");
        let v = parse(&body);
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(v.get("feasible").and_then(Json::as_bool), Some(true));
        let p = v.get("p").and_then(Json::as_f64).expect("p present");
        assert!((0.0..=1.0).contains(&p), "p={p}");
        let (status, body) = http_get(server.addr(), q).expect("query");
        assert_eq!(status, 200);
        assert_eq!(
            parse(&body).get("cache").and_then(Json::as_str),
            Some("hit")
        );
    }

    #[test]
    fn reachability_curve_is_monotone() {
        let server = test_server(256 << 20);
        let (status, body) =
            http_get(server.addr(), "/v1/reachability?rho=40&p=0.2").expect("query");
        assert_eq!(status, 200, "{body}");
        let v = parse(&body);
        assert_eq!(v.get("p").and_then(Json::as_f64), Some(0.2));
        let phases = v.get("phases").and_then(Json::as_arr).expect("phases");
        assert!(!phases.is_empty());
        let reaches: Vec<f64> = phases
            .iter()
            .map(|ph| ph.get("reach").and_then(Json::as_f64).expect("reach"))
            .collect();
        assert!(
            reaches.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "{reaches:?}"
        );
        let last = *reaches.last().expect("nonempty");
        assert!(last > 0.0 && last <= 1.0);
    }

    #[test]
    fn batch_answers_each_query_in_order() {
        let server = test_server(256 << 20);
        let (status, body) = post(
            server.addr(),
            "/v1/batch",
            "{\"queries\":[\
             {\"rho\":20,\"metric\":\"reach-at-latency\",\"constraint\":5},\
             {\"rho\":20,\"metric\":\"nope\",\"constraint\":5},\
             {\"rho\":40,\"metric\":\"broadcasts-for-reach\",\"constraint\":0.6}]}",
        );
        assert_eq!(status, 200, "{body}");
        let v = parse(&body);
        let results = v.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 3);
        assert!(results[0].get("p").and_then(Json::as_f64).is_some());
        assert_eq!(results[1].get("status").and_then(Json::as_f64), Some(400.0));
        assert!(results[2].get("p").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn out_of_domain_parameters_get_400() {
        let server = test_server(256 << 20);
        for q in [
            "/v1/optimal-p?rho=-1&metric=reach-at-latency&constraint=5",
            "/v1/optimal-p?rho=nan&metric=reach-at-latency&constraint=5",
            "/v1/optimal-p?rho=20&metric=unknown&constraint=5",
            "/v1/optimal-p?rho=20&metric=latency-for-reach&constraint=1.5",
            "/v1/optimal-p?rho=20&metric=reach-at-latency",
            "/v1/reachability?rho=20&p=1.5",
            "/v1/reachability?rho=0&p=0.5",
        ] {
            let (status, body) = http_get(server.addr(), q).expect("query");
            assert_eq!(status, 400, "{q} → {body}");
            assert!(parse(&body).get("error").is_some(), "{q} → {body}");
        }
        let (status, body) = post(server.addr(), "/v1/batch", "{\"nope\":1}");
        assert_eq!(status, 400, "{body}");
    }

    #[test]
    fn capacity_exhaustion_is_503() {
        // 4-shard cache with a 4 KiB total budget: a ~300 KB sweep can
        // never be admitted.
        let server = test_server(4096);
        let (status, body) = http_get(
            server.addr(),
            "/v1/optimal-p?rho=25&metric=reach-at-latency&constraint=5",
        )
        .expect("query");
        assert_eq!(status, 503, "{body}");
        let v = parse(&body);
        assert!(
            v.get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.contains("cache-bytes")),
            "{body}"
        );
    }

    #[test]
    fn scrape_plane_is_mounted() {
        let server = test_server(256 << 20);
        let (status, body) = http_get(server.addr(), "/healthz").expect("healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http_get(server.addr(), "/metrics").expect("metrics");
        assert_eq!(status, 200);
        let (status, body) = http_get(server.addr(), "/metrics.json").expect("metrics.json");
        assert_eq!(status, 200);
        assert!(Json::parse(&body).is_ok());
    }

    #[test]
    fn cold_miss_storm_computes_sweep_once() {
        // Acceptance gate: 64 concurrent identical queries on a cold
        // cache run the sweep exactly once and coalesce the rest. The
        // high quadrature makes the cold build tens of milliseconds, so
        // every storm thread reaches the shard while it is still
        // `Building` even on a single-core machine — without it the
        // sweep can finish before the OS schedules the waiters, which
        // then (correctly) read plain hits.
        let service = Arc::new(QueryService::new(8, 256 << 20, 512));
        let barrier = Arc::new(std::sync::Barrier::new(64));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    service
                        .optimal_p(77.0, "reach-at-latency", 5.0)
                        .expect("query")
                })
            })
            .collect();
        for h in handles {
            h.join().expect("storm thread");
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert!(stats.coalesced >= 63, "{stats:?}");
    }
}
