//! `docs/API.md` honesty test: every endpoint, response field, and status
//! code the document claims is exercised against a live socket here, so
//! the API reference cannot drift from the server.

use nss_serve::{QueryServer, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn api_doc() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/API.md");
    std::fs::read_to_string(&path).expect("docs/API.md exists")
}

fn start(cache_bytes: usize) -> QueryServer {
    QueryServer::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        shards: 4,
        cache_bytes,
        quad_points: 32,
    })
    .expect("start server")
}

/// One request over a fresh connection; returns (status, body).
fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Every path named in the doc is served, and every field the doc's
/// response schemas show appears in a live response.
#[test]
fn documented_endpoints_and_fields_are_live() {
    let doc = api_doc();
    let server = start(256 << 20);
    let addr = server.addr();

    for path in [
        "/v1/optimal-p",
        "/v1/reachability",
        "/v1/batch",
        "/metrics",
        "/metrics.json",
        "/healthz",
    ] {
        assert!(doc.contains(path), "API.md no longer documents {path}");
    }

    let (status, body) = get(
        addr,
        "/v1/optimal-p?rho=40&metric=reach-at-latency&constraint=5",
    );
    assert_eq!(status, 200, "{body}");
    for field in [
        "\"rho\"",
        "\"metric\"",
        "\"constraint\"",
        "\"feasible\"",
        "\"p\"",
        "\"value\"",
        "\"cache\"",
    ] {
        let key = field.trim_matches('"');
        assert!(body.contains(field), "optimal-p body lost {field}: {body}");
        assert!(
            doc.contains(key),
            "API.md does not mention optimal-p field {field}"
        );
    }

    let (status, body) = get(addr, "/v1/reachability?rho=40&p=0.2");
    assert_eq!(status, 200, "{body}");
    for field in [
        "\"p_requested\"",
        "\"n_total\"",
        "\"final_reach\"",
        "\"phases\"",
        "\"phase\"",
        "\"reach\"",
        "\"broadcasts\"",
    ] {
        let key = field.trim_matches('"');
        assert!(
            body.contains(field),
            "reachability body lost {field}: {body}"
        );
        assert!(
            doc.contains(key),
            "API.md does not mention reachability field {field}"
        );
    }

    let (status, body) = post(
        addr,
        "/v1/batch",
        r#"{"queries":[{"rho":40,"metric":"reach-at-latency","constraint":5}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"results\":["), "{body}");
    assert!(
        doc.contains("\"results\""),
        "API.md does not show the batch envelope"
    );

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
}

/// Every error code in the doc's status table is producible, with the
/// documented trigger.
#[test]
fn documented_status_codes_are_real() {
    let doc = api_doc();
    for code in ["400", "404", "405", "413", "503"] {
        assert!(
            doc.contains(&format!("`{code}`")),
            "API.md status table lost {code}"
        );
    }

    let server = start(256 << 20);
    let addr = server.addr();

    // 400: out-of-domain parameter, JSON error envelope.
    let (status, body) = get(
        addr,
        "/v1/optimal-p?rho=-1&metric=reach-at-latency&constraint=5",
    );
    assert_eq!(status, 400, "{body}");
    assert!(
        body.contains("\"error\"") && body.contains("\"status\":400"),
        "{body}"
    );

    // 400: unknown metric names the valid ones.
    let (status, body) = get(addr, "/v1/optimal-p?rho=40&metric=nope&constraint=5");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("reach-at-latency"), "{body}");

    // 404: unknown path lists the GET paths, as documented.
    let (status, body) = get(addr, "/v1/nope");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("/v1/optimal-p"), "{body}");

    // 405: wrong method names the allowed ones.
    let (status, body) = post(addr, "/v1/optimal-p", "{}");
    assert_eq!(status, 405, "{body}");
    assert!(body.contains("GET"), "{body}");

    // 413: batch over the documented 4096-query cap.
    let one = r#"{"rho":40,"metric":"reach-at-latency","constraint":5}"#;
    let body_4097 = format!(
        "{{\"queries\":[{}]}}",
        std::iter::repeat_n(one, 4097).collect::<Vec<_>>().join(",")
    );
    // The cap (4096) must appear in the doc and in the live error.
    assert!(doc.contains("4096"), "API.md lost the batch cap");
    let (status, body) = post(addr, "/v1/batch", &body_4097);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("4096"), "{body}");
}

/// 503 fires when a sweep cannot be admitted, and the message tells the
/// operator to raise `--cache-bytes`, exactly as documented.
#[test]
fn cache_exhaustion_503_matches_the_doc() {
    let doc = api_doc();
    assert!(doc.contains("--cache-bytes"), "API.md lost the 503 remedy");
    let server = start(1024); // far below one sweep's footprint
    let (status, body) = get(
        server.addr(),
        "/v1/optimal-p?rho=40&metric=reach-at-latency&constraint=5",
    );
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("--cache-bytes"), "{body}");
}
