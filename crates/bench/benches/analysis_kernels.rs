//! Microbenchmarks of the analytical kernels: lens areas (Eq. 1), the
//! contention probabilities μ/μ' (Eq. 2 / A.1), quadrature, and the full
//! ring recursion (Eq. 4 / A.3).

use criterion::{criterion_group, criterion_main, Criterion};
use nss_analysis::mu::{mu_closed_form, MuEvaluator, MuMode, MuTable};
use nss_analysis::mu_cs::{mu_cs_closed_form, mu_cs_poisson};
use nss_analysis::quadrature::simpson;
use nss_analysis::ring_geometry::RingGeometry;
use nss_analysis::ring_model::RingModel;
use nss_analysis::tables::{GeometryTables, KernelCache};
use nss_bench::ring_cfg;
use nss_model::comm::CollisionRule;
use nss_model::geometry::lens_area;
use std::hint::black_box;
use std::sync::Arc;

fn bench_geometry(c: &mut Criterion) {
    c.bench_function("lens_area/partial_overlap", |b| {
        b.iter(|| lens_area(black_box(2.0), black_box(1.0), black_box(2.3)))
    });
    let geom = RingGeometry::new(5, 1.0);
    c.bench_function("ring_geometry/a_partition_row", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for k in 1..=5u32 {
                total += geom.a_area(black_box(3), black_box(0.4), k);
            }
            total
        })
    });
    c.bench_function("ring_geometry/b_partition_row", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for k in 1..=5u32 {
                total += geom.b_area(black_box(3), black_box(0.4), k, 2.0);
            }
            total
        })
    });
}

fn bench_mu(c: &mut Criterion) {
    c.bench_function("mu/closed_form_k50_s3", |b| {
        b.iter(|| mu_closed_form(black_box(50), black_box(3)))
    });
    c.bench_function("mu/table_build_512_s3", |b| {
        b.iter(|| {
            let t = MuTable::new(3);
            t.mu(black_box(511))
        })
    });
    let interp = MuEvaluator::new(3, MuMode::Interpolate);
    c.bench_function("mu/eval_interpolate", |b| {
        b.iter(|| interp.eval(black_box(17.3)))
    });
    let pois = MuEvaluator::new(3, MuMode::Poisson);
    c.bench_function("mu/eval_poisson", |b| b.iter(|| pois.eval(black_box(17.3))));
    c.bench_function("mu_cs/closed_form", |b| {
        b.iter(|| mu_cs_closed_form(black_box(20), black_box(60), black_box(3)))
    });
    c.bench_function("mu_cs/poisson_analytic", |b| {
        b.iter(|| mu_cs_poisson(black_box(20.0), black_box(60.0), black_box(3)))
    });
}

fn bench_quadrature(c: &mut Criterion) {
    c.bench_function("quadrature/simpson_64", |b| {
        b.iter(|| {
            simpson(
                |x| (4.0 + x) * (1.0 - (-3.0 * x).exp()),
                0.0,
                1.0,
                black_box(64),
            )
        })
    });
}

fn bench_ring_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_model");
    group.sample_size(20);
    group.bench_function("run_rho60_p0.2", |b| {
        let model = RingModel::new(ring_cfg(60.0, 0.2));
        b.iter(|| model.run())
    });
    group.bench_function("run_rho140_flooding", |b| {
        let model = RingModel::new(ring_cfg(140.0, 1.0));
        b.iter(|| model.run())
    });
    group.bench_function("run_carrier_sense_rho60", |b| {
        let mut cfg = ring_cfg(60.0, 0.2);
        cfg.collision = CollisionRule::CARRIER_SENSE_2R;
        let model = RingModel::new(cfg);
        b.iter(|| model.run())
    });
    group.bench_function("run_with_success_tracking", |b| {
        let model = RingModel::new(ring_cfg(60.0, 1.0)).with_success_rate_tracking();
        b.iter(|| model.run())
    });
    group.finish();
}

/// The tentpole comparison: constructing a model per sweep cell (rebuilding
/// geometry tables) vs sharing one interned kernel across cells.
fn bench_kernel_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_cache");
    group.sample_size(20);
    group.bench_function("tables_build_quad64", |b| {
        b.iter(|| GeometryTables::build(black_box(5), black_box(1.0), 64, Some(2.0)))
    });
    let warm = KernelCache::new();
    let _ = warm.get(&ring_cfg(60.0, 0.2));
    group.bench_function("cache_hit", |b| {
        b.iter(|| warm.get(&ring_cfg(black_box(60.0), black_box(0.2))))
    });
    group.bench_function("construct_run_uncached", |b| {
        b.iter(|| RingModel::new(ring_cfg(black_box(60.0), black_box(0.2))).run())
    });
    group.bench_function("construct_run_cached", |b| {
        b.iter(|| RingModel::cached(ring_cfg(black_box(60.0), black_box(0.2))).run())
    });
    let kernel = KernelCache::global().get(&ring_cfg(60.0, 0.2));
    group.bench_function("construct_run_shared_kernel", |b| {
        b.iter(|| {
            RingModel::with_kernel(
                ring_cfg(black_box(60.0), black_box(0.2)),
                Arc::clone(&kernel),
            )
            .run()
        })
    });
    group.finish();
}

/// Table lookup + precomputed-weight integration vs recomputing the lens
/// areas through a closure at every quadrature point (the seed's hot path).
fn bench_table_vs_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_vs_closure");
    let geom = RingGeometry::new(5, 1.0);
    let tables = GeometryTables::build(5, 1.0, 64, None);
    let weights = [1.0, 0.7, 0.2, 0.05, 0.01];
    group.bench_function("g_integral_closure", |b| {
        b.iter(|| {
            simpson(
                |x| {
                    let mut g = 0.0;
                    for k in 2..=4u32 {
                        g += weights[k as usize - 1] * geom.a_area(3, x, k);
                    }
                    (2.0 + x) * g
                },
                0.0,
                1.0,
                black_box(64),
            )
        })
    });
    group.bench_function("g_integral_table", |b| {
        b.iter(|| {
            tables.integrate(|i, x| {
                let mut g = 0.0;
                for k in 2..=4u32 {
                    g += weights[k as usize - 1] * tables.a(3, k, i);
                }
                (2.0 + x) * g
            })
        })
    });
    group.finish();
}

/// Short measurement windows: the suite's value is the recorded relative
/// numbers, not publication-grade confidence intervals.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_geometry,
    bench_mu,
    bench_quadrature,
    bench_ring_model,
    bench_kernel_cache,
    bench_table_vs_closure
}
criterion_main!(benches);
