//! Benchmarks of the packet-level simulator substrate: deployment,
//! topology construction, medium arbitration, and the protocol executors.

use criterion::{criterion_group, criterion_main, Criterion};
use nss_bench::topo;
use nss_model::comm::{CollisionRule, CommunicationModel, MediumBackend, SinrParams};
use nss_model::deployment::Deployment;
use nss_model::topology::Topology;
use nss_sim::exact::exact_expected_informed;
use nss_sim::executor::Executor;
use nss_sim::medium::{Medium, MediumScratch};
use nss_sim::probe::probe_per_node_success;
use nss_sim::protocols::ack_flood::{run_ack_flood, AckFloodConfig};
use nss_sim::protocols::async_gossip::{run_async_gossip, AsyncGossipConfig};
use nss_sim::protocols::convergecast::{run_convergecast, ConvergecastConfig};
use nss_sim::protocols::counter::{run_counter_broadcast, CounterConfig};
use nss_sim::protocols::distance::{run_distance_broadcast, DistanceConfig};
use nss_sim::runner::Replication;
use nss_sim::slotted::GossipConfig;
use nss_sim::tdma::TdmaSchedule;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let spec = Deployment::disk(5, 1.0, 60.0);
    c.bench_function("substrate/deploy_rho60", |b| {
        b.iter(|| spec.sample(black_box(7)))
    });
    let net = spec.sample(7);
    c.bench_function("substrate/topology_build_rho60", |b| {
        b.iter(|| Topology::build(&net))
    });

    let topo = topo(60.0, 7);
    let medium_tr = Medium::new(CommunicationModel::CAM);
    let medium_cs = Medium::new(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R));
    let transmitters: Vec<u32> = (0..topo.len() as u32).step_by(15).collect();
    c.bench_function("substrate/medium_slot_tr_100tx", |b| {
        let mut scratch = MediumScratch::new(topo.len());
        b.iter(|| {
            let mut deliveries = 0u64;
            medium_tr.resolve_slot(&topo, &transmitters, &mut scratch, None, |_, _| {
                deliveries += 1
            });
            deliveries
        })
    });
    c.bench_function("substrate/medium_slot_cs_100tx", |b| {
        let mut scratch = MediumScratch::new(topo.len());
        b.iter(|| {
            let mut deliveries = 0u64;
            medium_cs.resolve_slot(&topo, &transmitters, &mut scratch, None, |_, _| {
                deliveries += 1
            });
            deliveries
        })
    });
    let medium_sinr = Medium::with_backend(
        CommunicationModel::CAM,
        MediumBackend::Sinr(SinrParams::DEFAULT),
    );
    c.bench_function("substrate/medium_slot_sinr_100tx", |b| {
        let mut scratch = MediumScratch::new(topo.len());
        b.iter(|| {
            let mut deliveries = 0u64;
            medium_sinr.resolve_slot(&topo, &transmitters, &mut scratch, None, |_, _| {
                deliveries += 1
            });
            deliveries
        })
    });
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols");
    group.sample_size(20);
    let t60 = topo(60.0, 3);
    let t140 = topo(140.0, 3);

    group.bench_function("pbcam_rho60_p0.2", |b| {
        b.iter(|| {
            Executor::new(&t60)
                .gossip(GossipConfig::pb_cam(0.2))
                .run(black_box(5))
        })
    });
    group.bench_function("flooding_rho140", |b| {
        b.iter(|| {
            Executor::new(&t140)
                .gossip(GossipConfig::flooding_cam())
                .run(black_box(5))
        })
    });
    group.bench_function("async_gossip_rho60_p0.2", |b| {
        b.iter(|| run_async_gossip(&t60, &AsyncGossipConfig::paper(0.2), black_box(5)))
    });
    group.bench_function("counter_broadcast_rho60_c3", |b| {
        b.iter(|| run_counter_broadcast(&t60, &CounterConfig::paper(3), black_box(5)))
    });
    group.finish();

    let mut group = c.benchmark_group("protocols_heavy");
    group.sample_size(10);
    let t25 = Topology::build(&Deployment::disk(3, 1.0, 25.0).sample(3));
    group.bench_function("ack_flood_rho25_p3", |b| {
        b.iter(|| run_ack_flood(&t25, &AckFloodConfig::default(), black_box(5)))
    });
    group.bench_function("replication_8x_rho60", |b| {
        let rep = Replication::paper(Deployment::disk(5, 1.0, 60.0), GossipConfig::pb_cam(0.2), 5)
            .with_runs(8);
        b.iter(|| rep.run())
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_extensions");
    group.sample_size(10);
    let t60 = topo(60.0, 3);

    group.bench_function("tdma_schedule_build_rho60", |b| {
        b.iter(|| TdmaSchedule::build(&t60))
    });
    let schedule = TdmaSchedule::build(&t60);
    group.bench_function("tdma_flooding_rho60", |b| {
        b.iter(|| Executor::new(&t60).run_tdma(&schedule))
    });
    group.bench_function("distance_broadcast_rho60", |b| {
        b.iter(|| run_distance_broadcast(&t60, &DistanceConfig::paper(0.4), black_box(5)))
    });
    let t20small = Topology::build(&Deployment::disk(3, 1.0, 20.0).sample(3));
    group.bench_function("convergecast_rho20", |b| {
        b.iter(|| run_convergecast(&t20small, &ConvergecastConfig::default(), black_box(5)))
    });
    group.bench_function("probe_per_node_rho60", |b| {
        b.iter(|| probe_per_node_success(&t60, 3, 1, black_box(5)))
    });

    // Exact enumeration on a 6-node contention topology.
    let pts = vec![
        nss_model::geometry::Point2::new(0.0, 0.0),
        nss_model::geometry::Point2::new(0.9, 0.3),
        nss_model::geometry::Point2::new(0.9, -0.3),
        nss_model::geometry::Point2::new(1.6, 0.4),
        nss_model::geometry::Point2::new(1.6, -0.4),
        nss_model::geometry::Point2::new(2.4, 0.0),
    ];
    let small = Topology::build(&nss_model::deployment::DeployedNetwork::from_positions(
        pts, 1.0,
    ));
    group.bench_function("exact_enumeration_n6", |b| {
        b.iter(|| exact_expected_informed(&small, 3, black_box(0.6)))
    });
    group.finish();
}

/// Short measurement windows: the suite's value is the recorded relative
/// numbers, not publication-grade confidence intervals.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_substrate, bench_protocols, bench_extensions
}
criterion_main!(benches);
