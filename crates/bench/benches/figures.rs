//! One benchmark per paper figure: times the reduced-scale pipeline that
//! regenerates each figure's data (the full-scale versions live in the
//! `repro` binary of nss-experiments).
//!
//! Coverage: Figs. 4–7 (analytical sweeps + optimum extraction), Figs.
//! 8–11 (simulated sweeps + metric aggregation), Fig. 12 (success-rate
//! correlation).

use criterion::{criterion_group, criterion_main, Criterion};
use nss_analysis::flooding::success_rate_correlation;
use nss_analysis::optimize::{Objective, ProbabilitySweep};
use nss_analysis::ring_model::RingModelConfig;
use nss_analysis::sweep::DensitySweep;
use nss_model::deployment::Deployment;
use nss_sim::runner::Replication;
use nss_sim::slotted::GossipConfig;

fn mini_cfg() -> RingModelConfig {
    let mut cfg = RingModelConfig::paper(20.0, 0.0);
    cfg.quad_points = 24;
    cfg
}

fn mini_analysis_sweep() -> DensitySweep {
    let probs: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
    DensitySweep::run(mini_cfg(), &[20.0, 80.0], &probs, 0)
}

fn mini_sim(rho: f64, p: f64) -> Replication {
    Replication::paper(Deployment::disk(5, 1.0, rho), GossipConfig::pb_cam(p), 9).with_runs(3)
}

fn bench_analysis_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_analysis");
    group.sample_size(10);
    group.bench_function("fig04_reach_at_latency", |b| {
        b.iter(|| {
            let sweep = mini_analysis_sweep();
            sweep.optima(Objective::MaxReachAtLatency { phases: 5.0 })
        })
    });
    group.bench_function("fig05_latency_to_reach", |b| {
        b.iter(|| {
            let sweep = mini_analysis_sweep();
            sweep.optima(Objective::MinLatencyForReach { target: 0.7 })
        })
    });
    group.bench_function("fig06_broadcasts_to_reach", |b| {
        b.iter(|| {
            let sweep = mini_analysis_sweep();
            sweep.optima(Objective::MinBroadcastsForReach { target: 0.7 })
        })
    });
    group.bench_function("fig07_reach_under_budget", |b| {
        b.iter(|| {
            let sweep = mini_analysis_sweep();
            sweep.optima(Objective::MaxReachUnderBudget { budget: 35.0 })
        })
    });
    group.finish();
}

fn bench_sim_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_sim");
    group.sample_size(10);
    group.bench_function("fig08_sim_reach_at_latency", |b| {
        b.iter(|| {
            let traces = mini_sim(60.0, 0.2).run();
            traces.reachability_at_latency(5.0)
        })
    });
    group.bench_function("fig09_sim_latency_to_reach", |b| {
        b.iter(|| {
            let traces = mini_sim(60.0, 0.3).run();
            traces.latency_to_reach(0.5)
        })
    });
    group.bench_function("fig10_sim_broadcasts_to_reach", |b| {
        b.iter(|| {
            let traces = mini_sim(60.0, 0.3).run();
            traces.broadcasts_to_reach(0.5)
        })
    });
    group.bench_function("fig11_sim_reach_under_budget", |b| {
        b.iter(|| {
            let traces = mini_sim(60.0, 0.2).run();
            traces.reachability_under_budget(80.0)
        })
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_correlation");
    group.sample_size(10);
    group.bench_function("fig12_success_rate_correlation", |b| {
        let probs: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
        b.iter(|| success_rate_correlation(mini_cfg(), &[20.0, 80.0], &probs, 5.0))
    });
    // Sanity: make sure grids used in real figures are produced cheaply.
    group.bench_function("probability_grids", |b| {
        b.iter(|| {
            (
                ProbabilitySweep::paper_grid(),
                ProbabilitySweep::sim_grid(),
                DensitySweep::paper_rhos(),
            )
        })
    });
    group.finish();
}

fn bench_rendering(c: &mut Criterion) {
    // SVG rendering of a paper-scale figure (7 series × 100 points).
    let mut chart = nss_plot::Chart::new("fig", "p", "reachability");
    for rho in [20, 40, 60, 80, 100, 120, 140] {
        let pts: Vec<(f64, f64)> = (1..=100)
            .map(|i| {
                let p = f64::from(i) / 100.0;
                (p, (p * f64::from(rho)).sin().abs() * 0.8)
            })
            .collect();
        chart = chart.with_series(nss_plot::Series::new(format!("rho={rho}"), pts));
    }
    c.bench_function("figures_render/svg_7x100", |b| {
        b.iter(|| chart.render_svg())
    });
}

/// Short measurement windows: the suite's value is the recorded relative
/// numbers, not publication-grade confidence intervals.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_analysis_figures,
    bench_sim_figures,
    bench_fig12,
    bench_rendering
}
criterion_main!(benches);
