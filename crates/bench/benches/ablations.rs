//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! μ evaluation mode, quadrature resolution, sweep parallelism, spatial
//! indexing, and scratch reuse in the medium.

use criterion::{criterion_group, criterion_main, Criterion};
use nss_analysis::mu::MuMode;
use nss_analysis::ring_model::RingModel;
use nss_analysis::sweep::DensitySweep;
use nss_bench::{ring_cfg, topo};
use nss_model::comm::CommunicationModel;
use nss_model::geometry::Point2;
use nss_model::ids::NodeId;
use nss_sim::medium::{Medium, MediumScratch};
use std::hint::black_box;

fn bench_mu_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mu_mode");
    group.sample_size(20);
    for (name, mode) in [
        ("interpolate", MuMode::Interpolate),
        ("poisson", MuMode::Poisson),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = ring_cfg(60.0, 0.2);
            cfg.mu_mode = mode;
            let model = RingModel::new(cfg);
            b.iter(|| model.run())
        });
    }
    group.finish();
}

fn bench_quadrature_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_quad_points");
    group.sample_size(20);
    for q in [16usize, 64, 256] {
        group.bench_function(format!("q{q}"), |b| {
            let mut cfg = ring_cfg(60.0, 0.2);
            cfg.quad_points = q;
            let model = RingModel::new(cfg);
            b.iter(|| model.run())
        });
    }
    group.finish();
}

fn bench_sweep_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sweep_threads");
    group.sample_size(10);
    let probs: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
    let mut base = ring_cfg(20.0, 0.0);
    base.quad_points = 24;
    for threads in [1usize, 4] {
        group.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| DensitySweep::run(base, &[20.0, 60.0, 100.0], &probs, threads))
        });
    }
    group.finish();
}

fn bench_spatial_index(c: &mut Criterion) {
    // Neighbor enumeration with the grid index vs brute force over all
    // pairs — justifies the index for topology construction.
    let mut group = c.benchmark_group("ablation_spatial");
    group.sample_size(10);
    let t = topo(60.0, 5);
    let positions: Vec<Point2> = t.positions().to_vec();
    let r = t.comm_radius();
    group.bench_function("indexed_range_queries", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for p in &positions {
                t.for_each_within(p, r, |_| count += 1);
            }
            count
        })
    });
    group.bench_function("brute_force_all_pairs", |b| {
        b.iter(|| {
            let r2 = r * r;
            let mut count = 0usize;
            for a in &positions {
                for bpt in &positions {
                    if a.dist_sq(bpt) <= r2 {
                        count += 1;
                    }
                }
            }
            count
        })
    });
    group.finish();
}

fn bench_scratch_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scratch");
    group.sample_size(20);
    let t = topo(60.0, 5);
    let medium = Medium::new(CommunicationModel::CAM);
    let transmitters: Vec<u32> = (0..t.len() as u32).step_by(10).collect();
    group.bench_function("reused_scratch", |b| {
        let mut scratch = MediumScratch::new(t.len());
        b.iter(|| {
            let mut n = 0u64;
            medium.resolve_slot(&t, &transmitters, &mut scratch, None, |_: NodeId, _| n += 1);
            black_box(n)
        })
    });
    group.bench_function("fresh_scratch_each_slot", |b| {
        b.iter(|| {
            let mut scratch = MediumScratch::new(t.len());
            let mut n = 0u64;
            medium.resolve_slot(&t, &transmitters, &mut scratch, None, |_: NodeId, _| n += 1);
            black_box(n)
        })
    });
    group.finish();
}

/// Short measurement windows: the suite's value is the recorded relative
/// numbers, not publication-grade confidence intervals.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_mu_mode,
    bench_quadrature_resolution,
    bench_sweep_parallelism,
    bench_spatial_index,
    bench_scratch_reuse
}
criterion_main!(benches);
