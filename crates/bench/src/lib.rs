//! Shared fixtures for the nss benchmark suite, plus the [`check`]
//! regression-gate logic behind the `bench_check` binary.

#![forbid(unsafe_code)]

pub mod check;

use nss_analysis::ring_model::RingModelConfig;
use nss_model::deployment::Deployment;
use nss_model::topology::Topology;

/// A paper-configuration analytical setup (`P = 5`, `s = 3`).
pub fn ring_cfg(rho: f64, prob: f64) -> RingModelConfig {
    RingModelConfig::paper(rho, prob)
}

/// Builds a deployed unit-disk topology at the paper's scale.
pub fn topo(rho: f64, seed: u64) -> Topology {
    Topology::build(&Deployment::disk(5, 1.0, rho).sample(seed))
}
