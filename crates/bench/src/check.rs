//! Bench-artifact regression checking: the library behind `bench_check`.
//!
//! Two layers, both pure functions over parsed [`Json`] so they unit-test
//! without touching the filesystem:
//!
//! * [`sanity`] — internal-consistency invariants of a single
//!   `BENCH_sim.json` / `BENCH_sweep.json`: reachability floors, quantile
//!   ordering, and the counters-vs-trace identities (e.g.
//!   `counters["sim.broadcasts"] == broadcasts`, the regression gate for
//!   the warm-run double-count bug the snapshot/delta API fixed).
//! * [`diff`] — compares a freshly generated artifact against a committed
//!   baseline. Deterministic protocol fields (node counts, phases,
//!   broadcast totals — the sharded engine is bit-identical at any thread
//!   count, so these are machine-independent) must match **exactly**;
//!   wall-clock fields pass when
//!   `current <= baseline * time_factor + abs_slack_s`.
//!
//! Both return a list of human-readable violations; empty means pass.

use nss_obs::jsonval::Json;

/// Tolerances for machine-dependent (timing) fields.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Multiplicative headroom on every wall-clock field.
    pub time_factor: f64,
    /// Additive headroom in seconds (absorbs fixed costs on tiny smoke
    /// runs where a multiple of ~0 is meaningless).
    pub abs_slack_s: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        // CI runners vary widely; the gate is for order-of-magnitude
        // regressions (an accidentally quadratic pass, a lost parallel
        // path), not single-digit-percent noise.
        Tolerance {
            time_factor: 3.0,
            abs_slack_s: 0.5,
        }
    }
}

/// How [`diff`] compares one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Deterministic output: must be equal in both artifacts.
    Exact,
    /// Wall-clock measurement: bounded by the [`Tolerance`].
    Timing,
}

/// The artifact schema, detected from its discriminator key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `BENCH_sim.json` (million-node engine; `"bench"` key).
    Sim,
    /// `BENCH_sweep.json` (fig4 kernel sweep; `"sweep"` key).
    Sweep,
    /// `BENCH_serve.json` (query-service load test; `"serve"` key).
    Serve,
}

impl Kind {
    /// Detects the artifact kind.
    pub fn of(doc: &Json) -> Option<Kind> {
        if doc.get("bench").is_some() {
            Some(Kind::Sim)
        } else if doc.get("sweep").is_some() {
            Some(Kind::Sweep)
        } else if doc.get("serve").is_some() {
            Some(Kind::Serve)
        } else {
            None
        }
    }

    /// The checked fields for this schema, as `(path, policy)`; nested
    /// paths use `/` (field names themselves contain dots).
    fn fields(self) -> &'static [(&'static str, Policy)] {
        match self {
            Kind::Sim => &[
                ("p_factor", Policy::Exact),
                ("rho", Policy::Exact),
                ("seed", Policy::Exact),
                ("nodes", Policy::Exact),
                ("adjacency_bytes", Policy::Exact),
                ("degree_min", Policy::Exact),
                ("degree_mean", Policy::Exact),
                ("degree_max", Policy::Exact),
                ("phases", Policy::Exact),
                ("reachability", Policy::Exact),
                ("broadcasts", Policy::Exact),
                ("deliveries", Policy::Exact),
                ("collisions", Policy::Exact),
                ("sample_s", Policy::Timing),
                ("topology_build_s", Policy::Timing),
                ("sim_s", Policy::Timing),
                ("sim_warm_s", Policy::Timing),
            ],
            Kind::Sweep => &[
                ("cells", Policy::Exact),
                ("kernel_cache/kernels", Policy::Exact),
                ("kernel_cache/bytes", Policy::Exact),
                ("kernel_cache/hits", Policy::Exact),
                ("kernel_cache/misses", Policy::Exact),
                ("baseline_closure_seq_s", Policy::Timing),
                ("cached_tables_seq_s", Policy::Timing),
                ("cached_tables_parallel_s", Policy::Timing),
            ],
            // The query schedule is a pure function of (seed, concurrency,
            // queries, rhos, zipf_s), so traffic totals and cache-build
            // counts diff exactly; throughput and latency are wall-clock.
            Kind::Serve => &[
                ("queries", Policy::Exact),
                ("concurrency", Policy::Exact),
                ("rhos", Policy::Exact),
                ("zipf_s", Policy::Exact),
                ("seed", Policy::Exact),
                ("quad_points", Policy::Exact),
                ("errors", Policy::Exact),
                ("warm_builds", Policy::Exact),
                ("measured_builds", Policy::Exact),
                ("evictions", Policy::Exact),
                ("warmup_s", Policy::Timing),
                ("wall_s", Policy::Timing),
            ],
        }
    }
}

/// Looks up a `/`-separated path of object keys.
fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    path.split('/').try_fold(doc, |v, key| v.get(key))
}

fn num(doc: &Json, path: &str) -> Option<f64> {
    lookup(doc, path).and_then(Json::as_f64)
}

fn obs_enabled(doc: &Json) -> bool {
    doc.get("obs_enabled").and_then(Json::as_bool) == Some(true)
}

/// Fetches a required numeric field, reporting a violation when absent.
fn need(doc: &Json, path: &str, v: &mut Vec<String>) -> f64 {
    match num(doc, path) {
        Some(x) => x,
        None => {
            v.push(format!("missing numeric field `{path}`"));
            f64::NAN
        }
    }
}

/// Internal-consistency checks for one artifact; returns violations.
pub fn sanity(doc: &Json) -> Vec<String> {
    let mut v = Vec::new();
    let Some(kind) = Kind::of(doc) else {
        return vec!["unrecognized artifact: no \"bench\", \"sweep\", or \"serve\" key".into()];
    };
    match kind {
        Kind::Sim => {
            // NaN (a `need` miss) must fail the floor checks, hence the
            // explicit is_nan arms rather than a negated comparison.
            let reach = need(doc, "reachability", &mut v);
            if reach.is_nan() || reach <= 0.95 {
                v.push(format!("reachability {reach} below the 0.95 sanity floor"));
            }
            let phases = need(doc, "phases", &mut v);
            if phases.is_nan() || phases < 2.0 {
                v.push(format!("phases {phases} < 2: flooding cannot be one phase"));
            }
            if obs_enabled(doc) {
                // The measured-window counters must agree exactly with the
                // trace totals of the measured replication — the warm-run
                // double-count regression gate.
                for (counter, total) in [
                    ("sim.broadcasts", "broadcasts"),
                    ("sim.deliveries", "deliveries"),
                    ("sim.collisions", "collisions"),
                ] {
                    let c = doc
                        .get("counters")
                        .and_then(|cs| cs.get(counter))
                        .and_then(Json::as_f64);
                    let t = need(doc, total, &mut v);
                    match c {
                        Some(c) if c == t => {}
                        Some(c) => v.push(format!(
                            "counters[\"{counter}\"] = {c} != {total} = {t} \
                             (metrics window leaked another run?)"
                        )),
                        None if t > 0.0 => {
                            v.push(format!("counters[\"{counter}\"] missing with obs enabled"));
                        }
                        None => {}
                    }
                }
            }
        }
        Kind::Sweep => {
            if doc.get("bitwise_identical").and_then(Json::as_bool) != Some(true) {
                v.push("bitwise_identical is not true".into());
            }
            let speedup = need(doc, "speedup_seq", &mut v);
            if speedup.is_nan() || speedup < 3.0 {
                v.push(format!("speedup_seq {speedup} below the 3x floor"));
            }
            if obs_enabled(doc) {
                let cells = need(doc, "cells", &mut v);
                let counted = doc
                    .get("counters")
                    .and_then(|cs| cs.get("analysis.sweep.cells"))
                    .and_then(Json::as_f64);
                if counted.is_some_and(|c| c != cells) {
                    v.push(format!(
                        "counters[\"analysis.sweep.cells\"] = {counted:?} != cells = {cells}"
                    ));
                }
            }
        }
        Kind::Serve => {
            let errors = need(doc, "errors", &mut v);
            if errors != 0.0 {
                v.push(format!(
                    "errors {errors} != 0: bench traffic must all be 200s"
                ));
            }
            let builds = need(doc, "measured_builds", &mut v);
            if builds != 0.0 {
                v.push(format!(
                    "measured_builds {builds} != 0: warmup failed to cover the workload"
                ));
            }
            let hit_rate = need(doc, "hit_rate", &mut v);
            if hit_rate.is_nan() || !(0.0..=1.0).contains(&hit_rate) {
                v.push(format!("hit_rate {hit_rate} outside [0, 1]"));
            } else if hit_rate < 1.0 {
                v.push(format!(
                    "hit_rate {hit_rate} < 1: measured window is not all-warm"
                ));
            }
            // The serving SLO from the design doc — only binding on
            // full-scale artifacts; CI smoke runs are far too small (and
            // runners too slow) for absolute throughput floors.
            if doc.get("mode").and_then(Json::as_str) == Some("full") {
                let qps = need(doc, "qps", &mut v);
                if qps.is_nan() || qps < 50_000.0 {
                    v.push(format!("qps {qps} below the 50k warm-serving SLO"));
                }
                let p99 = need(doc, "latency_p99_ms", &mut v);
                if p99.is_nan() || p99 >= 5.0 {
                    v.push(format!("latency_p99_ms {p99} at or above the 5 ms SLO"));
                }
            }
            if obs_enabled(doc) {
                // Every measured query is one request and (all-warm) one
                // cache hit; the counters must agree with the client-side
                // tally exactly.
                let queries = need(doc, "queries", &mut v);
                for counter in ["serve.requests", "serve.cache.hit"] {
                    let c = doc
                        .get("counters")
                        .and_then(|cs| cs.get(counter))
                        .and_then(Json::as_f64);
                    match c {
                        Some(c) if c == queries => {}
                        Some(c) => v.push(format!(
                            "counters[\"{counter}\"] = {c} != queries = {queries}"
                        )),
                        None => {
                            v.push(format!("counters[\"{counter}\"] missing with obs enabled"));
                        }
                    }
                }
            }
        }
    }
    // Histogram quantiles, wherever present: estimates must be ordered and
    // clamped to the observed range.
    if let Some(hists) = doc.get("histograms").and_then(Json::as_obj) {
        for (name, h) in hists {
            let q = |k: &str| h.get(k).and_then(Json::as_f64);
            let seq = [q("min"), q("p50"), q("p90"), q("p99"), q("max")];
            let present: Vec<f64> = seq.iter().flatten().copied().collect();
            if present.windows(2).any(|w| w[0] > w[1] + 1e-9) {
                v.push(format!(
                    "histogram `{name}`: min/p50/p90/p99/max not ordered: {present:?}"
                ));
            }
        }
    }
    v
}

/// Diffs `current` against `baseline`; returns violations.
pub fn diff(current: &Json, baseline: &Json, tol: &Tolerance) -> Vec<String> {
    let mut v = Vec::new();
    let kind = match (Kind::of(current), Kind::of(baseline)) {
        (Some(a), Some(b)) if a == b => a,
        (a, b) => {
            return vec![format!(
                "artifact kind mismatch: current = {a:?}, baseline = {b:?}"
            )];
        }
    };
    for &(path, policy) in kind.fields() {
        let (Some(cur), Some(base)) = (num(current, path), num(baseline, path)) else {
            v.push(format!(
                "field `{path}` missing or non-numeric in current or baseline"
            ));
            continue;
        };
        match policy {
            Policy::Exact => {
                if cur != base {
                    v.push(format!("`{path}`: {cur} != baseline {base}"));
                }
            }
            Policy::Timing => {
                let bound = base * tol.time_factor + tol.abs_slack_s;
                if cur > bound {
                    v.push(format!(
                        "`{path}`: {cur}s exceeds {bound:.4}s \
                         (baseline {base}s x {} + {}s slack)",
                        tol.time_factor, tol.abs_slack_s
                    ));
                }
            }
        }
    }
    // Counters are deterministic outputs of the (bit-identical) engines:
    // every baseline counter must reappear unchanged. Extra counters in
    // `current` are fine — new instrumentation is not a regression.
    if obs_enabled(current) && obs_enabled(baseline) {
        if let Some(base_counters) = baseline.get("counters").and_then(Json::as_obj) {
            for (name, base_val) in base_counters {
                let cur_val = current
                    .get("counters")
                    .and_then(|cs| cs.get(name))
                    .and_then(Json::as_f64);
                let base_val = base_val.as_f64();
                if cur_val != base_val {
                    v.push(format!(
                        "counter `{name}`: {cur_val:?} != baseline {base_val:?}"
                    ));
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_doc(sim_s: f64, broadcasts: u64, counter_broadcasts: u64) -> Json {
        Json::parse(&format!(
            r#"{{
                "bench": "x", "p_factor": 6, "rho": 140.0, "seed": 2005,
                "nodes": 5040, "adjacency_bytes": 100, "degree_min": 1,
                "degree_mean": 2.5, "degree_max": 9, "phases": 10,
                "reachability": 0.999, "broadcasts": {broadcasts},
                "deliveries": 7, "collisions": 3,
                "sample_s": 0.01, "topology_build_s": 0.02,
                "sim_s": {sim_s}, "sim_warm_s": {sim_s},
                "obs_enabled": true,
                "counters": {{"sim.broadcasts": {counter_broadcasts},
                              "sim.deliveries": 7, "sim.collisions": 3}},
                "histograms": {{"sim.phase.seconds":
                  {{"count": 10, "min": 0.001, "p50": 0.002, "p90": 0.003,
                    "p99": 0.004, "max": 0.005}}}}
            }}"#
        ))
        .expect("valid test doc")
    }

    #[test]
    fn sanity_accepts_consistent_sim_artifact() {
        assert_eq!(sanity(&sim_doc(0.5, 42, 42)), Vec::<String>::new());
    }

    #[test]
    fn sanity_catches_double_counted_counters() {
        let violations = sanity(&sim_doc(0.5, 42, 84));
        assert!(
            violations.iter().any(|v| v.contains("sim.broadcasts")),
            "{violations:?}"
        );
    }

    #[test]
    fn sanity_catches_unordered_quantiles() {
        let mut doc = sim_doc(0.5, 42, 42);
        if let Json::Obj(fields) = &mut doc {
            let hists = fields
                .iter_mut()
                .find(|(k, _)| k == "histograms")
                .map(|(_, v)| v)
                .expect("histograms");
            *hists = Json::parse(
                r#"{"h": {"count": 2, "min": 0.5, "p50": 0.4, "p90": 0.6,
                          "p99": 0.7, "max": 1.0}}"#,
            )
            .expect("valid");
        }
        let violations = sanity(&doc);
        assert!(
            violations.iter().any(|v| v.contains("not ordered")),
            "{violations:?}"
        );
    }

    #[test]
    fn diff_passes_identical_artifacts() {
        let doc = sim_doc(0.5, 42, 42);
        assert_eq!(
            diff(&doc, &doc, &Tolerance::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn diff_flags_deterministic_drift_exactly() {
        let current = sim_doc(0.5, 43, 43);
        let baseline = sim_doc(0.5, 42, 42);
        let violations = diff(&current, &baseline, &Tolerance::default());
        assert!(
            violations.iter().any(|v| v.contains("`broadcasts`")),
            "{violations:?}"
        );
        // The drifted counter is reported too.
        assert!(
            violations.iter().any(|v| v.contains("sim.broadcasts")),
            "{violations:?}"
        );
    }

    #[test]
    fn diff_timing_respects_factor_and_slack() {
        let tol = Tolerance {
            time_factor: 2.0,
            abs_slack_s: 0.1,
        };
        let baseline = sim_doc(1.0, 42, 42);
        // 1.0 * 2.0 + 0.1 = 2.1: within.
        assert_eq!(
            diff(&sim_doc(2.1, 42, 42), &baseline, &tol),
            Vec::<String>::new()
        );
        // Above the bound: flagged, and only on timing fields.
        let violations = diff(&sim_doc(2.2, 42, 42), &baseline, &tol);
        assert!(
            violations.iter().any(|v| v.contains("`sim_s`")),
            "{violations:?}"
        );
        assert!(violations.iter().all(|v| !v.contains("broadcasts")));
    }

    #[test]
    fn diff_rejects_kind_mismatch_and_missing_fields() {
        let sweep = Json::parse(r#"{"sweep": "x", "cells": 700}"#).expect("valid");
        let sim = sim_doc(0.5, 42, 42);
        assert!(!diff(&sim, &sweep, &Tolerance::default()).is_empty());
        // Same kind but truncated baseline: every missing field reported.
        let violations = diff(&sweep, &sweep, &Tolerance::default());
        assert!(
            violations
                .iter()
                .any(|v| v.contains("kernel_cache/kernels")),
            "{violations:?}"
        );
    }

    fn serve_doc(mode: &str, qps: f64, p99_ms: f64, measured_builds: u64) -> Json {
        Json::parse(&format!(
            r#"{{
                "serve": "x", "mode": "{mode}", "queries": 1000,
                "concurrency": 4, "rhos": 8, "zipf_s": 1.1, "seed": 2005,
                "quad_points": 32, "errors": 0, "warm_builds": 8,
                "measured_builds": {measured_builds}, "coalesced": 0,
                "evictions": 0, "hit_rate": 1.0,
                "warmup_s": 0.05, "wall_s": 0.5, "qps": {qps},
                "latency_p50_ms": 0.05, "latency_p99_ms": {p99_ms},
                "obs_enabled": true,
                "counters": {{"serve.requests": 1000, "serve.cache.hit": 1000}}
            }}"#
        ))
        .expect("valid test doc")
    }

    #[test]
    fn serve_sanity_accepts_warm_artifact_and_enforces_full_slo() {
        assert_eq!(
            sanity(&serve_doc("smoke", 100.0, 20.0, 0)),
            Vec::<String>::new(),
            "smoke mode carries no absolute throughput floor"
        );
        assert_eq!(
            sanity(&serve_doc("full", 80_000.0, 1.5, 0)),
            Vec::<String>::new()
        );
        let slow = sanity(&serve_doc("full", 10_000.0, 9.0, 0));
        assert!(slow.iter().any(|v| v.contains("50k")), "{slow:?}");
        assert!(slow.iter().any(|v| v.contains("5 ms")), "{slow:?}");
    }

    #[test]
    fn serve_sanity_catches_cold_measured_window() {
        let violations = sanity(&serve_doc("smoke", 100.0, 1.0, 3));
        assert!(
            violations.iter().any(|v| v.contains("measured_builds")),
            "{violations:?}"
        );
    }

    #[test]
    fn serve_diff_pins_deterministic_traffic_fields() {
        let base = serve_doc("smoke", 100.0, 1.0, 0);
        assert_eq!(
            diff(&base, &base, &Tolerance::default()),
            Vec::<String>::new()
        );
        let mut drifted = serve_doc("smoke", 100.0, 1.0, 0);
        if let Json::Obj(fields) = &mut drifted {
            for (k, v) in fields.iter_mut() {
                if k == "warm_builds" {
                    *v = Json::parse("9").expect("valid");
                }
            }
        }
        let violations = diff(&drifted, &base, &Tolerance::default());
        assert!(
            violations.iter().any(|v| v.contains("`warm_builds`")),
            "{violations:?}"
        );
    }

    #[test]
    fn sweep_sanity_checks_identity_and_speedup() {
        let good = Json::parse(
            r#"{"sweep": "x", "cells": 700, "bitwise_identical": true,
                "speedup_seq": 5.0, "obs_enabled": false}"#,
        )
        .expect("valid");
        assert_eq!(sanity(&good), Vec::<String>::new());
        let bad = Json::parse(
            r#"{"sweep": "x", "cells": 700, "bitwise_identical": false,
                "speedup_seq": 1.2, "obs_enabled": false}"#,
        )
        .expect("valid");
        let violations = sanity(&bad);
        assert_eq!(violations.len(), 2, "{violations:?}");
    }
}
