//! Perf-regression gate over the committed bench artifacts.
//!
//! Always runs the internal-consistency checks ([`nss_bench::check::sanity`])
//! on the given artifact; with `--baseline` it additionally diffs against a
//! recorded artifact ([`nss_bench::check::diff`]): deterministic protocol
//! fields must match exactly, wall-clock fields are bounded by
//! `baseline * time-factor + abs-slack`.
//!
//! Usage:
//!   bench_check <current.json> [--baseline <recorded.json>]
//!               [--time-factor 3.0] [--abs-slack 0.5]
//!
//! Exits 0 when every check passes, 1 with one violation per line on
//! stderr otherwise (2 for usage/IO errors).

#![forbid(unsafe_code)]

use nss_bench::check::{diff, sanity, Tolerance};
use nss_obs::jsonval::Json;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut current: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut tol = Tolerance::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_check: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")),
            "--time-factor" => {
                tol.time_factor = value("--time-factor").parse().unwrap_or_else(|_| {
                    eprintln!("bench_check: --time-factor expects a number");
                    std::process::exit(2);
                });
            }
            "--abs-slack" => {
                tol.abs_slack_s = value("--abs-slack").parse().unwrap_or_else(|_| {
                    eprintln!("bench_check: --abs-slack expects seconds");
                    std::process::exit(2);
                });
            }
            other if !other.starts_with("--") && current.is_none() => {
                current = Some(other.to_string());
            }
            other => {
                eprintln!("bench_check: unexpected argument {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(current_path) = current else {
        eprintln!(
            "usage: bench_check <current.json> [--baseline <recorded.json>] \
             [--time-factor F] [--abs-slack S]"
        );
        std::process::exit(2);
    };

    let current = load(&current_path);
    let mut violations = sanity(&current);
    for v in &violations {
        eprintln!("bench_check: {current_path}: sanity: {v}");
    }
    if let Some(baseline_path) = baseline {
        let base = load(&baseline_path);
        let drifts = diff(&current, &base, &tol);
        for v in &drifts {
            eprintln!("bench_check: {current_path} vs {baseline_path}: {v}");
        }
        violations.extend(drifts);
    }
    if violations.is_empty() {
        eprintln!("bench_check: {current_path}: OK");
    } else {
        eprintln!("bench_check: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}
