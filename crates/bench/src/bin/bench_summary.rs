//! End-to-end wall-time comparison for the paper-scale Fig. 4 sweep
//! (7 densities × 100 probabilities, 64-point quadrature), written to
//! `BENCH_sweep.json`.
//!
//! The baseline is a faithful reimplementation of the seed's closure-driven
//! phase recursion (per-cell `RingGeometry`/`MuEvaluator` construction,
//! lens areas recomputed at every quadrature point through `a_area`
//! closures) built from the crate's public API. Before timing anything the
//! two paths are asserted **bitwise equal** on every cell of the grid, so
//! the recorded speedup compares implementations of the same function.
//!
//! Usage: `cargo run --release -p nss-bench --bin bench_summary [out.json]`

#![forbid(unsafe_code)]

use nss_analysis::mu::MuEvaluator;
use nss_analysis::mu_cs::MuCsEvaluator;
use nss_analysis::quadrature::simpson;
use nss_analysis::ring_geometry::RingGeometry;
use nss_analysis::ring_model::{RingModel, RingModelConfig};
use nss_analysis::sweep::DensitySweep;
use nss_analysis::tables::KernelCache;
use nss_model::comm::CollisionRule;
use nss_model::metrics::PhaseSeries;
use std::f64::consts::PI;
use std::sync::Arc;
use std::time::Instant;

/// The seed implementation of the Eq. 4 recursion, preserved verbatim as
/// the comparison baseline: geometry and μ evaluators are built per call,
/// and every integrand evaluation recomputes `A`/`B` lens areas.
fn legacy_phase_series(cfg: RingModelConfig) -> PhaseSeries {
    let geom = RingGeometry::new(cfg.p, cfg.r);
    let mu = MuEvaluator::new(cfg.s, cfg.mu_mode);
    let mu_cs = MuCsEvaluator::new(cfg.s, cfg.mu_mode);
    let p_rings = cfg.p as usize;
    let delta = cfg.delta();
    let ring_areas: Vec<f64> = (1..=cfg.p).map(|j| geom.ring_area(j)).collect();
    let capacity: Vec<f64> = ring_areas.iter().map(|&c| delta * c).collect();

    let mut first = vec![0.0; p_rings];
    first[0] = capacity[0];
    let mut cum: Vec<f64> = first.clone();
    let mut new_by_phase = vec![first];
    let mut broadcasts = vec![1.0f64];

    for _phase in 2..=cfg.max_phases {
        let prev = new_by_phase.last().expect("at least phase 1 exists");
        let prev_total: f64 = prev.iter().sum();
        let tx_total = cfg.prob * prev_total;
        broadcasts.push(tx_total);
        if tx_total <= 0.0 {
            new_by_phase.push(vec![0.0; p_rings]);
            break;
        }

        let mut new = vec![0.0; p_rings];
        for j in 1..=cfg.p {
            let ji = j as usize - 1;
            let remaining = (capacity[ji] - cum[ji]).max(0.0);
            let inner_radius = (f64::from(j) - 1.0) * cfg.r;

            let g_tx = |x: f64| -> f64 {
                let lo = j.saturating_sub(1).max(1);
                let hi = (j + 1).min(cfg.p);
                let mut g = 0.0;
                for k in lo..=hi {
                    let ki = k as usize - 1;
                    if prev[ki] > 0.0 {
                        g += prev[ki] * geom.a_area(j, x, k) / ring_areas[ki];
                    }
                }
                g * cfg.prob
            };

            if remaining > 1e-12 {
                let integrand = |x: f64| -> f64 {
                    let k_tx = g_tx(x);
                    let success = match cfg.collision {
                        CollisionRule::TransmissionRange => mu.eval(k_tx),
                        CollisionRule::CarrierSense { factor } => {
                            let lo = j.saturating_sub(2).max(1);
                            let hi = (j + 2).min(cfg.p);
                            let mut h = 0.0;
                            for k in lo..=hi {
                                let ki = k as usize - 1;
                                if prev[ki] > 0.0 {
                                    h += prev[ki] * geom.b_area(j, x, k, factor) / ring_areas[ki];
                                }
                            }
                            mu_cs.eval(k_tx, h * cfg.prob)
                        }
                    };
                    (inner_radius + x) * success
                };
                let integral = simpson(integrand, 0.0, cfg.r, cfg.quad_points);
                new[ji] = (2.0 * PI * integral * remaining / ring_areas[ji]).min(remaining);
            }
        }

        for (c, n) in cum.iter_mut().zip(&new) {
            *c += n;
        }
        let total_new: f64 = new.iter().sum();
        new_by_phase.push(new);
        if total_new < cfg.min_new {
            break;
        }
    }

    // Collapse to PhaseSeries exactly as RingProfile::phase_series does.
    let n = cfg.n_total();
    let mut informed = Vec::with_capacity(new_by_phase.len());
    let mut c = 1.0;
    for per_ring in &new_by_phase {
        c += per_ring.iter().sum::<f64>();
        informed.push(c.min(n));
    }
    let mut bc = Vec::with_capacity(broadcasts.len());
    let mut b = 0.0;
    for &x in &broadcasts {
        b += x;
        bc.push(b);
    }
    PhaseSeries {
        n_total: n,
        informed_cum: informed,
        broadcasts_cum: bc,
    }
}

fn assert_series_bitwise_eq(a: &PhaseSeries, b: &PhaseSeries, rho: f64, prob: f64) {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        a.n_total.to_bits(),
        b.n_total.to_bits(),
        "n @ ({rho},{prob})"
    );
    assert_eq!(
        bits(&a.informed_cum),
        bits(&b.informed_cum),
        "informed_cum @ (rho={rho}, p={prob})"
    );
    assert_eq!(
        bits(&a.broadcasts_cum),
        bits(&b.broadcasts_cum),
        "broadcasts_cum @ (rho={rho}, p={prob})"
    );
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let base = RingModelConfig::paper(20.0, 0.5);
    let rhos: Vec<f64> = (1..=7).map(|i| f64::from(i) * 20.0).collect();
    let probs: Vec<f64> = (1..=100).map(|i| f64::from(i) / 100.0).collect();
    let cells = rhos.len() * probs.len();
    eprintln!(
        "fig4-scale sweep: {} rho x {} p = {cells} cells, quad = 64",
        rhos.len(),
        probs.len()
    );

    // Correctness gate: the table-driven path must be bitwise identical to
    // the legacy closure path on every cell before we time anything.
    let kernel = KernelCache::global().get(&base);
    for &rho in &rhos {
        for &prob in &probs {
            let mut cfg = base;
            cfg.rho = rho;
            cfg.prob = prob;
            let legacy = legacy_phase_series(cfg);
            let cached = RingModel::with_kernel(cfg, Arc::clone(&kernel))
                .run()
                .phase_series();
            assert_series_bitwise_eq(&legacy, &cached, rho, prob);
        }
    }
    eprintln!("bitwise identity: OK on all {cells} cells");

    let time = |f: &dyn Fn()| -> f64 {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    };

    // Sequential apples-to-apples: per-cell construction + closures vs one
    // shared kernel + tables, same thread, same cells.
    let baseline_s = time(&|| {
        for &rho in &rhos {
            for &prob in &probs {
                let mut cfg = base;
                cfg.rho = rho;
                cfg.prob = prob;
                std::hint::black_box(legacy_phase_series(cfg));
            }
        }
    });
    let cached_s = time(&|| {
        let kernel = KernelCache::global().get(&base);
        for &rho in &rhos {
            for &prob in &probs {
                let mut cfg = base;
                cfg.rho = rho;
                cfg.prob = prob;
                std::hint::black_box(
                    RingModel::with_kernel(cfg, Arc::clone(&kernel))
                        .run()
                        .phase_series(),
                );
            }
        }
    });
    // The production entry point (parallel workers over the shared kernel).
    let parallel_s = time(&|| {
        std::hint::black_box(DensitySweep::run(base, &rhos, &probs, 0));
    });

    // Cache occupancy after the full run (satellite introspection API).
    let cache = KernelCache::global();
    let (cache_hits, cache_misses) = cache.stats();
    eprintln!(
        "kernel cache: {} kernel(s), {} bytes interned, {cache_hits} hits / {cache_misses} misses",
        cache.len(),
        cache.bytes()
    );

    // Counter and histogram snapshots (empty unless built with
    // --features obs). Histograms carry p50/p90/p99 interpolated from the
    // power-of-two buckets.
    let reg = nss_obs::registry::Registry::global();
    let counters_json = reg
        .counters_snapshot()
        .iter()
        .map(|(name, value)| format!("    \"{}\": {value}", nss_obs::export::json_escape(name)))
        .collect::<Vec<_>>()
        .join(",\n");
    let fmt_q = |q: Option<f64>| q.map_or("null".to_string(), |v| format!("{v:.6}"));
    let histograms_json = reg
        .histograms_snapshot()
        .iter()
        .map(|(name, h)| {
            let (p50, p90, p99) = h.percentiles();
            format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {:.6}, \"mean\": {:.6}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                nss_obs::export::json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                fmt_q(h.min),
                fmt_q(h.max),
                fmt_q(p50),
                fmt_q(p90),
                fmt_q(p99),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let speedup = baseline_s / cached_s;
    let json = format!(
        "{{\n  \"sweep\": \"fig4 (7 rho x 100 p, quad_points = 64)\",\n  \
           \"cells\": {cells},\n  \
           \"bitwise_identical\": true,\n  \
           \"baseline_closure_seq_s\": {baseline_s:.4},\n  \
           \"cached_tables_seq_s\": {cached_s:.4},\n  \
           \"cached_tables_parallel_s\": {parallel_s:.4},\n  \
           \"speedup_seq\": {speedup:.2},\n  \
           \"obs_enabled\": {obs},\n  \
           \"kernel_cache\": {{\n    \
             \"kernels\": {len},\n    \
             \"bytes\": {bytes},\n    \
             \"hits\": {cache_hits},\n    \
             \"misses\": {cache_misses}\n  }},\n  \
           \"counters\": {{\n{counters_json}\n  }},\n  \
           \"histograms\": {{\n{histograms_json}\n  }}\n}}\n",
        obs = nss_obs::enabled(),
        len = cache.len(),
        bytes = cache.bytes(),
    );
    std::fs::write(&out, &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!("wrote {out}");
    assert!(
        speedup >= 3.0,
        "table-driven kernel must be at least 3x the closure baseline, got {speedup:.2}x"
    );
}
