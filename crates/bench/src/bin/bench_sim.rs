//! Scale proof for the million-node simulation engine, written to
//! `BENCH_sim.json`: samples a ρ = 140 disk field (default P = 85, i.e.
//! N = ρ·P² = 1,011,500 nodes), builds the CSR unit-disk topology with the
//! sharded two-pass builder, and runs one full flooding broadcast
//! replication through the intra-replication sharded phase engine.
//!
//! Reported figures of merit: topology-build nodes/sec, peak adjacency
//! bytes, simulation phases/sec and node-phases/sec, plus the obs counter
//! and histogram snapshots (per-phase `sim.phase.seconds` timings when
//! built with `--features obs`).
//!
//! Usage:
//!   cargo run --release -p nss-bench --features obs --bin bench_sim \
//!     [out.json] [--p-factor 85] [--rho 140] [--threads 0] [--seed 2005] \
//!     [--metrics-addr 127.0.0.1:9187] [--trace-out trace.json]
//!
//! CI runs the same binary with `--p-factor 6` (N = 5,040) as a smoke test;
//! the JSON schema is identical at every scale. `--metrics-addr` serves
//! live `/metrics` scrapes for the duration of the run; `--trace-out`
//! dumps the flight recorder as Chrome `trace_event` JSON on exit (both
//! need `--features obs` to show non-empty data).
//!
//! The `counters`/`gauges`/`histograms` sections report the **measured
//! replication only**: the registry is snapshotted around it, so neither
//! the CSR build nor the warm-path repeat inflates the simulation metrics
//! (they used to be double-counted before the snapshot/delta API).

#![forbid(unsafe_code)]

use nss_model::deployment::Deployment;
use nss_model::topology::Topology;
use nss_sim::executor::Executor;
use nss_sim::slotted::GossipConfig;
use std::time::Instant;

struct Args {
    out: String,
    p_factor: u32,
    rho: f64,
    threads: usize,
    seed: u64,
    metrics_addr: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_sim.json".to_string(),
        p_factor: 85,
        rho: 140.0,
        threads: 0,
        seed: 2005,
        metrics_addr: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("bench_sim: {name} requires a value"))
        };
        match arg.as_str() {
            "--p-factor" => {
                args.p_factor = value("--p-factor").parse().expect("integer P factor");
            }
            "--rho" => args.rho = value("--rho").parse().expect("numeric rho"),
            "--threads" => {
                args.threads = value("--threads").parse().expect("integer thread count");
            }
            "--seed" => args.seed = value("--seed").parse().expect("integer seed"),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            other if !other.starts_with("--") => args.out = other.to_string(),
            other => panic!("bench_sim: unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let time = |f: &dyn Fn()| -> f64 {
        // nss-lint: allow(nondeterminism-taint) — harness stopwatch: timings feed the BENCH stderr/JSON lines, which the regression gate treats as noisy; the Exact-policy fields come from the trace
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    };

    // Optional live scrape endpoint for the duration of the run.
    let _metrics_server = args.metrics_addr.as_deref().map(|addr| {
        let server = nss_obs::serve::MetricsServer::start(addr)
            .unwrap_or_else(|e| panic!("bench_sim: cannot bind --metrics-addr {addr}: {e}"));
        if !nss_obs::enabled() {
            eprintln!("note: built without --features obs; /metrics will be empty");
        }
        eprintln!("serving /metrics on http://{}/metrics", server.addr());
        server
    });

    // 1. Deployment: the paper's disk field at (P, r = 1, ρ).
    eprintln!(
        "sampling disk field: P = {}, rho = {} (expected N = {})",
        args.p_factor,
        args.rho,
        args.rho * f64::from(args.p_factor).powi(2)
    );
    let deployment = Deployment::disk(args.p_factor, 1.0, args.rho);
    // nss-lint: allow(nondeterminism-taint) — stage stopwatch for the BENCH line; the sampled field depends on --seed alone
    let t0 = Instant::now();
    let net = deployment.sample(args.seed);
    let sample_s = t0.elapsed().as_secs_f64();
    let n = net.positions().len();
    eprintln!("sampled {n} nodes in {sample_s:.3}s");

    // 2. Topology: sharded two-pass counting CSR build.
    // nss-lint: allow(nondeterminism-taint) — stage stopwatch for the BENCH line; the CSR build is deterministic in the field
    let t0 = Instant::now();
    let topo = Topology::try_build_with_threads(&net, args.threads)
        .expect("field within u32 node-id capacity");
    let build_s = t0.elapsed().as_secs_f64();
    let adjacency_bytes = topo.adjacency_bytes();
    let (min_deg, mean_deg, max_deg) = topo.degree_stats();
    let build_nodes_per_sec = n as f64 / build_s.max(1e-9);
    eprintln!(
        "CSR build: {build_s:.3}s ({build_nodes_per_sec:.0} nodes/s), \
         {adjacency_bytes} adjacency bytes, degree {min_deg}/{mean_deg:.1}/{max_deg}"
    );

    // 3. One full flooding broadcast replication on the sharded engine.
    // Snapshot the registry around it: the reported metrics describe this
    // window only, not the build above or the warm repeat below.
    let reg = nss_obs::registry::Registry::global();
    let before_measured = reg.snapshot();
    let cfg = GossipConfig::flooding_cam();
    // nss-lint: allow(nondeterminism-taint) — stage stopwatch for the BENCH line; the trace digest is seed-determined
    let t0 = Instant::now();
    let trace = Executor::new(&topo)
        .gossip(cfg)
        .sharded(args.threads)
        .run(args.seed);
    let sim_s = t0.elapsed().as_secs_f64();
    let measured = reg.snapshot().delta_since(&before_measured);
    let phases = trace.phases();
    let phases_per_sec = phases as f64 / sim_s.max(1e-9);
    let node_phases_per_sec = (n * phases) as f64 / sim_s.max(1e-9);
    eprintln!(
        "flooding replication: {phases} phases in {sim_s:.3}s \
         ({phases_per_sec:.1} phases/s, {node_phases_per_sec:.0} node-phases/s), \
         reachability {:.4}",
        trace.final_reachability()
    );

    // Warm-path timing repeat: a second replication on the already-built
    // topology, so the sim figure excludes first-touch page faults.
    let warm_s = time(&|| {
        std::hint::black_box(
            Executor::new(&topo)
                .gossip(cfg)
                .sharded(args.threads)
                .run(args.seed.wrapping_add(1)),
        );
    });

    // Obs sections (all empty unless built with --features obs): the
    // measured-replication delta computed above.
    let counters_json = measured
        .counters
        .iter()
        .filter(|(_, value)| *value > 0)
        .map(|(name, value)| format!("    \"{}\": {value}", nss_obs::export::json_escape(name)))
        .collect::<Vec<_>>()
        .join(",\n");
    let gauges_json = measured
        .gauges
        .iter()
        .map(|(name, value)| format!("    \"{}\": {value}", nss_obs::export::json_escape(name)))
        .collect::<Vec<_>>()
        .join(",\n");
    let fmt_q = |q: Option<f64>| q.map_or("null".to_string(), |v| format!("{v:.6}"));
    let histograms_json = measured
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .map(|(name, h)| {
            let (p50, p90, p99) = h.percentiles();
            format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {:.6}, \"mean\": {:.6}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                nss_obs::export::json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                fmt_q(h.min),
                fmt_q(h.max),
                fmt_q(p50),
                fmt_q(p90),
                fmt_q(p99),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"million-node scale engine (disk field, flooding CAM)\",\n  \
           \"p_factor\": {p_factor},\n  \
           \"rho\": {rho},\n  \
           \"seed\": {seed},\n  \
           \"threads\": {threads},\n  \
           \"nodes\": {n},\n  \
           \"sample_s\": {sample_s:.4},\n  \
           \"topology_build_s\": {build_s:.4},\n  \
           \"build_nodes_per_sec\": {build_nodes_per_sec:.0},\n  \
           \"adjacency_bytes\": {adjacency_bytes},\n  \
           \"degree_min\": {min_deg},\n  \
           \"degree_mean\": {mean_deg:.2},\n  \
           \"degree_max\": {max_deg},\n  \
           \"sim_s\": {sim_s:.4},\n  \
           \"sim_warm_s\": {warm_s:.4},\n  \
           \"phases\": {phases},\n  \
           \"phases_per_sec\": {phases_per_sec:.2},\n  \
           \"node_phases_per_sec\": {node_phases_per_sec:.0},\n  \
           \"reachability\": {reach:.6},\n  \
           \"broadcasts\": {broadcasts},\n  \
           \"deliveries\": {deliveries},\n  \
           \"collisions\": {collisions},\n  \
           \"obs_enabled\": {obs},\n  \
           \"counters\": {{\n{counters_json}\n  }},\n  \
           \"gauges\": {{\n{gauges_json}\n  }},\n  \
           \"histograms\": {{\n{histograms_json}\n  }}\n}}\n",
        p_factor = args.p_factor,
        rho = args.rho,
        seed = args.seed,
        threads = args.threads,
        reach = trace.final_reachability(),
        broadcasts = trace.total_broadcasts(),
        deliveries = trace.total_deliveries(),
        collisions = trace.total_collisions(),
        obs = nss_obs::enabled(),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!("wrote {}", args.out);

    if let Some(path) = &args.trace_out {
        nss_obs::trace::write_chrome_trace(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("bench_sim: cannot write --trace-out {path}: {e}"));
        eprintln!("wrote {path} (chrome://tracing / Perfetto format)");
    }

    // Sanity floors independent of machine speed: the field is connected at
    // these densities, so a full flooding pass must inform nearly everyone.
    assert!(
        trace.final_reachability() > 0.95,
        "flooding reachability {:.4} below sanity floor on a rho={} field",
        trace.final_reachability(),
        args.rho
    );
    assert!(phases >= 2, "flooding must take multiple phases at P >= 2");
}
