//! Closed-loop load generator for the `nss-serve` query service, written
//! to `BENCH_serve.json`: starts a [`nss_serve::QueryServer`] in-process,
//! warms every density in the workload, then drives a deterministic
//! Zipf-over-ρ query stream from persistent keep-alive connections and
//! reports throughput, latency quantiles, and cache behavior.
//!
//! Figures of merit: warm-cache queries/sec, client-observed p50/p99
//! latency, and the hit rate over the measured window (which must be all
//! hits — the warmup pass builds every sweep first, and the artifact
//! records `measured_builds` so `bench_check` can pin it to zero).
//!
//! Usage:
//!   cargo run --release -p nss-bench --features obs --bin bench_serve \
//!     [out.json] [--queries 1000000] [--concurrency 8] [--rhos 64] \
//!     [--zipf-s 1.1] [--seed 2005] [--shards 16] [--cache-bytes 268435456] \
//!     [--quad-points 64] [--mode full|smoke] [--min-qps 0] [--max-p99-ms 0]
//!
//! The query schedule is a pure function of `(seed, concurrency, queries,
//! rhos, zipf-s)`: thread `t`'s `i`-th query hashes `(seed, t, i)` through
//! splitmix64 into the Zipf CDF over the ρ grid and cycles through the
//! four §4.1 metrics. Deterministic fields (`queries`, `errors`,
//! `warm_builds`, `measured_builds`) therefore diff exactly against the
//! committed baseline; wall-clock fields use the timing tolerance.
//!
//! CI runs the same binary at smoke scale (`--mode smoke` with a small
//! query count and 32-point quadrature); the JSON schema is identical.
//! `bench_check` additionally enforces the serving SLO — ≥ 50k qps warm
//! at p99 < 5 ms — on `--mode full` artifacts.

#![forbid(unsafe_code)]

use nss_obs::jsonval::Json;
use nss_serve::{QueryServer, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

struct Args {
    out: String,
    queries: u64,
    concurrency: usize,
    rhos: usize,
    zipf_s: f64,
    seed: u64,
    shards: usize,
    cache_bytes: usize,
    quad_points: usize,
    mode: String,
    min_qps: f64,
    max_p99_ms: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_serve.json".to_string(),
        queries: 1_000_000,
        concurrency: 8,
        rhos: 64,
        zipf_s: 1.1,
        seed: 2005,
        shards: 16,
        cache_bytes: 256 << 20,
        quad_points: 64,
        mode: "full".to_string(),
        min_qps: 0.0,
        max_p99_ms: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("bench_serve: {name} requires a value"))
        };
        match arg.as_str() {
            "--queries" => args.queries = value("--queries").parse().expect("integer count"),
            "--concurrency" => {
                args.concurrency = value("--concurrency").parse().expect("integer count");
            }
            "--rhos" => args.rhos = value("--rhos").parse().expect("integer count"),
            "--zipf-s" => args.zipf_s = value("--zipf-s").parse().expect("numeric exponent"),
            "--seed" => args.seed = value("--seed").parse().expect("integer seed"),
            "--shards" => args.shards = value("--shards").parse().expect("integer count"),
            "--cache-bytes" => {
                args.cache_bytes = value("--cache-bytes").parse().expect("integer bytes");
            }
            "--quad-points" => {
                args.quad_points = value("--quad-points").parse().expect("integer count");
            }
            "--mode" => args.mode = value("--mode"),
            "--min-qps" => args.min_qps = value("--min-qps").parse().expect("numeric floor"),
            "--max-p99-ms" => {
                args.max_p99_ms = value("--max-p99-ms").parse().expect("numeric ceiling");
            }
            other if !other.starts_with("--") => args.out = other.to_string(),
            other => panic!("bench_serve: unknown flag {other}"),
        }
    }
    assert!(args.concurrency >= 1 && args.rhos >= 1 && args.queries >= 1);
    assert!(
        matches!(args.mode.as_str(), "full" | "smoke"),
        "--mode must be full or smoke"
    );
    args
}

/// SplitMix64: a tiny stateless PRNG so the query schedule is a pure
/// function of (seed, thread, index).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The ρ workload grid: `rhos` densities spanning the paper's [20, 146]
/// evaluation range.
fn rho_grid(rhos: usize) -> Vec<f64> {
    (0..rhos).map(|k| 20.0 + 2.0 * k as f64).collect()
}

/// Zipf(s) cumulative weights over ranks 1..=n, normalized to [0, 1].
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let mut acc = 0.0;
    for w in &mut cdf {
        acc += *w;
        *w = acc;
    }
    for w in &mut cdf {
        *w /= acc;
    }
    cdf
}

/// One keep-alive client connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
            .expect("connect to in-process server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            stream,
            buf: Vec::with_capacity(4096),
        }
    }

    /// Issues one GET on the keep-alive connection; returns the status
    /// code. Reads exactly one response using `Content-Length`.
    fn get(&mut self, path: &str) -> u16 {
        self.stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
            .expect("request write");
        // Read the head.
        self.buf.clear();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("response read");
            assert!(n > 0, "server closed keep-alive connection mid-bench");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("Content-Length header");
        // Drain the body.
        let mut have = self.buf.len() - (head_end + 4);
        while have < content_length {
            let n = self.stream.read(&mut chunk).expect("body read");
            assert!(n > 0, "server closed mid-body");
            have += n;
        }
        status
    }
}

/// The deterministic query path for (thread, index): Zipf-sampled ρ and a
/// cycling §4.1 metric.
fn query_path(seed: u64, thread: usize, index: u64, rhos: &[f64], cdf: &[f64]) -> String {
    let h = splitmix64(seed ^ ((thread as u64) << 40) ^ index);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let rank = cdf.partition_point(|&c| c < u).min(rhos.len() - 1);
    let rho = rhos[rank];
    match h % 4 {
        0 => format!("/v1/optimal-p?rho={rho}&metric=reach-at-latency&constraint=5"),
        1 => format!("/v1/optimal-p?rho={rho}&metric=latency-for-reach&constraint=0.6"),
        2 => format!("/v1/optimal-p?rho={rho}&metric=broadcasts-for-reach&constraint=0.6"),
        _ => format!("/v1/optimal-p?rho={rho}&metric=reach-under-budget&constraint=35"),
    }
}

fn quantile(sorted: &[u32], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    f64::from(sorted[idx])
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_serve: {} queries, {} clients, {} rhos (zipf s={}), \
         {} shards, {} cache bytes, quad {}",
        args.queries,
        args.concurrency,
        args.rhos,
        args.zipf_s,
        args.shards,
        args.cache_bytes,
        args.quad_points
    );

    let server = QueryServer::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        // Keep-alive ties one worker to each client connection, plus one
        // spare for ad-hoc scrapes during the run.
        workers: args.concurrency + 1,
        shards: args.shards,
        cache_bytes: args.cache_bytes,
        quad_points: args.quad_points,
    })
    .expect("start in-process query server");
    let addr = server.addr();
    eprintln!("serving on http://{addr} (in-process)");

    let rhos = rho_grid(args.rhos);
    let cdf = zipf_cdf(args.rhos, args.zipf_s);

    // Warmup: build every sweep once, sequentially, so the measured window
    // is pure warm-cache traffic.
    let t0 = Instant::now();
    let mut warm_client = Client::connect(addr);
    for rho in &rhos {
        let status = warm_client.get(&format!(
            "/v1/optimal-p?rho={rho}&metric=reach-at-latency&constraint=5"
        ));
        assert_eq!(status, 200, "warmup query for rho={rho} failed");
    }
    drop(warm_client);
    let warmup_s = t0.elapsed().as_secs_f64();
    let warm_stats = server.service().cache_stats();
    let warm_builds = warm_stats.misses;
    eprintln!(
        "warmup: {} sweeps built in {warmup_s:.3}s ({} resident bytes)",
        warm_builds, warm_stats.resident_bytes
    );

    // Measured window: closed-loop clients over keep-alive connections.
    // Snapshot the registry and the cache tallies around it so the
    // reported metrics exclude warmup.
    let reg = nss_obs::registry::Registry::global();
    let before = reg.snapshot();
    let before_cache = server.service().cache_stats();
    let per_thread = args.queries / args.concurrency as u64;
    let remainder = args.queries % args.concurrency as u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.concurrency)
        .map(|t| {
            let rhos = rhos.clone();
            let cdf = cdf.clone();
            let seed = args.seed;
            let count = per_thread + u64::from((t as u64) < remainder);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut latencies_ns: Vec<u32> = Vec::with_capacity(count as usize);
                let mut errors = 0u64;
                for i in 0..count {
                    let path = query_path(seed, t, i, &rhos, &cdf);
                    let q0 = Instant::now();
                    let status = client.get(&path);
                    let ns = q0.elapsed().as_nanos().min(u128::from(u32::MAX)) as u32;
                    latencies_ns.push(ns);
                    if status != 200 {
                        errors += 1;
                    }
                }
                (latencies_ns, errors)
            })
        })
        .collect();
    let mut latencies_ns: Vec<u32> = Vec::with_capacity(args.queries as usize);
    let mut errors = 0u64;
    for h in handles {
        let (l, e) = h.join().expect("client thread");
        latencies_ns.extend_from_slice(&l);
        errors += e;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let measured = reg.snapshot().delta_since(&before);
    let after_cache = server.service().cache_stats();

    latencies_ns.sort_unstable();
    let queries_done = latencies_ns.len() as u64;
    let qps = queries_done as f64 / wall_s.max(1e-9);
    let p50_ms = quantile(&latencies_ns, 0.50) / 1e6;
    let p90_ms = quantile(&latencies_ns, 0.90) / 1e6;
    let p99_ms = quantile(&latencies_ns, 0.99) / 1e6;
    let max_ms = quantile(&latencies_ns, 1.0) / 1e6;
    let hits = after_cache.hits - before_cache.hits;
    let misses = after_cache.misses - before_cache.misses;
    let coalesced = after_cache.coalesced - before_cache.coalesced;
    let evictions = after_cache.evictions - before_cache.evictions;
    let lookups = hits + misses + coalesced;
    let hit_rate = hits as f64 / lookups.max(1) as f64;
    eprintln!(
        "measured: {queries_done} queries in {wall_s:.3}s = {qps:.0} qps, \
         p50 {p50_ms:.3}ms p99 {p99_ms:.3}ms, hit rate {hit_rate:.4}"
    );

    // Obs sections (empty unless built with --features obs): the measured
    // window's registry delta, same shape as BENCH_sim.json.
    let counters_json = measured
        .counters
        .iter()
        .filter(|(_, value)| *value > 0)
        .map(|(name, value)| format!("    \"{}\": {value}", nss_obs::export::json_escape(name)))
        .collect::<Vec<_>>()
        .join(",\n");
    let gauges_json = measured
        .gauges
        .iter()
        .map(|(name, value)| format!("    \"{}\": {value}", nss_obs::export::json_escape(name)))
        .collect::<Vec<_>>()
        .join(",\n");
    let fmt_q = |q: Option<f64>| q.map_or("null".to_string(), |v| format!("{v:.6}"));
    let histograms_json = measured
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .map(|(name, h)| {
            let (p50, p90, p99) = h.percentiles();
            format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {:.6}, \"mean\": {:.6}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                nss_obs::export::json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                fmt_q(h.min),
                fmt_q(h.max),
                fmt_q(p50),
                fmt_q(p90),
                fmt_q(p99),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"serve\": \"closed-loop optimal-p load (zipf over rho, keep-alive)\",\n  \
           \"mode\": \"{mode}\",\n  \
           \"queries\": {queries_done},\n  \
           \"concurrency\": {concurrency},\n  \
           \"rhos\": {rhos_n},\n  \
           \"zipf_s\": {zipf_s},\n  \
           \"seed\": {seed},\n  \
           \"shards\": {shards},\n  \
           \"cache_bytes\": {cache_bytes},\n  \
           \"quad_points\": {quad_points},\n  \
           \"errors\": {errors},\n  \
           \"warm_builds\": {warm_builds},\n  \
           \"measured_builds\": {misses},\n  \
           \"coalesced\": {coalesced},\n  \
           \"evictions\": {evictions},\n  \
           \"hit_rate\": {hit_rate:.6},\n  \
           \"resident_bytes\": {resident_bytes},\n  \
           \"warmup_s\": {warmup_s:.4},\n  \
           \"wall_s\": {wall_s:.4},\n  \
           \"qps\": {qps:.0},\n  \
           \"latency_p50_ms\": {p50_ms:.4},\n  \
           \"latency_p90_ms\": {p90_ms:.4},\n  \
           \"latency_p99_ms\": {p99_ms:.4},\n  \
           \"latency_max_ms\": {max_ms:.4},\n  \
           \"obs_enabled\": {obs},\n  \
           \"counters\": {{\n{counters_json}\n  }},\n  \
           \"gauges\": {{\n{gauges_json}\n  }},\n  \
           \"histograms\": {{\n{histograms_json}\n  }}\n}}\n",
        mode = args.mode,
        concurrency = args.concurrency,
        rhos_n = args.rhos,
        zipf_s = args.zipf_s,
        seed = args.seed,
        shards = args.shards,
        cache_bytes = args.cache_bytes,
        quad_points = args.quad_points,
        resident_bytes = after_cache.resident_bytes,
        obs = nss_obs::enabled(),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!("wrote {}", args.out);
    // The artifact must round-trip through the strict parser bench_check
    // uses.
    Json::parse(&json).expect("artifact is valid JSON");

    // Sanity floors independent of machine speed.
    assert_eq!(errors, 0, "bench traffic must be error-free");
    assert_eq!(queries_done, args.queries, "every scheduled query must run");
    assert_eq!(
        misses, 0,
        "measured window must be pure warm-cache traffic (got {misses} builds)"
    );
    assert_eq!(warm_builds as usize, args.rhos, "one build per density");
    if args.min_qps > 0.0 {
        assert!(qps >= args.min_qps, "qps {qps:.0} below --min-qps floor");
    }
    if args.max_p99_ms > 0.0 {
        assert!(
            p99_ms <= args.max_p99_ms,
            "p99 {p99_ms:.3}ms above --max-p99-ms ceiling"
        );
    }
}
