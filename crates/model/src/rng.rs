//! Deterministic seed derivation for reproducible experiments.
//!
//! Every randomized component (deployment sampling, protocol coin flips,
//! slot jitter) receives an independent RNG derived from a single
//! experiment-level master seed via a SplitMix64 chain. Two goals:
//!
//! 1. **Replayability** — the same master seed reproduces the same network
//!    and the same protocol execution, regardless of thread scheduling.
//! 2. **Stream independence** — replication `i` and replication `j` share
//!    no RNG state, so replications can run on different threads without
//!    order effects.

/// SplitMix64 step. Small, fast, and passes BigCrush when used as a stream
/// generator; here it only whitens seed material.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream label.
///
/// The label partitions seed space by purpose (e.g. deployment vs protocol)
/// and by replication index, so adding a new consumer never perturbs the
/// streams of existing ones.
pub fn derive_seed(master: u64, label: &str, index: u64) -> u64 {
    // FNV-1a over the label, then two SplitMix64 whitening steps mixing in
    // the master seed and the index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut s = master ^ h.rotate_left(17);
    let _ = splitmix64(&mut s);
    s ^= index.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut s)
}

/// Named RNG streams used by this workspace. Using an enum rather than raw
/// strings prevents typo-induced stream collisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Node placement sampling.
    Deployment,
    /// Protocol-level coin flips (broadcast probability).
    Protocol,
    /// Slot-jitter selection.
    Jitter,
    /// Fault injection (link loss, node death) — see `nss_model::faults`.
    Faults,
    /// Density-probe rounds of the adaptive controller (`nss-sim`'s
    /// `probe` module).
    Probe,
    /// Anything else (tests, ad-hoc tools).
    Misc,
}

impl Stream {
    /// Stable string name of the stream (the seed-derivation input; also
    /// used by instrumentation to report which streams a run consumed).
    pub fn label(self) -> &'static str {
        match self {
            Stream::Deployment => "deployment",
            Stream::Protocol => "protocol",
            Stream::Jitter => "jitter",
            Stream::Faults => "faults",
            Stream::Probe => "probe",
            Stream::Misc => "misc",
        }
    }
}

/// Factory handing out independent child seeds for one experiment.
#[derive(Debug, Clone, Copy)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Creates a factory for the given master seed.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// Seed for `stream` in replication `replication`.
    pub fn seed(&self, stream: Stream, replication: u64) -> u64 {
        derive_seed(self.master, stream.label(), replication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, "a", 0), derive_seed(42, "a", 0));
        let f = SeedFactory::new(7);
        assert_eq!(f.seed(Stream::Protocol, 3), f.seed(Stream::Protocol, 3));
    }

    #[test]
    fn streams_distinct() {
        let f = SeedFactory::new(7);
        let a = f.seed(Stream::Deployment, 0);
        let b = f.seed(Stream::Protocol, 0);
        let c = f.seed(Stream::Jitter, 0);
        let d = f.seed(Stream::Faults, 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, d);
        assert_ne!(c, d);
    }

    #[test]
    fn replications_distinct() {
        let f = SeedFactory::new(7);
        let seeds: Vec<u64> = (0..100).map(|i| f.seed(Stream::Protocol, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collision in 100 derived seeds");
    }

    #[test]
    fn masters_distinct() {
        let a = SeedFactory::new(1).seed(Stream::Misc, 0);
        let b = SeedFactory::new(2).seed(Stream::Misc, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_known_sequence_is_stable() {
        // Pin the whitening function: changing it would silently invalidate
        // every recorded experiment seed.
        let mut s = 0u64;
        let first = splitmix64(&mut s);
        let second = splitmix64(&mut s);
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
        assert_eq!(second, 0x6E78_9E6A_A1B9_65F4);
    }
}
