//! Node identifiers.
//!
//! The paper (Assumption 3) requires only *locally unique* IDs; the
//! implementation uses globally unique dense indices because they double as
//! vector offsets, which is strictly stronger and loses no generality.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a node within one deployed network.
///
/// `NodeId(0)` is, by convention of [`crate::deployment`], the broadcast
/// source placed at the center of the field.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The broadcast source (center of the field) in every deployment
    /// produced by this workspace.
    pub const SOURCE: NodeId = NodeId(0);

    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        // nss-lint: allow(panic-hygiene) — `From` cannot be fallible; deployments cap node counts far below u32::MAX, making overflow a caller bug
        NodeId(u32::try_from(v).expect("node index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let a = NodeId::from(3usize);
        assert_eq!(a.index(), 3);
        assert_eq!(a, NodeId(3));
        assert!(NodeId(2) < NodeId(10));
        assert_eq!(NodeId::SOURCE.index(), 0);
        assert_eq!(format!("{}", NodeId(7)), "n7");
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_index_panics() {
        let _ = NodeId::from(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
