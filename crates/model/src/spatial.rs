//! Uniform-grid spatial index for unit-disk range queries.
//!
//! Building the unit-disk graph naively is O(N²); with a grid of cell size
//! `r` each query touches only the 3×3 cell block around the query point, so
//! construction is O(N·ρ) — essential at the paper's densest setting
//! (ρ = 140, N = 3500) and more so for the scaled-up extension sweeps.

use crate::error::ConfigError;
use crate::geometry::Point2;
use crate::ids::NodeId;

/// A grid-bucketed index over a fixed set of points.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    /// CSR-style layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<u32>,
}

impl GridIndex {
    /// Builds an index with the given cell size (normally the communication
    /// radius). Points may be empty; queries then return nothing. A cell
    /// size that is not strictly positive and finite is a configuration
    /// error, not a panic.
    pub fn build(points: &[Point2], cell: f64) -> Result<Self, ConfigError> {
        if !(cell > 0.0 && cell.is_finite()) {
            return Err(ConfigError::NotPositive {
                field: "grid cell size",
                value: cell,
            });
        }
        if points.is_empty() {
            return Ok(GridIndex {
                cell,
                min_x: 0.0,
                min_y: 0.0,
                nx: 1,
                ny: 1,
                starts: vec![0, 0],
                entries: Vec::new(),
            });
        }
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let nx = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let ncells = nx * ny;

        // Counting sort into cells.
        let cell_of = |p: &Point2| -> usize {
            let cx = (((p.x - min_x) / cell).floor() as usize).min(nx - 1);
            let cy = (((p.y - min_y) / cell).floor() as usize).min(ny - 1);
            cy * nx + cx
        };
        let mut counts = vec![0u32; ncells + 1];
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut entries = vec![0u32; points.len()];
        let mut cursor = starts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        Ok(GridIndex {
            cell,
            min_x,
            min_y,
            nx,
            ny,
            starts,
            entries,
        })
    }

    /// Calls `f(id)` for every indexed point within distance `radius` of
    /// `center` (inclusive), given the original point slice.
    ///
    /// Radii up to the cell size scan a 3×3 block; larger radii (e.g. the
    /// carrier-sense range `2r` over an index built with cell `r`) scan a
    /// proportionally larger block.
    pub fn for_each_within(
        &self,
        points: &[Point2],
        center: &Point2,
        radius: f64,
        mut f: impl FnMut(NodeId),
    ) {
        if self.entries.is_empty() {
            return;
        }
        let reach = (radius / self.cell).ceil().max(1.0) as i64;
        let r2 = radius * radius;
        let cx =
            (((center.x - self.min_x) / self.cell).floor() as i64).clamp(0, self.nx as i64 - 1);
        let cy =
            (((center.y - self.min_y) / self.cell).floor() as i64).clamp(0, self.ny as i64 - 1);
        for dy in -reach..=reach {
            let y = cy + dy;
            if y < 0 || y >= self.ny as i64 {
                continue;
            }
            for dx in -reach..=reach {
                let x = cx + dx;
                if x < 0 || x >= self.nx as i64 {
                    continue;
                }
                let c = (y as usize) * self.nx + x as usize;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &e in &self.entries[lo..hi] {
                    if points[e as usize].dist_sq(center) <= r2 {
                        f(NodeId(e));
                    }
                }
            }
        }
    }

    /// Collects the ids within `radius` of `center` into a vector.
    pub fn within(&self, points: &[Point2], center: &Point2, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(points, center, radius, |id| out.push(id));
        out
    }

    /// Number of grid cells (diagnostics).
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute_force(points: &[Point2], c: &Point2, r: f64) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist_sq(c) <= r * r)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(&[], 1.0).unwrap();
        assert!(idx.within(&[], &Point2::ORIGIN, 1.0).is_empty());
    }

    #[test]
    fn single_point() {
        let pts = vec![Point2::new(0.5, 0.5)];
        let idx = GridIndex::build(&pts, 1.0).unwrap();
        assert_eq!(idx.within(&pts, &Point2::ORIGIN, 1.0), vec![NodeId(0)]);
        assert!(idx.within(&pts, &Point2::new(3.0, 3.0), 1.0).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = SmallRng::seed_from_u64(21);
        let pts: Vec<Point2> = (0..500)
            .map(|_| Point2::new(rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0)))
            .collect();
        let idx = GridIndex::build(&pts, 1.0).unwrap();
        for _ in 0..50 {
            let c = Point2::new(rng.random_range(-6.0..6.0), rng.random_range(-6.0..6.0));
            let mut got = idx.within(&pts, &c, 1.0);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, &c, 1.0));
        }
    }

    #[test]
    fn boundary_point_included() {
        let pts = vec![Point2::new(1.0, 0.0)];
        let idx = GridIndex::build(&pts, 1.0).unwrap();
        assert_eq!(idx.within(&pts, &Point2::ORIGIN, 1.0).len(), 1);
    }

    #[test]
    fn smaller_query_radius_ok() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts: Vec<Point2> = (0..200)
            .map(|_| Point2::new(rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)))
            .collect();
        let idx = GridIndex::build(&pts, 1.0).unwrap();
        for _ in 0..20 {
            let c = Point2::new(rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0));
            let mut got = idx.within(&pts, &c, 0.5);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, &c, 0.5));
        }
    }

    #[test]
    fn large_radius_queries_scan_wider_block() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<Point2> = (0..400)
            .map(|_| Point2::new(rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0)))
            .collect();
        let idx = GridIndex::build(&pts, 1.0).unwrap();
        for radius in [2.0, 3.5] {
            for _ in 0..20 {
                let c = Point2::new(rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0));
                let mut got = idx.within(&pts, &c, radius);
                got.sort_unstable();
                assert_eq!(got, brute_force(&pts, &c, radius), "radius {radius}");
            }
        }
    }

    #[test]
    fn nonpositive_cell_is_config_error() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = GridIndex::build(&[], bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    ConfigError::NotPositive {
                        field: "grid cell size",
                        ..
                    }
                ),
                "cell {bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn collinear_degenerate_extent() {
        // All points on a horizontal line: grid is 1 cell tall.
        let pts: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64, 0.0)).collect();
        let idx = GridIndex::build(&pts, 1.0).unwrap();
        let got = idx.within(&pts, &Point2::new(5.0, 0.0), 1.0);
        assert_eq!(got.len(), 3); // nodes 4,5,6
    }
}
