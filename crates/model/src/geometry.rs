//! Planar geometry primitives used throughout the network model and the
//! analytical framework.
//!
//! The central nontrivial function is [`lens_area`], the area of the
//! intersection of two circles, which is Eq. (1) of the paper. The paper
//! parameterizes it as `f(D1, D2, x)` where `x` is the (signed) distance from
//! the center of the second circle to the *border* of the first; we provide
//! both that parameterization ([`lens_area_border`]) and the conventional
//! center-distance one ([`lens_area`]).

use serde::{Deserialize, Serialize};

/// A point (or vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Origin of the coordinate system (where the paper places the source).
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from Cartesian coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Creates a point from polar coordinates `(radius, angle)`.
    #[inline]
    pub fn from_polar(radius: f64, angle: f64) -> Self {
        Point2 {
            x: radius * angle.cos(),
            y: radius * angle.sin(),
        }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in hot loops such
    /// as unit-disk neighborhood tests).
    #[inline]
    pub fn dist_sq(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Distance from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// Area of a disk of radius `r`. Returns 0 for non-positive radii so that
/// degenerate rings (e.g. the nonexistent ring `R_0`) fall out naturally.
#[inline]
pub fn disk_area(r: f64) -> f64 {
    if r <= 0.0 {
        0.0
    } else {
        std::f64::consts::PI * r * r
    }
}

/// Area of the annulus between radii `inner` and `outer` (`C_j` in the
/// paper when `inner = (j-1)·r`, `outer = j·r`).
#[inline]
pub fn annulus_area(inner: f64, outer: f64) -> f64 {
    (disk_area(outer) - disk_area(inner)).max(0.0)
}

/// Area of the intersection ("lens") of two circles with radii `r1`, `r2`
/// whose centers are `d ≥ 0` apart.
///
/// Handles all degenerate configurations:
/// * either radius non-positive → 0,
/// * disjoint circles (`d ≥ r1 + r2`) → 0,
/// * containment (`d ≤ |r1 − r2|`) → area of the smaller disk.
///
/// The formula is the standard circular-segment decomposition, algebraically
/// identical to the paper's Eq. (1)
/// `f = α·D1² − D1²·sinα·cosα + β·D2² − D2²·sinβ·cosβ`.
pub fn lens_area(r1: f64, r2: f64, d: f64) -> f64 {
    debug_assert!(d >= 0.0, "center distance must be non-negative, got {d}");
    if r1 <= 0.0 || r2 <= 0.0 {
        return 0.0;
    }
    if d >= r1 + r2 {
        return 0.0;
    }
    let rmin = r1.min(r2);
    if d <= (r1 - r2).abs() {
        return disk_area(rmin);
    }
    // Half-angles subtended by the chord at each center. Clamp the cosine
    // arguments: floating-point noise near tangency can push them a hair
    // outside [-1, 1].
    let cos_a = ((r1 * r1 + d * d - r2 * r2) / (2.0 * r1 * d)).clamp(-1.0, 1.0);
    let cos_b = ((r2 * r2 + d * d - r1 * r1) / (2.0 * r2 * d)).clamp(-1.0, 1.0);
    let alpha = cos_a.acos();
    let beta = cos_b.acos();
    let seg1 = r1 * r1 * (alpha - alpha.sin() * alpha.cos());
    let seg2 = r2 * r2 * (beta - beta.sin() * beta.cos());
    (seg1 + seg2).max(0.0)
}

/// The paper's `f(D1, D2, x)` (Eq. 1): area of intersection of circle `L1`
/// (radius `d1`) and circle `L2` (radius `d2`) where `x` is the distance from
/// the center of `L2` to the *border* of `L1` — positive outside `L1`,
/// negative inside. The center distance is therefore `d1 + x`.
#[inline]
pub fn lens_area_border(d1: f64, d2: f64, x: f64) -> f64 {
    let d = (d1 + x).max(0.0);
    lens_area(d1, d2, d)
}

/// Returns true if `p` lies strictly inside the disk of radius `r` centered
/// at `c` (boundary counts as inside; the unit-disk model treats nodes at
/// exactly distance `r` as neighbors).
#[inline]
pub fn in_disk(p: &Point2, c: &Point2, r: f64) -> bool {
    p.dist_sq(c) <= r * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-9;

    #[test]
    fn point_distance_and_polar() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!((a.dist(&b) - 5.0).abs() < TOL);
        assert!((a.dist_sq(&b) - 25.0).abs() < TOL);
        let p = Point2::from_polar(2.0, PI / 2.0);
        assert!(p.x.abs() < TOL);
        assert!((p.y - 2.0).abs() < TOL);
        assert!((p.norm() - 2.0).abs() < TOL);
    }

    #[test]
    fn disk_and_annulus_areas() {
        assert!((disk_area(1.0) - PI).abs() < TOL);
        assert_eq!(disk_area(0.0), 0.0);
        assert_eq!(disk_area(-1.0), 0.0);
        // C_j = π r² (j² − (j−1)²)
        let r = 2.0;
        for j in 1..=6u32 {
            let j = j as f64;
            let expect = PI * r * r * (j * j - (j - 1.0) * (j - 1.0));
            assert!((annulus_area((j - 1.0) * r, j * r) - expect).abs() < 1e-8);
        }
    }

    #[test]
    fn lens_disjoint_is_zero() {
        assert_eq!(lens_area(1.0, 1.0, 2.0), 0.0);
        assert_eq!(lens_area(1.0, 1.0, 5.0), 0.0);
    }

    #[test]
    fn lens_containment_is_smaller_disk() {
        assert!((lens_area(3.0, 1.0, 0.5) - PI).abs() < TOL);
        assert!((lens_area(1.0, 3.0, 0.5) - PI).abs() < TOL);
        // concentric
        assert!((lens_area(2.0, 1.0, 0.0) - PI).abs() < TOL);
    }

    #[test]
    fn lens_equal_circles_half_overlap() {
        // Two unit circles at distance d: area = 2 r² cos⁻¹(d/2r) − (d/2)·√(4r²−d²)
        let r = 1.0f64;
        for d in [0.1f64, 0.5, 1.0, 1.5, 1.9] {
            let expect =
                2.0 * r * r * (d / (2.0 * r)).acos() - (d / 2.0) * (4.0 * r * r - d * d).sqrt();
            assert!(
                (lens_area(r, r, d) - expect).abs() < 1e-9,
                "d={d}: {} vs {}",
                lens_area(r, r, d),
                expect
            );
        }
    }

    #[test]
    fn lens_degenerate_radii() {
        assert_eq!(lens_area(0.0, 1.0, 0.5), 0.0);
        assert_eq!(lens_area(1.0, 0.0, 0.5), 0.0);
        assert_eq!(lens_area(-1.0, 1.0, 0.5), 0.0);
    }

    #[test]
    fn lens_continuity_at_tangency() {
        // Just inside / outside external tangency.
        let eps = 1e-12;
        assert!(lens_area(1.0, 1.0, 2.0 - eps) < 1e-6);
        // Just inside / outside internal tangency.
        assert!((lens_area(2.0, 1.0, 1.0 + eps) - PI).abs() < 1e-5);
    }

    #[test]
    fn lens_border_parameterization() {
        // x is distance from L2's center to L1's border: center distance d1+x.
        let a = lens_area_border(2.0, 1.0, 0.5); // centers 2.5 apart
        let b = lens_area(2.0, 1.0, 2.5);
        assert!((a - b).abs() < TOL);
        // negative x: center of L2 inside L1
        let a = lens_area_border(2.0, 1.0, -1.5); // centers 0.5 apart → containment
        assert!((a - PI).abs() < TOL);
        // x so negative that d1 + x < 0 clamps to concentric
        let a = lens_area_border(2.0, 1.0, -3.0);
        assert!((a - PI).abs() < TOL);
    }

    #[test]
    fn lens_monotone_in_distance() {
        let mut prev = f64::INFINITY;
        let mut d = 0.0;
        while d <= 3.1 {
            let a = lens_area(2.0, 1.0, d);
            assert!(a <= prev + 1e-12, "lens area must not increase with d");
            prev = a;
            d += 0.01;
        }
    }

    #[test]
    fn lens_symmetric_in_radii() {
        for d in [0.0, 0.3, 1.0, 2.4, 3.0] {
            assert!((lens_area(2.0, 1.5, d) - lens_area(1.5, 2.0, d)).abs() < TOL);
        }
    }

    #[test]
    fn in_disk_boundary_counts() {
        let c = Point2::ORIGIN;
        assert!(in_disk(&Point2::new(1.0, 0.0), &c, 1.0));
        assert!(!in_disk(&Point2::new(1.0 + 1e-9, 0.0), &c, 1.0));
    }
}
