//! # nss-model — abstract network model substrate
//!
//! Implements the "network model" layer of Yu, Hong & Prasanna's algorithm
//! design methodology for networked sensor systems (Fig. 1 of the paper):
//!
//! * **Network deployment** ([`deployment`]) — uniform disk (the paper's
//!   layout), square grid, and explicit-position networks; all reproducible
//!   from a seed.
//! * **Communication model** ([`comm`]) — the Collision Free Model (CFM)
//!   and the Collision Aware Model (CAM), with transmission-range or
//!   carrier-sense collision scope, plus the per-packet cost parameters
//!   `t_f, e_f, t_a, e_a`.
//! * **Topology** ([`topology`]) — the induced symmetric unit-disk graph
//!   `G(V, E)` with CSR adjacency, BFS levels, and component analysis.
//! * Supporting **geometry** ([`geometry`]), a grid **spatial index**
//!   ([`spatial`]), node **ids** ([`ids`]), and deterministic **seed
//!   derivation** ([`rng`]).
//!
//! Higher layers build on this crate: `nss-analysis` evaluates the paper's
//! analytical framework against the same geometric definitions, and
//! `nss-sim` executes protocols over sampled topologies under either
//! communication model.
//!
//! ## Example
//!
//! ```
//! use nss_model::prelude::*;
//!
//! // The paper's evaluation network: P = 5 rings, rho = 60 neighbors.
//! let spec = Deployment::disk(5, 1.0, 60.0);
//! let net = spec.sample(42);
//! let topo = Topology::build(&net);
//! assert_eq!(net.len(), 1500); // round(rho * P^2)
//! assert!(topo.mean_degree() > 40.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod comm;
pub mod deployment;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod ids;
pub mod io;
pub mod metrics;
pub mod rng;
pub mod spatial;
pub mod topology;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::comm::{CollisionRule, CommunicationModel, CostParams, Primitive};
    pub use crate::deployment::{
        ClusterDeployment, CountModel, DeployedNetwork, Deployment, DiskDeployment, GridDeployment,
    };
    pub use crate::error::ConfigError;
    pub use crate::faults::{DutyCycle, FaultPlan, NodeOutage};
    pub use crate::geometry::{annulus_area, disk_area, lens_area, lens_area_border, Point2};
    pub use crate::ids::NodeId;
    pub use crate::metrics::PhaseSeries;
    pub use crate::rng::{SeedFactory, Stream};
    pub use crate::spatial::GridIndex;
    pub use crate::topology::Topology;
}

pub use prelude::*;
