//! Plain-text serialization of deployed networks.
//!
//! A minimal, stable, diff-friendly format so experiments can pin the
//! exact topology they ran on (or load surveyed real-world positions):
//!
//! ```text
//! # nss-positions v1 r=1.25
//! 0 0
//! 0.8112 -0.4401
//! ...
//! ```
//!
//! Line 1 is a header carrying the format version and the communication
//! radius; each following non-comment line is one node's `x y` (node 0 is
//! the source). Blank lines and `#` comments are ignored after the header.

use crate::deployment::DeployedNetwork;
use crate::geometry::Point2;
use std::io::{self, BufRead, Write};
use std::path::Path;

const MAGIC: &str = "# nss-positions v1";

/// Writes a network in the positions format.
pub fn write_positions<W: Write>(net: &DeployedNetwork, mut w: W) -> io::Result<()> {
    writeln!(w, "{MAGIC} r={}", net.comm_radius())?;
    for p in net.positions() {
        writeln!(w, "{} {}", p.x, p.y)?;
    }
    Ok(())
}

/// Reads a network from the positions format.
pub fn read_positions<R: BufRead>(r: R) -> io::Result<DeployedNetwork> {
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| bad("empty input"))??;
    let rest = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| bad("missing nss-positions header"))?;
    let radius: f64 = rest
        .trim()
        .strip_prefix("r=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("header must carry r=<radius>"))?;
    if !(radius.is_finite() && radius > 0.0) {
        return Err(bad("radius must be positive and finite"));
    }
    let mut positions = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<f64> {
            tok.and_then(|t| t.parse::<f64>().ok())
                .filter(|v| v.is_finite())
                .ok_or_else(|| bad(&format!("bad coordinate on line {}", lineno + 2)))
        };
        let x = parse(it.next())?;
        let y = parse(it.next())?;
        if it.next().is_some() {
            return Err(bad(&format!("trailing tokens on line {}", lineno + 2)));
        }
        positions.push(Point2::new(x, y));
    }
    if positions.is_empty() {
        return Err(bad("no node positions"));
    }
    Ok(DeployedNetwork::from_positions(positions, radius))
}

/// Saves a network to a file.
pub fn save_positions(net: &DeployedNetwork, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_positions(net, io::BufWriter::new(f))
}

/// Loads a network from a file.
pub fn load_positions(path: impl AsRef<Path>) -> io::Result<DeployedNetwork> {
    let f = std::fs::File::open(path)?;
    read_positions(io::BufReader::new(f))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    #[test]
    fn roundtrip_preserves_everything() {
        let net = Deployment::disk(4, 1.5, 30.0).sample(7);
        let mut buf = Vec::new();
        write_positions(&net, &mut buf).unwrap();
        let loaded = read_positions(&buf[..]).unwrap();
        assert_eq!(loaded.comm_radius(), net.comm_radius());
        assert_eq!(loaded.len(), net.len());
        for (a, b) in loaded.positions().iter().zip(net.positions()) {
            assert_eq!(a, b, "positions must roundtrip exactly");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# nss-positions v1 r=2\n0 0\n\n# a comment\n1.5 -0.25\n";
        let net = read_positions(text.as_bytes()).unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.positions()[1], Point2::new(1.5, -0.25));
        assert_eq!(net.comm_radius(), 2.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_positions("".as_bytes()).is_err());
        assert!(read_positions("hello\n0 0\n".as_bytes()).is_err());
        assert!(read_positions("# nss-positions v1\n0 0\n".as_bytes()).is_err());
        assert!(read_positions("# nss-positions v1 r=-1\n0 0\n".as_bytes()).is_err());
        assert!(read_positions("# nss-positions v1 r=1\n".as_bytes()).is_err());
        assert!(read_positions("# nss-positions v1 r=1\n0\n".as_bytes()).is_err());
        assert!(read_positions("# nss-positions v1 r=1\n0 0 0\n".as_bytes()).is_err());
        assert!(read_positions("# nss-positions v1 r=1\n0 NaN\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let net = Deployment::disk(3, 1.0, 20.0).sample(1);
        let dir = std::env::temp_dir().join("nss_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.txt");
        save_positions(&net, &path).unwrap();
        let loaded = load_positions(&path).unwrap();
        assert_eq!(loaded.positions(), net.positions());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_network_builds_identical_topology() {
        use crate::topology::Topology;
        let net = Deployment::disk(3, 1.0, 40.0).sample(5);
        let mut buf = Vec::new();
        write_positions(&net, &mut buf).unwrap();
        let loaded = read_positions(&buf[..]).unwrap();
        let a = Topology::build(&net);
        let b = Topology::build(&loaded);
        assert_eq!(a.edge_count(), b.edge_count());
        for u in 0..a.len() {
            assert_eq!(
                a.neighbors(crate::ids::NodeId(u as u32)),
                b.neighbors(crate::ids::NodeId(u as u32))
            );
        }
    }
}
