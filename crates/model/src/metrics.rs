//! Broadcast performance metrics (§4.1 of the paper).
//!
//! Both the analytical ring model (`nss-analysis`) and the packet-level
//! simulator (`nss-sim`) summarize an execution as a [`PhaseSeries`]:
//! cumulative informed-node and broadcast counts at the end of each time
//! phase. The four non-trivial metrics of §4.1 are then computed here,
//! using the paper's uniform-within-phase interpolation (§4.2.4) so that
//! latency and energy are continuous quantities measured in fractional
//! phases / broadcasts.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Phase-granular summary of one broadcast execution.
///
/// Index `i` of the cumulative vectors corresponds to the end of phase
/// `T_{i+1}`; an implicit origin point (0 informed beyond the source, 0
/// broadcasts) precedes phase 1.
/// ```
/// use nss_model::metrics::PhaseSeries;
///
/// let s = PhaseSeries {
///     n_total: 100.0,
///     informed_cum: vec![10.0, 40.0, 70.0],
///     broadcasts_cum: vec![1.0, 5.0, 17.0],
/// };
/// assert_eq!(s.reachability_at_latency(2.0), 0.4);
/// assert_eq!(s.latency_to_reach(0.25), Some(1.5)); // mid-phase crossing
/// assert_eq!(s.broadcasts_to_reach(0.25), Some(3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSeries {
    /// Total node count `N` (including the source).
    pub n_total: f64,
    /// Cumulative informed nodes (including the source) at the end of each
    /// phase. Must be non-decreasing.
    pub informed_cum: Vec<f64>,
    /// Cumulative broadcast count at the end of each phase (the source's
    /// initial transmission is phase 1's broadcast). Non-decreasing.
    pub broadcasts_cum: Vec<f64>,
}

impl PhaseSeries {
    /// Validates internal consistency (lengths match, monotone, bounded).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.informed_cum.len() != self.broadcasts_cum.len() {
            return Err(ConfigError::Inconsistent {
                what: "informed/broadcast series lengths differ",
                at: None,
            });
        }
        if self.n_total <= 0.0 {
            return Err(ConfigError::NotPositive {
                field: "n_total",
                value: self.n_total,
            });
        }
        let mut prev = 0.0;
        for (i, &v) in self.informed_cum.iter().enumerate() {
            if v < prev - 1e-9 {
                return Err(ConfigError::Inconsistent {
                    what: "informed_cum decreases at phase",
                    at: Some(i + 1),
                });
            }
            if v > self.n_total * (1.0 + 1e-9) {
                return Err(ConfigError::Inconsistent {
                    what: "informed_cum exceeds n_total at phase",
                    at: Some(i + 1),
                });
            }
            prev = v;
        }
        let mut prev = 0.0;
        for (i, &v) in self.broadcasts_cum.iter().enumerate() {
            if v < prev - 1e-9 {
                return Err(ConfigError::Inconsistent {
                    what: "broadcasts_cum decreases at phase",
                    at: Some(i + 1),
                });
            }
            prev = v;
        }
        Ok(())
    }

    /// Number of recorded phases.
    pub fn phases(&self) -> usize {
        self.informed_cum.len()
    }

    /// Final reachability: informed fraction when the execution terminated.
    pub fn final_reachability(&self) -> f64 {
        self.informed_cum.last().map_or(0.0, |&v| v / self.n_total)
    }

    /// Total broadcasts over the whole execution.
    pub fn total_broadcasts(&self) -> f64 {
        self.broadcasts_cum.last().copied().unwrap_or(0.0)
    }

    /// Informed count at fractional phase time `t ≥ 0` (uniform-within-phase
    /// interpolation; `t = 0` is the start of phase 1).
    pub fn informed_at(&self, t: f64) -> f64 {
        interp_series(&self.informed_cum, t)
    }

    /// Cumulative broadcasts at fractional phase time `t ≥ 0`.
    pub fn broadcasts_at(&self, t: f64) -> f64 {
        interp_series(&self.broadcasts_cum, t)
    }

    /// **Metric 1** — reachability achieved within a latency budget of
    /// `phases` time phases (may be fractional).
    pub fn reachability_at_latency(&self, phases: f64) -> f64 {
        self.informed_at(phases) / self.n_total
    }

    /// **Metric 3** — latency (fractional phases) until reachability first
    /// reaches `target ∈ (0, 1]`; `None` if the execution never gets there.
    pub fn latency_to_reach(&self, target: f64) -> Option<f64> {
        let goal = target * self.n_total;
        inverse_interp(&self.informed_cum, goal)
    }

    /// **Metric 4** — broadcasts expended until reachability first reaches
    /// `target`; `None` if unreachable. Broadcasts are interpolated at the
    /// same fractional phase time as the reachability crossing.
    pub fn broadcasts_to_reach(&self, target: f64) -> Option<f64> {
        self.latency_to_reach(target).map(|t| self.broadcasts_at(t))
    }

    /// **Metric 5** — reachability achieved by the time the cumulative
    /// broadcast count reaches `budget`. If the whole execution uses fewer
    /// broadcasts than `budget`, the final reachability is returned.
    pub fn reachability_under_budget(&self, budget: f64) -> f64 {
        match inverse_interp(&self.broadcasts_cum, budget) {
            Some(t) => self.informed_at(t) / self.n_total,
            None => self.final_reachability(),
        }
    }
}

/// Piecewise-linear interpolation of a cumulative per-phase series at
/// fractional phase time `t`; clamps beyond the recorded range.
fn interp_series(cum: &[f64], t: f64) -> f64 {
    if cum.is_empty() || t <= 0.0 {
        return 0.0;
    }
    let n = cum.len();
    if t >= n as f64 {
        return cum[n - 1];
    }
    let i = t.floor() as usize; // completed phases
    let frac = t - i as f64;
    let base = if i == 0 { 0.0 } else { cum[i - 1] };
    let next = cum[i.min(n - 1)];
    base + frac * (next - base)
}

/// Earliest fractional phase time at which the cumulative series reaches
/// `goal`; `None` if it never does.
fn inverse_interp(cum: &[f64], goal: f64) -> Option<f64> {
    if goal <= 0.0 {
        return Some(0.0);
    }
    let mut base = 0.0f64;
    for (i, &v) in cum.iter().enumerate() {
        if v >= goal - 1e-12 {
            let gain = v - base;
            if gain <= 0.0 {
                return Some(i as f64); // flat segment already at goal
            }
            return Some(i as f64 + ((goal - base) / gain).clamp(0.0, 1.0));
        }
        base = v;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> PhaseSeries {
        PhaseSeries {
            n_total: 100.0,
            informed_cum: vec![10.0, 40.0, 70.0, 80.0, 80.0],
            broadcasts_cum: vec![1.0, 5.0, 17.0, 29.0, 33.0],
        }
    }

    #[test]
    fn validation_accepts_good_series() {
        assert!(series().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_series() {
        let mut s = series();
        s.informed_cum[2] = 5.0;
        assert!(s.validate().is_err());
        let mut s = series();
        s.informed_cum[4] = 200.0;
        assert!(s.validate().is_err());
        let mut s = series();
        s.broadcasts_cum.pop();
        assert!(s.validate().is_err());
        let mut s = series();
        s.n_total = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn reachability_at_integer_latencies() {
        let s = series();
        assert!((s.reachability_at_latency(1.0) - 0.10).abs() < 1e-12);
        assert!((s.reachability_at_latency(3.0) - 0.70).abs() < 1e-12);
        // beyond the recorded horizon → final value
        assert!((s.reachability_at_latency(99.0) - 0.80).abs() < 1e-12);
        assert_eq!(s.reachability_at_latency(0.0), 0.0);
    }

    #[test]
    fn reachability_interpolates_within_phase() {
        let s = series();
        // Halfway through phase 2: 10 + 0.5·30 = 25.
        assert!((s.reachability_at_latency(1.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn latency_inverse_of_reachability() {
        let s = series();
        for target in [0.05, 0.1, 0.25, 0.5, 0.72, 0.8] {
            let t = s.latency_to_reach(target).unwrap();
            let back = s.reachability_at_latency(t);
            assert!(
                (back - target).abs() < 1e-9,
                "target {target}: t={t}, back={back}"
            );
        }
    }

    #[test]
    fn latency_unreachable_target() {
        let s = series();
        assert_eq!(s.latency_to_reach(0.81), None);
        assert_eq!(s.latency_to_reach(1.0), None);
        assert_eq!(s.latency_to_reach(0.0), Some(0.0));
    }

    #[test]
    fn latency_exact_phase_boundaries() {
        let s = series();
        assert!((s.latency_to_reach(0.10).unwrap() - 1.0).abs() < 1e-12);
        assert!((s.latency_to_reach(0.40).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn broadcasts_to_reach_interpolates() {
        let s = series();
        // 25% reached at t = 1.5 → broadcasts = 1 + 0.5·4 = 3.
        let b = s.broadcasts_to_reach(0.25).unwrap();
        assert!((b - 3.0).abs() < 1e-12);
        assert_eq!(s.broadcasts_to_reach(0.9), None);
    }

    #[test]
    fn reachability_under_budget() {
        let s = series();
        // Budget 3 → t = 1.5 → 25 informed.
        assert!((s.reachability_under_budget(3.0) - 0.25).abs() < 1e-12);
        // Budget beyond the run → final reachability.
        assert!((s.reachability_under_budget(1000.0) - 0.8).abs() < 1e-12);
        // Zero budget → nothing.
        assert_eq!(s.reachability_under_budget(0.0), 0.0);
    }

    #[test]
    fn budget_duality_with_broadcast_metric() {
        // reach_under_budget(broadcasts_to_reach(R)) == R (when achievable):
        // the §4.1 duality between metrics 4 and 5.
        let s = series();
        for target in [0.1, 0.3, 0.6, 0.79] {
            let b = s.broadcasts_to_reach(target).unwrap();
            let r = s.reachability_under_budget(b);
            assert!((r - target).abs() < 1e-9, "target {target}: b={b}, r={r}");
        }
    }

    #[test]
    fn flat_segments_handled() {
        let s = PhaseSeries {
            n_total: 10.0,
            informed_cum: vec![5.0, 5.0, 5.0],
            broadcasts_cum: vec![1.0, 1.0, 1.0],
        };
        assert!((s.latency_to_reach(0.5).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(s.latency_to_reach(0.51), None);
        assert!((s.reachability_under_budget(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = PhaseSeries {
            n_total: 10.0,
            informed_cum: vec![],
            broadcasts_cum: vec![],
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.final_reachability(), 0.0);
        assert_eq!(s.reachability_at_latency(5.0), 0.0);
        assert_eq!(s.latency_to_reach(0.5), None);
    }
}
