//! Typed validation errors shared by every configurable component.
//!
//! All `validate()` methods across the workspace (gossip configs, ring-model
//! configs, cost parameters, fault plans, …) return `Result<(), ConfigError>`
//! instead of stringly-typed errors, so callers can match on the failure
//! kind programmatically while `Display` still renders the familiar
//! human-readable message.

use std::fmt;

/// A structured configuration-validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A value that must be strictly positive (and finite) was not.
    NotPositive {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A probability or fraction lies outside `[0, 1]`.
    OutOfUnitRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An integral count is below its minimum.
    TooSmall {
        /// Name of the offending field.
        field: &'static str,
        /// The smallest admissible value.
        min: u64,
        /// The rejected value.
        value: u64,
    },
    /// `field` must not exceed the named bound (e.g. `t_a ≤ t_f`).
    Exceeds {
        /// Name of the offending field.
        field: &'static str,
        /// Name of the bounding field.
        bound: &'static str,
        /// The rejected value.
        value: f64,
        /// The bound's value.
        limit: f64,
    },
    /// A cross-field consistency rule failed. `at` carries a phase or
    /// element index when the failure is positional.
    Inconsistent {
        /// Description of the violated rule.
        what: &'static str,
        /// Position (phase/index) of the violation, when applicable.
        at: Option<usize>,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::NotPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ConfigError::OutOfUnitRange { field, value } => {
                write!(f, "{field} {value} outside [0,1]")
            }
            ConfigError::TooSmall { field, min, value } => {
                write!(f, "{field} must be ≥ {min}, got {value}")
            }
            ConfigError::Exceeds {
                field,
                bound,
                value,
                limit,
            } => write!(f, "{field} ({value}) must not exceed {bound} ({limit})"),
            ConfigError::Inconsistent { what, at } => match at {
                Some(i) => write!(f, "{what} at {i}"),
                None => write!(f, "{what}"),
            },
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ConfigError::OutOfUnitRange {
            field: "probability",
            value: 1.5,
        };
        assert_eq!(e.to_string(), "probability 1.5 outside [0,1]");
        let e = ConfigError::NotPositive {
            field: "rho",
            value: 0.0,
        };
        assert_eq!(e.to_string(), "rho must be positive and finite, got 0");
        let e = ConfigError::TooSmall {
            field: "s",
            min: 1,
            value: 0,
        };
        assert_eq!(e.to_string(), "s must be ≥ 1, got 0");
        let e = ConfigError::Exceeds {
            field: "t_a",
            bound: "t_f",
            value: 2.0,
            limit: 1.0,
        };
        assert_eq!(e.to_string(), "t_a (2) must not exceed t_f (1)");
        let e = ConfigError::Inconsistent {
            what: "informed_cum decreases",
            at: Some(3),
        };
        assert_eq!(e.to_string(), "informed_cum decreases at 3");
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        let e = ConfigError::Inconsistent {
            what: "lengths differ",
            at: None,
        };
        takes_error(&e);
        assert_eq!(e.to_string(), "lengths differ");
    }

    #[test]
    fn matchable_by_kind() {
        let e = ConfigError::OutOfUnitRange {
            field: "p",
            value: -0.2,
        };
        assert!(matches!(e, ConfigError::OutOfUnitRange { field: "p", .. }));
    }
}
