//! Network deployment generators.
//!
//! The paper's evaluation layout is a **uniform deployment of N nodes in a
//! circle of radius `P·r`** with the broadcast source at the center and
//! `N = δ·π·(P·r)²` (§4). That layout is [`Deployment::disk`]. A square
//! grid layout (used by ref. 32 of the paper for the percolation-style
//! extension experiment) and a Poisson-count variant are also provided.

use crate::error::ConfigError;
use crate::geometry::Point2;
use crate::ids::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// How the node count of a disk deployment is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CountModel {
    /// Exactly `round(δ·π·(P·r)²)` nodes — the paper's setting.
    #[default]
    Fixed,
    /// `N ~ Poisson(δ·π·(P·r)²)`, the spatial-Poisson-process view.
    Poisson,
}

/// Uniform deployment in a disk of radius `P·r`, source at the center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskDeployment {
    /// The paper's integer parameter `P`: field radius in units of `r`.
    pub p_factor: u32,
    /// Communication radius `r` of every node.
    pub comm_radius: f64,
    /// Node density `δ` (expected nodes per unit area).
    pub density: f64,
    /// Whether the node count is fixed or Poisson-distributed.
    pub count_model: CountModel,
}

impl DiskDeployment {
    /// Creates the paper's deployment from `(P, r, δ)`.
    pub fn new(p_factor: u32, comm_radius: f64, density: f64) -> Self {
        assert!(p_factor >= 1, "P must be at least 1");
        assert!(comm_radius > 0.0, "communication radius must be positive");
        assert!(density > 0.0, "density must be positive");
        DiskDeployment {
            p_factor,
            comm_radius,
            density,
            count_model: CountModel::Fixed,
        }
    }

    /// Creates a deployment from `(P, r, ρ)` where `ρ = δ·π·r²` is the
    /// expected number of neighbors of an interior node — the density
    /// parameterization the paper sweeps (20..140).
    pub fn from_rho(p_factor: u32, comm_radius: f64, rho: f64) -> Self {
        assert!(rho > 0.0, "rho must be positive");
        let density = rho / (PI * comm_radius * comm_radius);
        DiskDeployment::new(p_factor, comm_radius, density)
    }

    /// Expected neighbors per interior node, `ρ = δ·π·r²`.
    pub fn rho(&self) -> f64 {
        self.density * PI * self.comm_radius * self.comm_radius
    }

    /// Field radius `P·r`.
    pub fn field_radius(&self) -> f64 {
        f64::from(self.p_factor) * self.comm_radius
    }

    /// Expected total node count `δ·π·(P·r)²` (including the source).
    pub fn expected_count(&self) -> f64 {
        self.density * PI * self.field_radius() * self.field_radius()
    }
}

/// Square-grid deployment with optional uniform jitter, used by the
/// percolation extension experiment (ref. 32 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridDeployment {
    /// Grid dimension: the layout is `side × side` nodes.
    pub side: u32,
    /// Distance between adjacent grid points.
    pub spacing: f64,
    /// Communication radius of every node.
    pub comm_radius: f64,
    /// Uniform jitter amplitude applied to each coordinate, as a fraction
    /// of `spacing` (0 = perfect grid).
    pub jitter: f64,
}

impl GridDeployment {
    /// Creates a `side × side` grid with the given spacing and radius.
    pub fn new(side: u32, spacing: f64, comm_radius: f64) -> Self {
        assert!(side >= 1, "grid side must be at least 1");
        assert!(spacing > 0.0 && comm_radius > 0.0);
        GridDeployment {
            side,
            spacing,
            comm_radius,
            jitter: 0.0,
        }
    }

    /// Sets the jitter fraction (clamped to [0, 0.5)).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.499);
        self
    }
}

/// Matérn-style cluster deployment: hotspots of high density over a sparse
/// uniform background — the "large spatio-temporal variation in node
/// density" the paper's §6 motivates its adaptive tuning proposal with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterDeployment {
    /// Field radius in units of `r` (as in the disk layout).
    pub p_factor: u32,
    /// Communication radius `r`.
    pub comm_radius: f64,
    /// Number of cluster parents, placed uniformly in the field.
    pub clusters: u32,
    /// Expected children per cluster (`Poisson`-distributed).
    pub children_mean: f64,
    /// Cluster radius (children are uniform in a disk of this radius
    /// around their parent, clipped to the field).
    pub cluster_radius: f64,
    /// Background density δ of the sparse uniform layer.
    pub background_density: f64,
}

impl ClusterDeployment {
    /// Creates a cluster deployment.
    pub fn new(
        p_factor: u32,
        comm_radius: f64,
        clusters: u32,
        children_mean: f64,
        cluster_radius: f64,
        background_density: f64,
    ) -> Self {
        assert!(p_factor >= 1 && comm_radius > 0.0);
        assert!(clusters >= 1 && children_mean >= 0.0 && cluster_radius > 0.0);
        assert!(background_density >= 0.0);
        ClusterDeployment {
            p_factor,
            comm_radius,
            clusters,
            children_mean,
            cluster_radius,
            background_density,
        }
    }

    /// Field radius `P·r`.
    pub fn field_radius(&self) -> f64 {
        f64::from(self.p_factor) * self.comm_radius
    }

    /// Expected total node count (source + background + parents + children).
    pub fn expected_count(&self) -> f64 {
        let field = self.field_radius();
        1.0 + self.background_density * std::f64::consts::PI * field * field
            + f64::from(self.clusters) * (1.0 + self.children_mean)
    }
}

/// A deployment specification: everything needed to (re)generate node
/// positions from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Deployment {
    /// Uniform-in-disk deployment (the paper's layout).
    Disk(DiskDeployment),
    /// Square grid (extension experiments).
    Grid(GridDeployment),
    /// Clustered hotspots over a sparse background (§6 extension).
    Cluster(ClusterDeployment),
}

impl Deployment {
    /// Convenience constructor for the paper's disk layout from `(P, r, ρ)`.
    pub fn disk(p_factor: u32, comm_radius: f64, rho: f64) -> Self {
        Deployment::Disk(DiskDeployment::from_rho(p_factor, comm_radius, rho))
    }

    /// Communication radius of the deployment's nodes.
    pub fn comm_radius(&self) -> f64 {
        match self {
            Deployment::Disk(d) => d.comm_radius,
            Deployment::Grid(g) => g.comm_radius,
            Deployment::Cluster(c) => c.comm_radius,
        }
    }

    /// Samples node positions. Index 0 (the source) is at the field center.
    ///
    /// The result always contains at least the source node.
    pub fn sample(&self, seed: u64) -> DeployedNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let positions = match self {
            Deployment::Disk(d) => sample_disk(d, &mut rng),
            Deployment::Grid(g) => sample_grid(g, &mut rng),
            Deployment::Cluster(c) => sample_cluster(c, &mut rng),
        };
        DeployedNetwork {
            positions,
            comm_radius: self.comm_radius(),
            spec: *self,
            seed,
        }
    }
}

fn sample_disk(d: &DiskDeployment, rng: &mut SmallRng) -> Vec<Point2> {
    let expected = d.expected_count();
    let n = match d.count_model {
        CountModel::Fixed => expected.round() as usize,
        CountModel::Poisson => sample_poisson(expected, rng),
    }
    .max(1);
    let radius = d.field_radius();
    let mut pts = Vec::with_capacity(n);
    pts.push(Point2::ORIGIN); // the source
    for _ in 1..n {
        // Uniform in disk: radius ∝ √u.
        let u: f64 = rng.random();
        let theta: f64 = rng.random_range(0.0..(2.0 * PI));
        pts.push(Point2::from_polar(radius * u.sqrt(), theta));
    }
    pts
}

fn sample_grid(g: &GridDeployment, rng: &mut SmallRng) -> Vec<Point2> {
    let side = g.side as usize;
    let mut pts = Vec::with_capacity(side * side);
    // Center the grid on the origin and make the node nearest the center the
    // source by generating it first.
    let half = (g.side as f64 - 1.0) / 2.0;
    let mut cells: Vec<(usize, usize)> = (0..side)
        .flat_map(|i| (0..side).map(move |j| (i, j)))
        .collect();
    // Source cell: closest to center.
    cells.sort_by(|a, b| {
        let da = (a.0 as f64 - half).abs() + (a.1 as f64 - half).abs();
        let db = (b.0 as f64 - half).abs() + (b.1 as f64 - half).abs();
        da.total_cmp(&db)
    });
    for (i, j) in cells {
        let jx = if g.jitter > 0.0 {
            rng.random_range(-g.jitter..g.jitter) * g.spacing
        } else {
            0.0
        };
        let jy = if g.jitter > 0.0 {
            rng.random_range(-g.jitter..g.jitter) * g.spacing
        } else {
            0.0
        };
        pts.push(Point2::new(
            (i as f64 - half) * g.spacing + jx,
            (j as f64 - half) * g.spacing + jy,
        ));
    }
    pts
}

fn sample_cluster(c: &ClusterDeployment, rng: &mut SmallRng) -> Vec<Point2> {
    let field = c.field_radius();
    let mut pts = vec![Point2::ORIGIN]; // the source
                                        // Sparse uniform background.
    let n_bg = sample_poisson(c.background_density * PI * field * field, rng);
    for _ in 0..n_bg {
        let u: f64 = rng.random();
        let theta: f64 = rng.random_range(0.0..(2.0 * PI));
        pts.push(Point2::from_polar(field * u.sqrt(), theta));
    }
    // Cluster parents and their children.
    for _ in 0..c.clusters {
        let u: f64 = rng.random();
        let theta: f64 = rng.random_range(0.0..(2.0 * PI));
        let parent = Point2::from_polar(field * u.sqrt(), theta);
        pts.push(parent);
        let n_children = sample_poisson(c.children_mean, rng);
        for _ in 0..n_children {
            let u: f64 = rng.random();
            let theta: f64 = rng.random_range(0.0..(2.0 * PI));
            let child = Point2::new(
                parent.x + c.cluster_radius * u.sqrt() * theta.cos(),
                parent.y + c.cluster_radius * u.sqrt() * theta.sin(),
            );
            // Clip to the field by radial projection.
            let norm = child.norm();
            pts.push(if norm > field {
                Point2::new(child.x * field / norm, child.y * field / norm)
            } else {
                child
            });
        }
    }
    pts
}

/// Samples a Poisson(λ) variate. Uses Knuth's product method for small λ and
/// a normal approximation (adequate for node counts in the thousands) above.
fn sample_poisson(lambda: f64, rng: &mut SmallRng) -> usize {
    assert!(lambda >= 0.0);
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Box–Muller normal approximation with continuity correction.
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as usize
    }
}

/// A concrete set of node positions produced by [`Deployment::sample`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeployedNetwork {
    positions: Vec<Point2>,
    comm_radius: f64,
    spec: Deployment,
    seed: u64,
}

impl DeployedNetwork {
    /// Wraps an explicit list of node positions (index 0 is the source).
    ///
    /// This is the entry point for users with surveyed or trace-derived
    /// deployments rather than synthetic ones. The recorded spec is a
    /// degenerate disk deployment, retained only so `spec()` stays total.
    pub fn from_positions(positions: Vec<Point2>, comm_radius: f64) -> Self {
        Self::try_from_positions(positions, comm_radius)
            // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; try_from_positions() is the fallible path
            .unwrap_or_else(|e| panic!("invalid explicit deployment: {e}"))
    }

    /// Fallible variant of [`from_positions`](Self::from_positions): an
    /// empty position list, a non-positive/non-finite radius, or a node
    /// count overflowing the `u32` id space is a [`ConfigError`] rather
    /// than a panic or a silent id truncation.
    pub fn try_from_positions(
        positions: Vec<Point2>,
        comm_radius: f64,
    ) -> Result<Self, ConfigError> {
        if positions.is_empty() {
            return Err(ConfigError::TooSmall {
                field: "positions",
                min: 1,
                value: 0,
            });
        }
        crate::topology::check_node_count(positions.len())?;
        if !(comm_radius > 0.0 && comm_radius.is_finite()) {
            return Err(ConfigError::NotPositive {
                field: "comm_radius",
                value: comm_radius,
            });
        }
        Ok(DeployedNetwork {
            positions,
            comm_radius,
            spec: Deployment::Disk(DiskDeployment::new(1, comm_radius, f64::MIN_POSITIVE)),
            seed: 0,
        })
    }

    /// Number of nodes, including the source.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the network contains only the source.
    pub fn is_empty(&self) -> bool {
        self.positions.len() <= 1
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> Point2 {
        self.positions[id.index()]
    }

    /// All positions, indexed by `NodeId`.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// The communication radius shared by all nodes (Assumption 1).
    pub fn comm_radius(&self) -> f64 {
        self.comm_radius
    }

    /// The specification this network was sampled from.
    pub fn spec(&self) -> &Deployment {
        &self.spec
    }

    /// The seed this network was sampled with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_positions_validates() {
        let err = DeployedNetwork::try_from_positions(Vec::new(), 1.0).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ConfigError::TooSmall {
                field: "positions",
                ..
            }
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = DeployedNetwork::try_from_positions(vec![Point2::ORIGIN], bad).unwrap_err();
            assert!(
                matches!(err, crate::error::ConfigError::NotPositive { .. }),
                "radius {bad} gave {err:?}"
            );
        }
        let net = DeployedNetwork::try_from_positions(vec![Point2::ORIGIN], 2.0).unwrap();
        assert_eq!(net.len(), 1);
        assert_eq!(net.comm_radius(), 2.0);
    }

    #[test]
    fn disk_count_matches_formula() {
        // P=5, rho=20 → N = round(rho · P²) = 500.
        let d = DiskDeployment::from_rho(5, 1.0, 20.0);
        assert!((d.expected_count() - 500.0).abs() < 1e-9);
        let net = Deployment::Disk(d).sample(1);
        assert_eq!(net.len(), 500);
        assert_eq!(net.position(NodeId::SOURCE), Point2::ORIGIN);
    }

    #[test]
    fn rho_roundtrip() {
        let d = DiskDeployment::from_rho(5, 2.5, 77.0);
        assert!((d.rho() - 77.0).abs() < 1e-9);
        assert!((d.field_radius() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn all_nodes_inside_field() {
        let net = Deployment::disk(5, 1.0, 40.0).sample(7);
        let rmax = 5.0;
        for p in net.positions() {
            assert!(p.norm() <= rmax + 1e-9, "node outside field: {p:?}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = Deployment::disk(5, 1.0, 20.0);
        let a = spec.sample(99);
        let b = spec.sample(99);
        assert_eq!(a.positions(), b.positions());
        let c = spec.sample(100);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn disk_sampling_is_roughly_uniform() {
        // Half the nodes should fall within radius R/√2 (equal-area split).
        let net = Deployment::disk(5, 1.0, 140.0).sample(3);
        let r_half = 5.0 / 2.0f64.sqrt();
        let inner = net
            .positions()
            .iter()
            .filter(|p| p.norm() <= r_half)
            .count();
        let frac = inner as f64 / net.len() as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "inner-half fraction {frac} too far from 0.5"
        );
    }

    #[test]
    fn poisson_count_varies_but_centers_on_lambda() {
        let mut d = DiskDeployment::from_rho(5, 1.0, 20.0);
        d.count_model = CountModel::Poisson;
        let spec = Deployment::Disk(d);
        let counts: Vec<usize> = (0..50).map(|s| spec.sample(s).len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 500.0).abs() < 25.0, "Poisson mean {mean} off");
        assert!(counts.iter().any(|&c| c != counts[0]), "no variation");
    }

    #[test]
    fn poisson_small_lambda() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 4000;
        let mean = (0..n)
            .map(|_| sample_poisson(3.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn grid_layout_geometry() {
        let g = GridDeployment::new(5, 1.0, 1.5);
        let net = Deployment::Grid(g).sample(0);
        assert_eq!(net.len(), 25);
        // Source is the center cell of an odd grid → exactly at origin.
        assert_eq!(net.position(NodeId::SOURCE), Point2::ORIGIN);
        // All coordinates are multiples of spacing within the half-extent.
        for p in net.positions() {
            assert!(p.x.abs() <= 2.0 + 1e-9 && p.y.abs() <= 2.0 + 1e-9);
            assert!((p.x - p.x.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_jitter_perturbs_but_bounds() {
        let g = GridDeployment::new(4, 2.0, 1.5).with_jitter(0.25);
        let net = Deployment::Grid(g).sample(11);
        let perfect = Deployment::Grid(GridDeployment::new(4, 2.0, 1.5)).sample(11);
        let mut moved = 0;
        for (a, b) in net.positions().iter().zip(perfect.positions()) {
            let d = a.dist(b);
            assert!(d <= 2.0 * 0.25 * 2.0 * 2.0f64.sqrt() + 1e-9);
            if d > 0.0 {
                moved += 1;
            }
        }
        assert!(moved > 0, "jitter had no effect");
    }

    #[test]
    #[should_panic(expected = "density must be positive")]
    fn zero_density_rejected() {
        let _ = DiskDeployment::new(5, 1.0, 0.0);
    }

    #[test]
    fn cluster_deployment_shape() {
        let c = ClusterDeployment::new(5, 1.0, 8, 40.0, 1.0, 1.0);
        let spec = Deployment::Cluster(c);
        let net = spec.sample(3);
        // Count near the expectation: 1 + π·25 + 8·41 ≈ 407.
        let expect = c.expected_count();
        assert!(
            (net.len() as f64 - expect).abs() < expect * 0.25,
            "count {} vs expected {expect}",
            net.len()
        );
        // Everyone inside the field; source at center.
        assert_eq!(net.position(NodeId::SOURCE), Point2::ORIGIN);
        for p in net.positions() {
            assert!(p.norm() <= c.field_radius() + 1e-9);
        }
        // Deterministic per seed.
        assert_eq!(net.positions(), spec.sample(3).positions());
    }

    #[test]
    fn cluster_density_is_heterogeneous() {
        // Local degree variance should be much higher than for a uniform
        // disk of the same mean density.
        use crate::topology::Topology;
        let c = ClusterDeployment::new(5, 1.0, 6, 80.0, 1.0, 2.0);
        let net = Deployment::Cluster(c).sample(9);
        let topo = Topology::build(&net);
        let degs: Vec<f64> = (0..topo.len())
            .map(|u| topo.degree(NodeId(u as u32)) as f64)
            .collect();
        let mean = degs.iter().sum::<f64>() / degs.len() as f64;
        let var = degs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / degs.len() as f64;
        // For a uniform Poisson layout the degree distribution is ~Poisson
        // (variance ≈ mean); clusters should inflate variance well beyond.
        assert!(
            var > 3.0 * mean,
            "expected strong heterogeneity: var {var:.1} vs mean {mean:.1}"
        );
    }
}
