//! Link-wise communication models: CFM and CAM (§3.2 of the paper).
//!
//! * **CFM (Collision Free Model)** — every packet transmission is an atomic
//!   operation guaranteed to succeed, with time cost `t_f` and energy cost
//!   `e_f` charged to the sender and to each receiver.
//! * **CAM (Collision Aware Model)** — transmissions are not guaranteed:
//!   when a node is the target of concurrent transmissions from multiple
//!   neighbors, *none* of them succeeds (Assumption 6). Time/energy costs
//!   are `t_a ≤ t_f`, `e_a ≤ e_f`.
//!
//! The collision scope is configurable: the base model collides concurrent
//! transmissions within the *transmission range* `r`; the Appendix-A variant
//! additionally treats any concurrent transmission within the *carrier-sense
//! range* (typically `2r`) as destructive interference.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Which concurrent transmissions destroy a reception (CAM only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CollisionRule {
    /// A reception at `v` succeeds iff exactly one node within distance `r`
    /// of `v` transmits during the reception (the paper's Assumption 6).
    #[default]
    TransmissionRange,
    /// Additionally, any concurrent transmitter within `factor · r` of `v`
    /// (but beyond `r`) destroys the reception (Appendix A; the paper uses
    /// `factor = 2`).
    CarrierSense {
        /// Carrier-sense range as a multiple of the transmission range.
        factor: f64,
    },
}

impl CollisionRule {
    /// The paper's Appendix-A default: carrier-sense range `2r`.
    pub const CARRIER_SENSE_2R: CollisionRule = CollisionRule::CarrierSense { factor: 2.0 };

    /// The interference radius (in units of `r`) within which a concurrent
    /// transmitter invalidates a reception.
    pub fn interference_factor(&self) -> f64 {
        match self {
            CollisionRule::TransmissionRange => 1.0,
            CollisionRule::CarrierSense { factor } => *factor,
        }
    }
}

/// Per-packet time and energy costs (Assumption 1: identical for sending
/// and receiving a unit-size packet).
///
/// Kept symbolic: the paper's evaluation reports latency in *time phases*
/// and energy as *broadcast count*, so these enter only when converting to
/// physical units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Time cost of a guaranteed (CFM) transmission, `t_f`.
    pub t_f: f64,
    /// Energy cost of a guaranteed (CFM) transmission, `e_f`.
    pub e_f: f64,
    /// Time cost of a best-effort (CAM) transmission, `t_a ≤ t_f`.
    pub t_a: f64,
    /// Energy cost of a best-effort (CAM) transmission, `e_a ≤ e_f`.
    pub e_a: f64,
}

impl CostParams {
    /// Unit costs: one abstract time unit and energy unit per packet in both
    /// models. The paper's evaluation is insensitive to these values.
    pub const UNIT: CostParams = CostParams {
        t_f: 1.0,
        e_f: 1.0,
        t_a: 1.0,
        e_a: 1.0,
    };

    /// Validates the model constraint `t_a ≤ t_f ∧ e_a ≤ e_f` and positivity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("t_f", self.t_f),
            ("e_f", self.e_f),
            ("t_a", self.t_a),
            ("e_a", self.e_a),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(ConfigError::NotPositive { field, value });
            }
        }
        if self.t_a > self.t_f {
            return Err(ConfigError::Exceeds {
                field: "t_a",
                bound: "t_f",
                value: self.t_a,
                limit: self.t_f,
            });
        }
        if self.e_a > self.e_f {
            return Err(ConfigError::Exceeds {
                field: "e_a",
                bound: "e_f",
                value: self.e_a,
                limit: self.e_f,
            });
        }
        Ok(())
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::UNIT
    }
}

/// The link-wise communication model an algorithm is designed against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationModel {
    /// Collision Free Model: transmissions are atomic and always succeed.
    Cfm,
    /// Collision Aware Model with the given collision scope.
    Cam(CollisionRule),
}

impl CommunicationModel {
    /// The paper's default CAM (transmission-range collisions).
    pub const CAM: CommunicationModel = CommunicationModel::Cam(CollisionRule::TransmissionRange);

    /// Whether concurrent transmissions can destroy receptions.
    pub fn collisions_possible(&self) -> bool {
        matches!(self, CommunicationModel::Cam(_))
    }

    /// Per-packet time cost under this model.
    pub fn time_cost(&self, costs: &CostParams) -> f64 {
        match self {
            CommunicationModel::Cfm => costs.t_f,
            CommunicationModel::Cam(_) => costs.t_a,
        }
    }

    /// Per-packet energy cost under this model.
    pub fn energy_cost(&self, costs: &CostParams) -> f64 {
        match self {
            CommunicationModel::Cfm => costs.e_f,
            CommunicationModel::Cam(_) => costs.e_a,
        }
    }
}

/// Parameters of the SINR (physical / signal-to-interference-plus-noise)
/// reception model from *Towards Tight Bounds for Local Broadcasting*.
///
/// Powers are **normalized**: a transmitter at distance `d ≤ r` from a
/// receiver arrives with power `(r²/d²)^(α/2)`, so the weakest in-range
/// link (at `d = r`) has power exactly 1 and `noise` is expressed in the
/// same units. A packet from the strongest in-range transmitter decodes
/// iff
///
/// ```text
///   signal / (noise + Σ interference) ≥ β
/// ```
///
/// where the interference sum ranges over every *other* concurrent
/// transmitter within `interference_factor · r` of the receiver (the
/// truncation the spatial grid makes cheap; contributions beyond it are
/// below `interference_factor^-α` per transmitter and are dropped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrParams {
    /// Path-loss exponent `α` (free space ≈ 2, urban 3–4). Must be > 0.
    pub alpha: f64,
    /// Decode threshold `β` ≥ 0. `β ≥ 1` forbids capture-free ties;
    /// `β → 0` accepts any nonzero-SINR reception.
    pub beta: f64,
    /// Ambient noise floor in normalized power units (≥ 0; 0 = the
    /// interference-limited regime).
    pub noise: f64,
    /// Interference truncation radius as a multiple of the transmission
    /// range `r` (≥ 1).
    pub interference_factor: f64,
}

impl SinrParams {
    /// A conventional default: `α = 3`, `β = 1`, no noise, interference
    /// truncated at `3r`.
    pub const DEFAULT: SinrParams = SinrParams {
        alpha: 3.0,
        beta: 1.0,
        noise: 0.0,
        interference_factor: 3.0,
    };

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(ConfigError::NotPositive {
                field: "sinr.alpha",
                value: self.alpha,
            });
        }
        for (field, value) in [("sinr.beta", self.beta), ("sinr.noise", self.noise)] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(ConfigError::NotPositive { field, value });
            }
        }
        if !(self.interference_factor >= 1.0 && self.interference_factor.is_finite()) {
            return Err(ConfigError::TooSmall {
                field: "sinr.interference_factor",
                min: 1,
                value: self.interference_factor as u64,
            });
        }
        Ok(())
    }
}

impl Default for SinrParams {
    fn default() -> Self {
        SinrParams::DEFAULT
    }
}

/// Which physical-layer arbitration backend resolves concurrent CAM
/// transmissions.
///
/// The backend refines *how* Assumption 6's "concurrent transmissions
/// interfere" is decided; CFM is reliable by definition and ignores it.
/// [`MediumBackend::UnitDisk`] (the default) is the paper's boolean
/// unit-disk rule and is guaranteed byte-identical to the pre-backend
/// code path; [`MediumBackend::Sinr`] replaces the boolean rule with
/// received-power sums (and in particular models the *capture effect*:
/// the strongest of several colliding transmitters may still decode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MediumBackend {
    /// Boolean unit-disk interference (Assumption 6 / Appendix A).
    #[default]
    UnitDisk,
    /// SINR reception with the given parameters.
    Sinr(SinrParams),
}

impl MediumBackend {
    /// True for the SINR backend.
    pub fn is_sinr(&self) -> bool {
        matches!(self, MediumBackend::Sinr(_))
    }

    /// Validates backend parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            MediumBackend::UnitDisk => Ok(()),
            MediumBackend::Sinr(p) => p.validate(),
        }
    }

    /// Serializes to the compact spec accepted by
    /// [`MediumBackend::parse_spec`] (and the `repro --medium` flag).
    pub fn to_spec(&self) -> String {
        match self {
            MediumBackend::UnitDisk => "unit-disk".to_string(),
            MediumBackend::Sinr(p) => format!(
                "sinr:alpha={},beta={},noise={},kappa={}",
                p.alpha, p.beta, p.noise, p.interference_factor
            ),
        }
    }

    /// Parses the compact spec format:
    ///
    /// * `unit-disk` — the default boolean backend
    /// * `sinr` — SINR with [`SinrParams::DEFAULT`]
    /// * `sinr:alpha=A,beta=B,noise=N,kappa=K` — SINR with overrides
    ///   (each key optional, in any order)
    ///
    /// ```
    /// use nss_model::comm::{MediumBackend, SinrParams};
    ///
    /// assert_eq!(
    ///     MediumBackend::parse_spec("unit-disk").unwrap(),
    ///     MediumBackend::UnitDisk
    /// );
    /// let b = MediumBackend::parse_spec("sinr:alpha=4,beta=0.5").unwrap();
    /// assert_eq!(
    ///     b,
    ///     MediumBackend::Sinr(SinrParams { alpha: 4.0, beta: 0.5, ..SinrParams::DEFAULT })
    /// );
    /// assert_eq!(MediumBackend::parse_spec(&b.to_spec()).unwrap(), b);
    /// assert!(MediumBackend::parse_spec("sinr:alpha=-1").is_err());
    /// ```
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "unit-disk" {
            return Ok(MediumBackend::UnitDisk);
        }
        let rest = spec
            .strip_prefix("sinr")
            .ok_or_else(|| format!("unknown medium backend `{spec}` (unit-disk | sinr[:...])"))?;
        let mut p = SinrParams::DEFAULT;
        if let Some(kvs) = rest.strip_prefix(':') {
            for part in kvs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("medium spec item `{part}` is not key=value"))?;
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("bad medium value `{value}` for `{key}`"))?;
                match key {
                    "alpha" => p.alpha = v,
                    "beta" => p.beta = v,
                    "noise" => p.noise = v,
                    "kappa" => p.interference_factor = v,
                    other => return Err(format!("unknown medium spec key `{other}`")),
                }
            }
        } else if !rest.is_empty() {
            return Err(format!("unknown medium backend `{spec}`"));
        }
        let backend = MediumBackend::Sinr(p);
        backend.validate().map_err(|e| e.to_string())?;
        Ok(backend)
    }
}

/// The communication primitives the link-layer models expose (§3.2).
///
/// Both primitives obey the same collision semantics; they differ only in
/// intended recipients. Algorithm-level code declares which primitive it
/// uses so cost accounting can distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Primitive {
    /// One-to-all-neighbors transmission.
    Broadcast,
    /// One-to-one transmission (still overheard/collided per the model).
    Unicast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_factors() {
        assert_eq!(CollisionRule::TransmissionRange.interference_factor(), 1.0);
        assert_eq!(CollisionRule::CARRIER_SENSE_2R.interference_factor(), 2.0);
        assert_eq!(
            CollisionRule::CarrierSense { factor: 3.5 }.interference_factor(),
            3.5
        );
    }

    #[test]
    fn cost_validation() {
        assert!(CostParams::UNIT.validate().is_ok());
        let bad = CostParams {
            t_f: 1.0,
            e_f: 1.0,
            t_a: 2.0,
            e_a: 1.0,
        };
        assert!(bad.validate().is_err());
        let bad = CostParams {
            t_f: 1.0,
            e_f: 0.5,
            t_a: 1.0,
            e_a: 0.9,
        };
        assert!(bad.validate().is_err());
        let bad = CostParams {
            t_f: 0.0,
            e_f: 1.0,
            t_a: 0.0,
            e_a: 1.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn model_costs_select_correct_params() {
        let costs = CostParams {
            t_f: 2.0,
            e_f: 3.0,
            t_a: 1.0,
            e_a: 1.5,
        };
        assert_eq!(CommunicationModel::Cfm.time_cost(&costs), 2.0);
        assert_eq!(CommunicationModel::Cfm.energy_cost(&costs), 3.0);
        assert_eq!(CommunicationModel::CAM.time_cost(&costs), 1.0);
        assert_eq!(CommunicationModel::CAM.energy_cost(&costs), 1.5);
    }

    #[test]
    fn sinr_validation() {
        assert!(SinrParams::DEFAULT.validate().is_ok());
        assert!(MediumBackend::UnitDisk.validate().is_ok());
        let mut p = SinrParams::DEFAULT;
        p.alpha = 0.0;
        assert!(p.validate().is_err());
        let mut p = SinrParams::DEFAULT;
        p.beta = -0.5;
        assert!(p.validate().is_err());
        let mut p = SinrParams::DEFAULT;
        p.noise = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = SinrParams::DEFAULT;
        p.interference_factor = 0.5;
        assert!(MediumBackend::Sinr(p).validate().is_err());
    }

    #[test]
    fn medium_spec_roundtrip() {
        // The vendored serde is a marker-only shim, so the durable wire
        // format is the spec string; round-trip both variants through it.
        for backend in [
            MediumBackend::UnitDisk,
            MediumBackend::Sinr(SinrParams::DEFAULT),
            MediumBackend::Sinr(SinrParams {
                alpha: 2.5,
                beta: 0.25,
                noise: 0.01,
                interference_factor: 4.0,
            }),
        ] {
            let spec = backend.to_spec();
            assert_eq!(MediumBackend::parse_spec(&spec).unwrap(), backend, "{spec}");
        }
        // Defaults and shorthand.
        assert_eq!(
            MediumBackend::parse_spec("").unwrap(),
            MediumBackend::UnitDisk
        );
        assert_eq!(
            MediumBackend::parse_spec("sinr").unwrap(),
            MediumBackend::Sinr(SinrParams::DEFAULT)
        );
        assert_eq!(MediumBackend::default(), MediumBackend::UnitDisk);
    }

    #[test]
    fn medium_spec_errors() {
        assert!(MediumBackend::parse_spec("laser").is_err());
        assert!(MediumBackend::parse_spec("sinrx").is_err());
        assert!(MediumBackend::parse_spec("sinr:alpha").is_err());
        assert!(MediumBackend::parse_spec("sinr:alpha=x").is_err());
        assert!(MediumBackend::parse_spec("sinr:wat=1").is_err());
        assert!(MediumBackend::parse_spec("sinr:beta=-1").is_err()); // fails validate
    }

    #[test]
    fn collision_possibility() {
        assert!(!CommunicationModel::Cfm.collisions_possible());
        assert!(CommunicationModel::CAM.collisions_possible());
        assert!(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R).collisions_possible());
    }
}
