//! Link-wise communication models: CFM and CAM (§3.2 of the paper).
//!
//! * **CFM (Collision Free Model)** — every packet transmission is an atomic
//!   operation guaranteed to succeed, with time cost `t_f` and energy cost
//!   `e_f` charged to the sender and to each receiver.
//! * **CAM (Collision Aware Model)** — transmissions are not guaranteed:
//!   when a node is the target of concurrent transmissions from multiple
//!   neighbors, *none* of them succeeds (Assumption 6). Time/energy costs
//!   are `t_a ≤ t_f`, `e_a ≤ e_f`.
//!
//! The collision scope is configurable: the base model collides concurrent
//! transmissions within the *transmission range* `r`; the Appendix-A variant
//! additionally treats any concurrent transmission within the *carrier-sense
//! range* (typically `2r`) as destructive interference.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Which concurrent transmissions destroy a reception (CAM only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CollisionRule {
    /// A reception at `v` succeeds iff exactly one node within distance `r`
    /// of `v` transmits during the reception (the paper's Assumption 6).
    #[default]
    TransmissionRange,
    /// Additionally, any concurrent transmitter within `factor · r` of `v`
    /// (but beyond `r`) destroys the reception (Appendix A; the paper uses
    /// `factor = 2`).
    CarrierSense {
        /// Carrier-sense range as a multiple of the transmission range.
        factor: f64,
    },
}

impl CollisionRule {
    /// The paper's Appendix-A default: carrier-sense range `2r`.
    pub const CARRIER_SENSE_2R: CollisionRule = CollisionRule::CarrierSense { factor: 2.0 };

    /// The interference radius (in units of `r`) within which a concurrent
    /// transmitter invalidates a reception.
    pub fn interference_factor(&self) -> f64 {
        match self {
            CollisionRule::TransmissionRange => 1.0,
            CollisionRule::CarrierSense { factor } => *factor,
        }
    }
}

/// Per-packet time and energy costs (Assumption 1: identical for sending
/// and receiving a unit-size packet).
///
/// Kept symbolic: the paper's evaluation reports latency in *time phases*
/// and energy as *broadcast count*, so these enter only when converting to
/// physical units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Time cost of a guaranteed (CFM) transmission, `t_f`.
    pub t_f: f64,
    /// Energy cost of a guaranteed (CFM) transmission, `e_f`.
    pub e_f: f64,
    /// Time cost of a best-effort (CAM) transmission, `t_a ≤ t_f`.
    pub t_a: f64,
    /// Energy cost of a best-effort (CAM) transmission, `e_a ≤ e_f`.
    pub e_a: f64,
}

impl CostParams {
    /// Unit costs: one abstract time unit and energy unit per packet in both
    /// models. The paper's evaluation is insensitive to these values.
    pub const UNIT: CostParams = CostParams {
        t_f: 1.0,
        e_f: 1.0,
        t_a: 1.0,
        e_a: 1.0,
    };

    /// Validates the model constraint `t_a ≤ t_f ∧ e_a ≤ e_f` and positivity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("t_f", self.t_f),
            ("e_f", self.e_f),
            ("t_a", self.t_a),
            ("e_a", self.e_a),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(ConfigError::NotPositive { field, value });
            }
        }
        if self.t_a > self.t_f {
            return Err(ConfigError::Exceeds {
                field: "t_a",
                bound: "t_f",
                value: self.t_a,
                limit: self.t_f,
            });
        }
        if self.e_a > self.e_f {
            return Err(ConfigError::Exceeds {
                field: "e_a",
                bound: "e_f",
                value: self.e_a,
                limit: self.e_f,
            });
        }
        Ok(())
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::UNIT
    }
}

/// The link-wise communication model an algorithm is designed against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommunicationModel {
    /// Collision Free Model: transmissions are atomic and always succeed.
    Cfm,
    /// Collision Aware Model with the given collision scope.
    Cam(CollisionRule),
}

impl CommunicationModel {
    /// The paper's default CAM (transmission-range collisions).
    pub const CAM: CommunicationModel = CommunicationModel::Cam(CollisionRule::TransmissionRange);

    /// Whether concurrent transmissions can destroy receptions.
    pub fn collisions_possible(&self) -> bool {
        matches!(self, CommunicationModel::Cam(_))
    }

    /// Per-packet time cost under this model.
    pub fn time_cost(&self, costs: &CostParams) -> f64 {
        match self {
            CommunicationModel::Cfm => costs.t_f,
            CommunicationModel::Cam(_) => costs.t_a,
        }
    }

    /// Per-packet energy cost under this model.
    pub fn energy_cost(&self, costs: &CostParams) -> f64 {
        match self {
            CommunicationModel::Cfm => costs.e_f,
            CommunicationModel::Cam(_) => costs.e_a,
        }
    }
}

/// The communication primitives the link-layer models expose (§3.2).
///
/// Both primitives obey the same collision semantics; they differ only in
/// intended recipients. Algorithm-level code declares which primitive it
/// uses so cost accounting can distinguish them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Primitive {
    /// One-to-all-neighbors transmission.
    Broadcast,
    /// One-to-one transmission (still overheard/collided per the model).
    Unicast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_factors() {
        assert_eq!(CollisionRule::TransmissionRange.interference_factor(), 1.0);
        assert_eq!(CollisionRule::CARRIER_SENSE_2R.interference_factor(), 2.0);
        assert_eq!(
            CollisionRule::CarrierSense { factor: 3.5 }.interference_factor(),
            3.5
        );
    }

    #[test]
    fn cost_validation() {
        assert!(CostParams::UNIT.validate().is_ok());
        let bad = CostParams {
            t_f: 1.0,
            e_f: 1.0,
            t_a: 2.0,
            e_a: 1.0,
        };
        assert!(bad.validate().is_err());
        let bad = CostParams {
            t_f: 1.0,
            e_f: 0.5,
            t_a: 1.0,
            e_a: 0.9,
        };
        assert!(bad.validate().is_err());
        let bad = CostParams {
            t_f: 0.0,
            e_f: 1.0,
            t_a: 0.0,
            e_a: 1.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn model_costs_select_correct_params() {
        let costs = CostParams {
            t_f: 2.0,
            e_f: 3.0,
            t_a: 1.0,
            e_a: 1.5,
        };
        assert_eq!(CommunicationModel::Cfm.time_cost(&costs), 2.0);
        assert_eq!(CommunicationModel::Cfm.energy_cost(&costs), 3.0);
        assert_eq!(CommunicationModel::CAM.time_cost(&costs), 1.0);
        assert_eq!(CommunicationModel::CAM.energy_cost(&costs), 1.5);
    }

    #[test]
    fn collision_possibility() {
        assert!(!CommunicationModel::Cfm.collisions_possible());
        assert!(CommunicationModel::CAM.collisions_possible());
        assert!(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R).collisions_possible());
    }
}
