//! Deterministic fault injection: what can go wrong, specified up front.
//!
//! The paper's Assumption 5 fixes a stable network snapshot — every node
//! alive, every collision-free in-range transmission delivered. A
//! [`FaultPlan`] relaxes that assumption along the axes practitioners ask
//! about (node death, sleep schedules, lossy links, energy exhaustion)
//! while preserving the repository's reproducibility contract: every
//! random fault decision is derived from the dedicated
//! [`Stream::Faults`](crate::rng::Stream::Faults) seed by **stateless
//! hashing**, so executions are bit-identical regardless of thread
//! scheduling, and an empty plan provably draws no randomness at all.
//!
//! The plan is a pure description; the simulator (`nss-sim::faults`)
//! interprets it per phase, and the analytical model mirrors its
//! expectation through `link_q` / `alive_frac` (see `nss-analysis`).

use crate::error::ConfigError;
use crate::rng::splitmix64;
use serde::{Deserialize, Serialize};

/// A scheduled outage window for one node: the node is down from
/// `from_phase` (inclusive) until `until_phase` (exclusive), or forever if
/// `until_phase` is `None`. Phases are 1-based, matching the executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// Node index (0 is the source; scheduling an outage for it is legal
    /// but executors keep the source alive — a dead source is degenerate).
    pub node: u32,
    /// First phase of the outage (1-based, inclusive).
    pub from_phase: u32,
    /// First phase after recovery (exclusive); `None` = never recovers.
    pub until_phase: Option<u32>,
}

impl NodeOutage {
    /// A permanent crash starting at `from_phase`.
    pub fn crash(node: u32, from_phase: u32) -> Self {
        NodeOutage {
            node,
            from_phase,
            until_phase: None,
        }
    }

    /// True when the outage covers `phase`.
    pub fn covers(&self, phase: u32) -> bool {
        phase >= self.from_phase && self.until_phase.is_none_or(|u| phase < u)
    }
}

/// A periodic sleep schedule applied to every non-source node: a node is
/// awake for the first `on_phases` of every `period` phases. Nodes are
/// staggered deterministically by their index so the whole network never
/// sleeps in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DutyCycle {
    /// Cycle length in phases (≥ 1).
    pub period: u32,
    /// Awake phases per cycle (1 ..= period).
    pub on_phases: u32,
}

impl DutyCycle {
    /// True when node `node` is awake during `phase` (1-based).
    pub fn awake(&self, node: u32, phase: u32) -> bool {
        if self.on_phases >= self.period {
            return true;
        }
        // Stagger by node index so neighborhoods stay partially covered.
        let shifted = phase.wrapping_add(node) % self.period;
        shifted < self.on_phases
    }
}

/// Run-level hardware capability of one node, sampled per node from the
/// faults stream (see [`FaultPlan::capability_of`]).
///
/// Generalizes dead-receiver thinning to the heterogeneous deployments of
/// *On Performance of Event-to-Sink Transport in Transmit-Only Sensor
/// Networks*: a transmit-only node has no receiver chain — it can source
/// and send packets but never hears, so it is unreachable by broadcast
/// and never relays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Capability {
    /// Full transceiver: transmits and receives.
    #[default]
    Normal,
    /// Transmitter only: sources/sends packets but never receives.
    TransmitOnly,
    /// Dead for the whole run: neither transmits nor receives.
    Dead,
}

impl Capability {
    /// Whether this class can receive packets.
    pub fn can_receive(&self) -> bool {
        matches!(self, Capability::Normal)
    }

    /// Whether this class can transmit packets.
    pub fn can_transmit(&self) -> bool {
        !matches!(self, Capability::Dead)
    }
}

/// A complete fault scenario for one execution.
///
/// The default ([`FaultPlan::none`]) injects nothing and is guaranteed to
/// leave every executor's output bit-identical to the fault-free code path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Explicit per-node outage windows.
    pub outages: Vec<NodeOutage>,
    /// Optional periodic sleep schedule for all non-source nodes.
    pub duty_cycle: Option<DutyCycle>,
    /// Independent per-(link, slot) packet-loss probability in `[0, 1]`,
    /// applied to otherwise-clean deliveries (lost packets still occupied
    /// the channel, so they collide like any other transmission).
    pub link_loss: f64,
    /// Probability that a non-source node is dead for the entire run
    /// (sampled per node from the faults stream); the
    /// [`Capability::Dead`] class fraction.
    pub dead_frac: f64,
    /// Optional per-node broadcast quota: a node that has transmitted this
    /// many times runs out of energy and dies (stops relaying *and*
    /// receiving).
    pub energy_budget: Option<u32>,
    /// Probability that a non-source node is transmit-only for the entire
    /// run (the [`Capability::TransmitOnly`] class fraction). Sampled from
    /// the *same* per-node draw as `dead_frac`, so adding transmit-only
    /// nodes to a plan never changes *which* nodes the dead fraction
    /// kills. `dead_frac + tx_only_frac` must stay ≤ 1.
    #[serde(default)]
    pub tx_only_frac: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, no randomness consumed.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that only drops links, each delivery independently with
    /// probability `loss`.
    pub fn lossy(loss: f64) -> Self {
        FaultPlan {
            link_loss: loss,
            ..FaultPlan::default()
        }
    }

    /// A plan that kills each non-source node for the whole run with
    /// probability `frac`.
    pub fn thinned(frac: f64) -> Self {
        FaultPlan {
            dead_frac: frac,
            ..FaultPlan::default()
        }
    }

    /// A plan that assigns each non-source node to capability `class` with
    /// probability `frac` (the remainder stay [`Capability::Normal`]).
    ///
    /// `capability(Capability::Dead, f)` is exactly [`FaultPlan::thinned`];
    /// `capability(Capability::Normal, _)` is the empty plan.
    pub fn capability(class: Capability, frac: f64) -> Self {
        match class {
            Capability::Normal => FaultPlan::none(),
            Capability::TransmitOnly => FaultPlan {
                tx_only_frac: frac,
                ..FaultPlan::default()
            },
            Capability::Dead => FaultPlan::thinned(frac),
        }
    }

    /// A plan that makes each non-source node transmit-only for the whole
    /// run with probability `frac`.
    pub fn transmit_only(frac: f64) -> Self {
        FaultPlan::capability(Capability::TransmitOnly, frac)
    }

    /// True when the plan injects nothing; executors take the exact
    /// fault-free code path in that case.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.duty_cycle.is_none()
            && self.link_loss == 0.0
            && self.dead_frac == 0.0
            && self.energy_budget.is_none()
            && self.tx_only_frac == 0.0
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.link_loss) {
            return Err(ConfigError::OutOfUnitRange {
                field: "link_loss",
                value: self.link_loss,
            });
        }
        if !(0.0..=1.0).contains(&self.dead_frac) {
            return Err(ConfigError::OutOfUnitRange {
                field: "dead_frac",
                value: self.dead_frac,
            });
        }
        if !(0.0..=1.0).contains(&self.tx_only_frac) {
            return Err(ConfigError::OutOfUnitRange {
                field: "tx_only_frac",
                value: self.tx_only_frac,
            });
        }
        if self.dead_frac + self.tx_only_frac > 1.0 {
            return Err(ConfigError::Exceeds {
                field: "dead_frac + tx_only_frac",
                bound: "1",
                value: self.dead_frac + self.tx_only_frac,
                limit: 1.0,
            });
        }
        if let Some(d) = self.duty_cycle {
            if d.period < 1 {
                return Err(ConfigError::TooSmall {
                    field: "duty_cycle.period",
                    min: 1,
                    value: u64::from(d.period),
                });
            }
            if d.on_phases < 1 {
                return Err(ConfigError::TooSmall {
                    field: "duty_cycle.on_phases",
                    min: 1,
                    value: u64::from(d.on_phases),
                });
            }
            if d.on_phases > d.period {
                return Err(ConfigError::Exceeds {
                    field: "duty_cycle.on_phases",
                    bound: "duty_cycle.period",
                    value: f64::from(d.on_phases),
                    limit: f64::from(d.period),
                });
            }
        }
        if let Some(b) = self.energy_budget {
            if b < 1 {
                return Err(ConfigError::TooSmall {
                    field: "energy_budget",
                    min: 1,
                    value: u64::from(b),
                });
            }
        }
        for (i, o) in self.outages.iter().enumerate() {
            if o.from_phase < 1 {
                return Err(ConfigError::Inconsistent {
                    what: "outage from_phase must be ≥ 1, outage",
                    at: Some(i),
                });
            }
            if let Some(u) = o.until_phase {
                if u <= o.from_phase {
                    return Err(ConfigError::Inconsistent {
                        what: "outage until_phase must exceed from_phase, outage",
                        at: Some(i),
                    });
                }
            }
        }
        Ok(())
    }

    /// True when node `node` is scheduled awake in `phase` (1-based) by the
    /// deterministic (non-random, non-stateful) parts of the plan: outages
    /// and duty cycling. The source (node 0) is always awake.
    pub fn scheduled_awake(&self, node: u32, phase: u32) -> bool {
        if node == 0 {
            return true;
        }
        if self
            .outages
            .iter()
            .any(|o| o.node == node && o.covers(phase))
        {
            return false;
        }
        if let Some(d) = self.duty_cycle {
            if !d.awake(node, phase) {
                return false;
            }
        }
        true
    }

    /// True when node `node` survives the run-level `dead_frac` thinning
    /// under `faults_seed`. Stateless: a pure hash of `(seed, node)`, so
    /// any thread can evaluate it in any order. The source always survives.
    pub fn survives_thinning(&self, node: u32, faults_seed: u64) -> bool {
        if node == 0 || self.dead_frac <= 0.0 {
            return true;
        }
        if self.dead_frac >= 1.0 {
            return false;
        }
        hash_unit(faults_seed ^ 0xD1E5_F00D, u64::from(node)) >= self.dead_frac
    }

    /// The run-level [`Capability`] class of node `node` under `faults_seed`.
    ///
    /// Stateless, like [`FaultPlan::survives_thinning`], and built on the
    /// *same* per-node draw: the unit interval is partitioned as
    /// `[0, dead_frac)` → [`Capability::Dead`],
    /// `[dead_frac, dead_frac + tx_only_frac)` → [`Capability::TransmitOnly`],
    /// rest → [`Capability::Normal`]. So for every node and seed,
    /// `survives_thinning(n, s) == (capability_of(n, s) != Capability::Dead)`
    /// bit-exactly, and raising `tx_only_frac` never changes which nodes
    /// die. The source (node 0) is always [`Capability::Normal`].
    pub fn capability_of(&self, node: u32, faults_seed: u64) -> Capability {
        if node == 0 {
            return Capability::Normal;
        }
        if self.dead_frac >= 1.0 {
            return Capability::Dead;
        }
        if self.dead_frac <= 0.0 && self.tx_only_frac <= 0.0 {
            return Capability::Normal;
        }
        let u = hash_unit(faults_seed ^ 0xD1E5_F00D, u64::from(node));
        if self.dead_frac > 0.0 && u < self.dead_frac {
            return Capability::Dead;
        }
        if self.tx_only_frac > 0.0 && u < self.dead_frac.max(0.0) + self.tx_only_frac {
            return Capability::TransmitOnly;
        }
        Capability::Normal
    }

    /// Serializes the plan to the compact single-line spec format accepted
    /// by [`FaultPlan::parse_spec`] (and the `repro --faults` flag).
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        if self.link_loss > 0.0 {
            parts.push(format!("loss={}", self.link_loss));
        }
        if self.dead_frac > 0.0 {
            parts.push(format!("dead={}", self.dead_frac));
        }
        if self.tx_only_frac > 0.0 {
            parts.push(format!("txonly={}", self.tx_only_frac));
        }
        if let Some(d) = self.duty_cycle {
            parts.push(format!("duty={}/{}", d.on_phases, d.period));
        }
        if let Some(b) = self.energy_budget {
            parts.push(format!("budget={b}"));
        }
        for o in &self.outages {
            match o.until_phase {
                Some(u) => parts.push(format!("out={}:{}-{}", o.node, o.from_phase, u)),
                None => parts.push(format!("out={}:{}-", o.node, o.from_phase)),
            }
        }
        parts.join(",")
    }

    /// Parses the compact spec format: comma-separated `key=value` pairs.
    ///
    /// * `loss=F` — per-link loss probability
    /// * `dead=F` — dead-from-start node fraction
    /// * `txonly=F` — transmit-only node fraction
    /// * `duty=ON/PERIOD` — duty cycle
    /// * `budget=N` — per-node broadcast quota
    /// * `out=NODE:FROM-UNTIL` — outage window (`UNTIL` empty = forever)
    ///
    /// An empty string parses to the empty plan. The result is validated.
    ///
    /// ```
    /// use nss_model::faults::FaultPlan;
    ///
    /// let plan = FaultPlan::parse_spec("loss=0.2,dead=0.1,duty=3/5").unwrap();
    /// assert_eq!(plan.link_loss, 0.2);
    /// assert_eq!(plan.dead_frac, 0.1);
    /// assert_eq!(plan.to_spec(), "loss=0.2,dead=0.1,duty=3/5");
    /// assert!(FaultPlan::parse_spec("").unwrap().is_empty());
    /// assert!(FaultPlan::parse_spec("loss=2.0").is_err()); // out of range
    /// ```
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            match key {
                "loss" => {
                    plan.link_loss = value
                        .parse()
                        .map_err(|_| format!("bad loss probability `{value}`"))?;
                }
                "dead" => {
                    plan.dead_frac = value
                        .parse()
                        .map_err(|_| format!("bad dead fraction `{value}`"))?;
                }
                "txonly" => {
                    plan.tx_only_frac = value
                        .parse()
                        .map_err(|_| format!("bad transmit-only fraction `{value}`"))?;
                }
                "duty" => {
                    let (on, period) = value
                        .split_once('/')
                        .ok_or_else(|| format!("duty must be ON/PERIOD, got `{value}`"))?;
                    plan.duty_cycle = Some(DutyCycle {
                        on_phases: on.parse().map_err(|_| format!("bad duty `{value}`"))?,
                        period: period.parse().map_err(|_| format!("bad duty `{value}`"))?,
                    });
                }
                "budget" => {
                    plan.energy_budget =
                        Some(value.parse().map_err(|_| format!("bad budget `{value}`"))?);
                }
                "out" => {
                    let (node, window) = value
                        .split_once(':')
                        .ok_or_else(|| format!("out must be NODE:FROM-UNTIL, got `{value}`"))?;
                    let (from, until) = window
                        .split_once('-')
                        .ok_or_else(|| format!("out window must be FROM-UNTIL, got `{value}`"))?;
                    plan.outages.push(NodeOutage {
                        node: node.parse().map_err(|_| format!("bad node `{value}`"))?,
                        from_phase: from.parse().map_err(|_| format!("bad phase `{value}`"))?,
                        until_phase: if until.is_empty() {
                            None
                        } else {
                            Some(until.parse().map_err(|_| format!("bad phase `{value}`"))?)
                        },
                    });
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        plan.validate().map_err(|e| e.to_string())?;
        Ok(plan)
    }
}

/// Stateless uniform draw in `[0, 1)` from `(seed, payload)` via SplitMix64
/// whitening. The top 53 bits give a dyadic rational, so results are exact
/// and platform-independent.
pub fn hash_unit(seed: u64, payload: u64) -> f64 {
    let mut s = seed ^ payload.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_detected() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan::lossy(0.1).is_empty());
        assert!(!FaultPlan::thinned(0.2).is_empty());
        let mut p = FaultPlan::none();
        p.energy_budget = Some(3);
        assert!(!p.is_empty());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(FaultPlan::lossy(1.5).validate().is_err());
        assert!(FaultPlan::lossy(-0.1).validate().is_err());
        assert!(FaultPlan::thinned(2.0).validate().is_err());
        let mut p = FaultPlan::none();
        p.duty_cycle = Some(DutyCycle {
            period: 2,
            on_phases: 3,
        });
        assert!(matches!(p.validate(), Err(ConfigError::Exceeds { .. })));
        p.duty_cycle = Some(DutyCycle {
            period: 0,
            on_phases: 0,
        });
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.energy_budget = Some(0);
        assert!(p.validate().is_err());
        let mut p = FaultPlan::none();
        p.outages.push(NodeOutage {
            node: 1,
            from_phase: 3,
            until_phase: Some(2),
        });
        assert!(p.validate().is_err());
        assert!(FaultPlan::lossy(0.3).validate().is_ok());
    }

    #[test]
    fn outage_windows() {
        let o = NodeOutage {
            node: 4,
            from_phase: 2,
            until_phase: Some(5),
        };
        assert!(!o.covers(1));
        assert!(o.covers(2));
        assert!(o.covers(4));
        assert!(!o.covers(5));
        let crash = NodeOutage::crash(4, 3);
        assert!(crash.covers(3));
        assert!(crash.covers(1000));
        assert!(!crash.covers(2));
    }

    #[test]
    fn duty_cycle_staggered() {
        let d = DutyCycle {
            period: 3,
            on_phases: 1,
        };
        // Each node is awake exactly 1 in 3 phases, staggered by index.
        for node in 0..6u32 {
            let awake: Vec<bool> = (1..=6).map(|ph| d.awake(node, ph)).collect();
            assert_eq!(awake.iter().filter(|&&a| a).count(), 2, "node {node}");
        }
        // Full duty: always awake.
        let full = DutyCycle {
            period: 4,
            on_phases: 4,
        };
        assert!((1..=8).all(|ph| full.awake(3, ph)));
    }

    #[test]
    fn scheduled_awake_composes_sources_of_downtime() {
        let mut p = FaultPlan::none();
        p.outages.push(NodeOutage::crash(2, 3));
        assert!(p.scheduled_awake(2, 2));
        assert!(!p.scheduled_awake(2, 3));
        // The source ignores every schedule.
        p.outages.push(NodeOutage::crash(0, 1));
        assert!(p.scheduled_awake(0, 100));
    }

    #[test]
    fn thinning_is_deterministic_and_proportional() {
        let p = FaultPlan::thinned(0.3);
        let seed = 987;
        let dead: Vec<u32> = (1..=5000)
            .filter(|&u| !p.survives_thinning(u, seed))
            .collect();
        // Deterministic (stateless hash).
        let dead2: Vec<u32> = (1..=5000)
            .filter(|&u| !p.survives_thinning(u, seed))
            .collect();
        assert_eq!(dead, dead2);
        // Roughly 30% die.
        let frac = dead.len() as f64 / 5000.0;
        assert!((0.25..=0.35).contains(&frac), "dead fraction {frac}");
        // Different seeds give different victims.
        let other: Vec<u32> = (1..=5000)
            .filter(|&u| !p.survives_thinning(u, seed + 1))
            .collect();
        assert_ne!(dead, other);
        // The source always survives; extreme fractions behave.
        assert!(p.survives_thinning(0, seed));
        assert!(!FaultPlan::thinned(1.0).survives_thinning(7, seed));
        assert!(FaultPlan::thinned(0.0).survives_thinning(7, seed));
    }

    #[test]
    fn spec_roundtrip() {
        // The vendored serde is a marker-only shim, so the durable wire
        // format is the spec string; round-trip every field through it.
        let mut plan = FaultPlan {
            outages: vec![
                NodeOutage {
                    node: 3,
                    from_phase: 2,
                    until_phase: Some(5),
                },
                NodeOutage::crash(9, 4),
            ],
            duty_cycle: Some(DutyCycle {
                period: 5,
                on_phases: 3,
            }),
            link_loss: 0.25,
            dead_frac: 0.1,
            energy_budget: Some(2),
            tx_only_frac: 0.15,
        };
        let spec = plan.to_spec();
        let parsed = FaultPlan::parse_spec(&spec).expect("roundtrip parse");
        assert_eq!(parsed, plan);
        // Empty plan round-trips through the empty string.
        plan = FaultPlan::none();
        assert_eq!(plan.to_spec(), "");
        assert_eq!(FaultPlan::parse_spec("").unwrap(), plan);
    }

    #[test]
    fn spec_parse_errors() {
        assert!(FaultPlan::parse_spec("loss").is_err());
        assert!(FaultPlan::parse_spec("loss=x").is_err());
        assert!(FaultPlan::parse_spec("loss=1.5").is_err()); // fails validate
        assert!(FaultPlan::parse_spec("duty=3").is_err());
        assert!(FaultPlan::parse_spec("out=3").is_err());
        assert!(FaultPlan::parse_spec("wat=1").is_err());
        let p = FaultPlan::parse_spec(" loss=0.2 , dead=0.1 ").unwrap();
        assert_eq!(p.link_loss, 0.2);
        assert_eq!(p.dead_frac, 0.1);
    }

    #[test]
    fn capability_partitions_the_same_draw_as_thinning() {
        let seed = 987;
        let dead_only = FaultPlan::thinned(0.3);
        let mixed = FaultPlan {
            dead_frac: 0.3,
            tx_only_frac: 0.4,
            ..FaultPlan::default()
        };
        for node in 0..5000u32 {
            // Bit-exact agreement between the legacy predicate and the class.
            assert_eq!(
                dead_only.survives_thinning(node, seed),
                dead_only.capability_of(node, seed) != Capability::Dead,
                "node {node}"
            );
            // Adding a transmit-only fraction never changes who dies.
            assert_eq!(
                mixed.capability_of(node, seed) == Capability::Dead,
                dead_only.capability_of(node, seed) == Capability::Dead,
                "node {node}"
            );
        }
        // Class fractions come out roughly proportional.
        let classes: Vec<Capability> = (1..=5000).map(|u| mixed.capability_of(u, seed)).collect();
        let frac = |c: Capability| {
            classes.iter().filter(|&&x| x == c).count() as f64 / classes.len() as f64
        };
        assert!((0.25..=0.35).contains(&frac(Capability::Dead)));
        assert!((0.35..=0.45).contains(&frac(Capability::TransmitOnly)));
        assert!((0.25..=0.35).contains(&frac(Capability::Normal)));
        // The source is always a full transceiver; no draw → all Normal.
        assert_eq!(mixed.capability_of(0, seed), Capability::Normal);
        assert_eq!(
            FaultPlan::none().capability_of(42, seed),
            Capability::Normal
        );
        // Extremes saturate.
        assert_eq!(
            FaultPlan::thinned(1.0).capability_of(7, seed),
            Capability::Dead
        );
        assert_eq!(
            FaultPlan::transmit_only(1.0).capability_of(7, seed),
            Capability::TransmitOnly
        );
    }

    #[test]
    fn capability_constructors_and_predicates() {
        assert!(FaultPlan::capability(Capability::Normal, 0.5).is_empty());
        assert_eq!(
            FaultPlan::capability(Capability::Dead, 0.2),
            FaultPlan::thinned(0.2)
        );
        let tx = FaultPlan::transmit_only(0.3);
        assert!(!tx.is_empty());
        assert_eq!(tx.tx_only_frac, 0.3);
        assert!(tx.validate().is_ok());
        // Fractions must fit in the unit interval together.
        assert!(FaultPlan::transmit_only(1.5).validate().is_err());
        assert!(FaultPlan::transmit_only(-0.1).validate().is_err());
        let mut p = FaultPlan::thinned(0.7);
        p.tx_only_frac = 0.5;
        assert!(matches!(p.validate(), Err(ConfigError::Exceeds { .. })));
        // Class predicates.
        assert!(Capability::Normal.can_receive() && Capability::Normal.can_transmit());
        assert!(!Capability::TransmitOnly.can_receive());
        assert!(Capability::TransmitOnly.can_transmit());
        assert!(!Capability::Dead.can_receive() && !Capability::Dead.can_transmit());
    }

    #[test]
    fn txonly_spec_roundtrip() {
        let plan = FaultPlan::parse_spec("dead=0.1,txonly=0.2").unwrap();
        assert_eq!(plan.dead_frac, 0.1);
        assert_eq!(plan.tx_only_frac, 0.2);
        assert_eq!(plan.to_spec(), "dead=0.1,txonly=0.2");
        assert!(FaultPlan::parse_spec("txonly=x").is_err());
        assert!(FaultPlan::parse_spec("dead=0.6,txonly=0.6").is_err());
        // Old specs (no txonly key) still parse to tx_only_frac = 0.
        let legacy = FaultPlan::parse_spec("loss=0.2,dead=0.1").unwrap();
        assert_eq!(legacy.tx_only_frac, 0.0);
    }

    #[test]
    fn hash_unit_in_range_and_spread() {
        let vals: Vec<f64> = (0..1000).map(|i| hash_unit(42, i)).collect();
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((0.45..=0.55).contains(&mean), "mean {mean}");
    }
}
