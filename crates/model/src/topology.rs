//! Unit-disk communication graph (Assumptions 1–2 of the paper).
//!
//! The deployment's symmetric graph `G(V, E)` where `(u, v) ∈ E` iff
//! `dist(u, v) ≤ r`. Adjacency is stored in CSR form for cache-friendly
//! iteration — neighbor scans dominate the simulator's inner loop.

use crate::deployment::DeployedNetwork;
use crate::error::ConfigError;
use crate::geometry::Point2;
use crate::ids::NodeId;
use crate::spatial::GridIndex;
use std::collections::VecDeque;

/// Below this node count the builder stays sequential: thread spawn/join
/// overhead exceeds the grid-query work itself.
const PAR_BUILD_THRESHOLD: usize = 8_192;

/// Node ids are `u32` and [`NodeId`]-space reserves `u32::MAX` as a
/// sentinel (`NEVER`, BFS "unvisited"), so a deployment may hold at most
/// `u32::MAX - 1` nodes.
const MAX_NODES: usize = u32::MAX as usize - 1;

/// Rejects node counts that would overflow `u32` node ids.
pub(crate) fn check_node_count(n: usize) -> Result<(), ConfigError> {
    if n > MAX_NODES {
        return Err(ConfigError::Exceeds {
            field: "node count",
            bound: "u32 id space",
            value: n as f64,
            limit: MAX_NODES as f64,
        });
    }
    Ok(())
}

/// Rejects adjacency lengths that would overflow the `u32` CSR offsets.
fn check_adjacency_len(total: u64) -> Result<(), ConfigError> {
    if total > u64::from(u32::MAX) {
        return Err(ConfigError::Exceeds {
            field: "adjacency entries",
            bound: "u32 CSR offset space",
            value: total as f64,
            limit: f64::from(u32::MAX),
        });
    }
    Ok(())
}

/// Telemetry hook for one sharded CSR-build pass. With live
/// instrumentation (`obs` feature), [`BuildStage::finish`] publishes a
/// flight-recorder event spanning the pass, each chunk's wall time into
/// the `<stage>.shard.seconds` histogram, and the max/mean chunk-time
/// ratio into the `<stage>.imbalance` gauge; without it, every method
/// const-folds to nothing and the build is byte-for-byte the
/// uninstrumented one.
struct BuildStage {
    stage: &'static str,
    start_ns: u64,
}

impl BuildStage {
    fn start(stage: &'static str) -> Self {
        BuildStage {
            stage,
            start_ns: Self::clock(),
        }
    }

    /// Nanoseconds on the recorder clock (0 when instrumentation is off).
    #[inline]
    fn clock() -> u64 {
        if nss_obs::enabled() {
            nss_obs::trace::now_ns()
        } else {
            0
        }
    }

    fn finish(self, chunk_ns: &[u64]) {
        if !nss_obs::enabled() || chunk_ns.is_empty() {
            return;
        }
        let end_ns = nss_obs::trace::now_ns();
        nss_obs::trace::record(
            nss_obs::trace::intern(self.stage),
            self.start_ns,
            end_ns.saturating_sub(self.start_ns),
        );
        let reg = nss_obs::registry::Registry::global();
        let hist = reg.histogram(&format!("{}.shard.seconds", self.stage));
        let mut max_ns = 0u64;
        let mut sum_ns = 0u64;
        for &d in chunk_ns {
            hist.record(d as f64 * 1e-9);
            max_ns = max_ns.max(d);
            sum_ns += d;
        }
        let mean_ns = sum_ns as f64 / chunk_ns.len() as f64;
        if mean_ns > 0.0 {
            reg.gauge(&format!("{}.imbalance", self.stage))
                .set(max_ns as f64 / mean_ns);
        }
    }
}

/// Immutable unit-disk topology built from a [`DeployedNetwork`].
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point2>,
    comm_radius: f64,
    /// CSR adjacency: neighbors of `u` are `adj[starts[u]..starts[u+1]]`.
    starts: Vec<u32>,
    adj: Vec<u32>,
    index: GridIndex,
}

impl Topology {
    /// Builds the unit-disk graph. O(N·ρ) expected time via the grid index.
    ///
    /// Panics on invalid deployments (non-positive radius, id-space
    /// overflow); [`Topology::try_build`] is the fallible path.
    pub fn build(net: &DeployedNetwork) -> Self {
        Self::try_build(net)
            // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; try_build() is the fallible path
            .unwrap_or_else(|e| panic!("invalid deployment for Topology::build: {e}"))
    }

    /// Fallible build with automatic thread-count selection (sequential
    /// below `PAR_BUILD_THRESHOLD` (8192) nodes, all cores above).
    pub fn try_build(net: &DeployedNetwork) -> Result<Self, ConfigError> {
        Self::try_build_with_threads(net, 0)
    }

    /// Builds the unit-disk graph with a two-pass counting CSR layout,
    /// sharding the grid-query passes over `threads` workers (0 = pick
    /// automatically). Each node's neighbor row is computed independently
    /// and sorted ascending, so the result is bit-identical at any thread
    /// count.
    pub fn try_build_with_threads(
        net: &DeployedNetwork,
        threads: usize,
    ) -> Result<Self, ConfigError> {
        let positions = net.positions().to_vec();
        let r = net.comm_radius();
        let n = positions.len();
        check_node_count(n)?;
        let index = GridIndex::build(&positions, r)?;

        let nworkers = match threads {
            0 if n < PAR_BUILD_THRESHOLD => 1,
            0 => std::thread::available_parallelism().map_or(1, |t| t.get()),
            t => t,
        }
        .min(n.max(1));

        // Pass 1: count each node's degree (disjoint chunks of `degrees`).
        let chunk = n.div_ceil(nworkers).max(1);
        let mut degrees = vec![0u32; n];
        let count_range = |base: usize, out: &mut [u32]| {
            for (j, d) in out.iter_mut().enumerate() {
                let i = base + j;
                let mut deg = 0u32;
                index.for_each_within(&positions, &positions[i], r, |id| {
                    if id.index() != i {
                        deg += 1;
                    }
                });
                *d = deg;
            }
        };
        let pass1 = BuildStage::start("topo.count");
        let durs: Vec<u64> = if nworkers <= 1 {
            let t0 = BuildStage::clock();
            count_range(0, &mut degrees);
            vec![BuildStage::clock().saturating_sub(t0)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = degrees
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(ci, out)| {
                        let count_range = &count_range;
                        scope.spawn(move || {
                            let t0 = BuildStage::clock();
                            count_range(ci * chunk, out);
                            BuildStage::clock().saturating_sub(t0)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // nss-lint: allow(panic-hygiene) — a panicking builder worker leaves the CSR half-filled; propagating is the only sound option
                    .map(|h| h.join().expect("CSR count worker panicked"))
                    .collect()
            })
        };
        pass1.finish(&durs);

        // Prefix-sum the degrees into CSR row offsets, guarding overflow.
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0u32);
        let mut total = 0u64;
        for &d in &degrees {
            total += u64::from(d);
            check_adjacency_len(total)?;
            starts.push(total as u32);
        }

        // Pass 2: fill each row in place. Rows are disjoint, so the
        // adjacency buffer is handed out as per-chunk sub-slices.
        let mut adj = vec![0u32; total as usize];
        let fill_range = |lo: usize, hi: usize, out: &mut [u32]| {
            let base = starts[lo] as usize;
            for i in lo..hi {
                let row_lo = starts[i] as usize - base;
                let mut cur = row_lo;
                index.for_each_within(&positions, &positions[i], r, |id| {
                    if id.index() != i {
                        out[cur] = id.0;
                        cur += 1;
                    }
                });
                debug_assert_eq!(cur, starts[i + 1] as usize - base);
                // Sorted rows keep `neighbors()` output identical to the
                // previous per-node staging build, bit for bit.
                out[row_lo..cur].sort_unstable();
            }
        };
        let pass2 = BuildStage::start("topo.fill");
        let durs: Vec<u64> = if nworkers <= 1 {
            let t0 = BuildStage::clock();
            fill_range(0, n, &mut adj);
            vec![BuildStage::clock().saturating_sub(t0)]
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                let mut rest: &mut [u32] = &mut adj;
                let mut consumed = 0usize;
                let mut lo = 0usize;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    let end = starts[hi] as usize;
                    let (slice, tail) = rest.split_at_mut(end - consumed);
                    let fill_range = &fill_range;
                    handles.push(scope.spawn(move || {
                        let t0 = BuildStage::clock();
                        fill_range(lo, hi, slice);
                        BuildStage::clock().saturating_sub(t0)
                    }));
                    rest = tail;
                    consumed = end;
                    lo = hi;
                }
                handles
                    .into_iter()
                    // nss-lint: allow(panic-hygiene) — a panicking builder worker leaves the CSR half-filled; propagating is the only sound option
                    .map(|h| h.join().expect("CSR fill worker panicked"))
                    .collect()
            })
        };
        pass2.finish(&durs);

        let topo = Topology {
            positions,
            comm_radius: r,
            starts,
            adj,
            index,
        };
        // Footprint gauge: the CSR arrays dominate resident memory at
        // scale; a live scrape during a million-node build shows the jump.
        nss_obs::gauge!("topo.adjacency.bytes").set(topo.adjacency_bytes() as f64);
        Ok(topo)
    }

    /// Bytes held by the CSR adjacency (offsets + neighbor ids) — the
    /// dominant allocation at scale, reported by the scale benchmark.
    pub fn adjacency_bytes(&self) -> usize {
        (self.starts.len() + self.adj.len()) * std::mem::size_of::<u32>()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the topology has no nodes (never produced by deployments,
    /// which always include the source).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    #[inline]
    pub fn position(&self, id: NodeId) -> Point2 {
        self.positions[id.index()]
    }

    /// All node positions indexed by id.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// The shared communication radius.
    pub fn comm_radius(&self) -> f64 {
        self.comm_radius
    }

    /// Neighbors of `u` (sorted by id).
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        let lo = self.starts[u.index()] as usize;
        let hi = self.starts[u.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Mean degree over all nodes — the empirical ρ.
    pub fn mean_degree(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        self.adj.len() as f64 / self.positions.len() as f64
    }

    /// Calls `f` for each node within distance `radius ≤ r` of an arbitrary
    /// point (used by the carrier-sense medium, which needs 2r-range queries
    /// performed as two hops — see `nss-sim`).
    pub fn for_each_within(&self, center: &Point2, radius: f64, f: impl FnMut(NodeId)) {
        self.index
            .for_each_within(&self.positions, center, radius, f);
    }

    /// BFS hop distance from `src` to every node; `u32::MAX` marks
    /// unreachable nodes. Level 0 is the source itself.
    pub fn bfs_levels(&self, src: NodeId) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        level[src.index()] = 0;
        queue.push_back(src.0);
        while let Some(u) = queue.pop_front() {
            let lu = level[u as usize];
            for &v in self.neighbors(NodeId(u)) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = lu + 1;
                    queue.push_back(v);
                }
            }
        }
        level
    }

    /// Fraction of nodes reachable from the source by multi-hop paths — an
    /// upper bound on any broadcast scheme's reachability.
    pub fn reachable_fraction(&self, src: NodeId) -> f64 {
        let levels = self.bfs_levels(src);
        levels.iter().filter(|&&l| l != u32::MAX).count() as f64 / self.len() as f64
    }

    /// Graph eccentricity of the source in hops (max finite BFS level) — the
    /// CFM flooding latency in units of `t_f`.
    pub fn source_eccentricity(&self, src: NodeId) -> u32 {
        self.bfs_levels(src)
            .iter()
            .copied()
            .filter(|&l| l != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Sizes of the connected components, largest first.
    pub fn component_sizes(&self) -> Vec<usize> {
        let n = self.len();
        let mut comp = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        for s in 0..n {
            if comp[s] != u32::MAX {
                continue;
            }
            let c = sizes.len() as u32;
            let mut size = 0usize;
            let mut queue = VecDeque::new();
            comp[s] = c;
            queue.push_back(s as u32);
            while let Some(u) = queue.pop_front() {
                size += 1;
                for &v in self.neighbors(NodeId(u)) {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = c;
                        queue.push_back(v);
                    }
                }
            }
            sizes.push(size);
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Degree histogram statistics (min, mean, max).
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        let mut min = usize::MAX;
        let mut max = 0usize;
        for u in 0..self.len() {
            let d = self.degree(NodeId(u as u32));
            min = min.min(d);
            max = max.max(d);
        }
        if self.is_empty() {
            (0, 0.0, 0)
        } else {
            (min, self.mean_degree(), max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;

    fn line_topology(n: usize, spacing: f64, r: f64) -> Topology {
        let positions = (0..n)
            .map(|i| Point2::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::build(&DeployedNetwork::from_positions(positions, r))
    }

    #[test]
    fn grid_unit_disk_neighbors() {
        // 3×3 grid, spacing 1, radius 1: orthogonal neighbors only.
        let net = Deployment::Grid(crate::deployment::GridDeployment::new(3, 1.0, 1.0)).sample(0);
        let topo = Topology::build(&net);
        assert_eq!(topo.len(), 9);
        // Source is the center: 4 orthogonal neighbors.
        assert_eq!(topo.degree(NodeId::SOURCE), 4);
        // Corner nodes have degree 2.
        let (min, mean, max) = topo.degree_stats();
        assert_eq!(min, 2);
        assert_eq!(max, 4);
        assert!((mean - 24.0 / 9.0).abs() < 1e-12);
        // Total undirected edges in a 3×3 grid graph: 12.
        assert_eq!(topo.edge_count(), 12);
    }

    #[test]
    fn grid_diagonals_with_larger_radius() {
        // radius √2 picks up diagonals too.
        let net = Deployment::Grid(crate::deployment::GridDeployment::new(
            3,
            1.0,
            2.0f64.sqrt() + 1e-9,
        ))
        .sample(0);
        let topo = Topology::build(&net);
        assert_eq!(topo.degree(NodeId::SOURCE), 8);
    }

    #[test]
    fn bfs_levels_on_grid() {
        let net = Deployment::Grid(crate::deployment::GridDeployment::new(5, 1.0, 1.0)).sample(0);
        let topo = Topology::build(&net);
        let levels = topo.bfs_levels(NodeId::SOURCE);
        // Manhattan distance from center on a 5×5 grid: eccentricity 4.
        assert_eq!(topo.source_eccentricity(NodeId::SOURCE), 4);
        assert_eq!(levels.iter().filter(|&&l| l == u32::MAX).count(), 0);
        assert!((topo.reachable_fraction(NodeId::SOURCE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_adjacency() {
        let net = Deployment::disk(3, 1.0, 30.0).sample(5);
        let topo = Topology::build(&net);
        for u in 0..topo.len() {
            for &v in topo.neighbors(NodeId(u as u32)) {
                assert!(
                    topo.neighbors(NodeId(v)).contains(&(u as u32)),
                    "asymmetric edge {u}-{v}"
                );
            }
        }
    }

    #[test]
    fn mean_degree_tracks_rho() {
        // For dense disks the mean degree should be near ρ (boundary effects
        // pull it slightly below).
        let net = Deployment::disk(5, 1.0, 60.0).sample(9);
        let topo = Topology::build(&net);
        let mean = topo.mean_degree();
        assert!(
            mean > 0.75 * 60.0 && mean < 60.0 * 1.05,
            "mean degree {mean} inconsistent with rho=60"
        );
    }

    #[test]
    fn disconnected_components_detected() {
        // Two distant clusters via a sparse disk: use two grid deployments
        // can't express this; instead take a very sparse disk where isolated
        // nodes are likely.
        let net = Deployment::disk(5, 1.0, 2.0).sample(13);
        let topo = Topology::build(&net);
        let sizes = topo.component_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), topo.len());
        assert!(sizes.len() > 1, "expected a disconnected sparse network");
        assert!(topo.reachable_fraction(NodeId::SOURCE) < 1.0);
    }

    #[test]
    fn line_topology_structure() {
        let t = line_topology(5, 1.0, 1.0);
        assert_eq!(t.len(), 5);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert_eq!(t.source_eccentricity(NodeId::SOURCE), 4);
        assert_eq!(t.component_sizes(), vec![5]);
        // spacing larger than radius → fully disconnected
        let t = line_topology(4, 2.0, 1.0);
        assert_eq!(t.component_sizes(), vec![1, 1, 1, 1]);
        assert_eq!(t.source_eccentricity(NodeId::SOURCE), 0);
        assert!((t.reachable_fraction(NodeId::SOURCE) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn singleton_topology() {
        let t = line_topology(1, 1.0, 1.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.degree(NodeId::SOURCE), 0);
        assert_eq!(t.component_sizes(), vec![1]);
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let net = Deployment::disk(6, 1.0, 40.0).sample(17);
        let seq = Topology::try_build_with_threads(&net, 1).unwrap();
        for threads in [2, 3, 4, 7] {
            let par = Topology::try_build_with_threads(&net, threads).unwrap();
            assert_eq!(seq.starts, par.starts, "threads={threads}");
            assert_eq!(seq.adj, par.adj, "threads={threads}");
        }
    }

    #[test]
    fn node_count_overflow_is_config_error() {
        assert_eq!(check_node_count(MAX_NODES), Ok(()));
        let err = check_node_count(MAX_NODES + 1).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::Exceeds {
                field: "node count",
                ..
            }
        ));
    }

    #[test]
    fn adjacency_overflow_is_config_error() {
        assert_eq!(check_adjacency_len(u64::from(u32::MAX)), Ok(()));
        let err = check_adjacency_len(u64::from(u32::MAX) + 1).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::Exceeds {
                field: "adjacency entries",
                ..
            }
        ));
    }

    #[test]
    fn adjacency_bytes_counts_csr_storage() {
        let t = line_topology(5, 1.0, 1.0);
        // 6 offsets + 8 directed edges, 4 bytes each.
        assert_eq!(t.adjacency_bytes(), (6 + 8) * 4);
    }
}
