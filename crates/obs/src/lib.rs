//! # nss-obs — zero-cost instrumentation for the nss workspace
//!
//! A dependency-free observability facade in the spirit of the `metrics`
//! crate, hand-rolled (like the `vendor/` shims) so the workspace stays
//! hermetic. Three layers:
//!
//! * **Metrics** ([`registry`]) — process-global atomic [`registry::Counter`]s
//!   and fixed-bucket [`registry::Histogram`]s interned by name. Accessed
//!   through the [`counter!`], [`observe!`], and [`set_label!`] macros.
//! * **Spans** ([`mod@span`]) — RAII wall-time timers that record into a
//!   histogram and append to a bounded, thread-safe event sink.
//! * **Provenance** ([`manifest`]) — a [`manifest::RunManifest`] describing
//!   one experiment run (config fingerprint, master seed, `git describe`,
//!   wall time, FNV-64 hashes of every emitted artifact), serialized as
//!   JSON next to the `results/` artifacts it describes.
//!
//! Snapshots export to pretty console tables, JSON, and the Prometheus text
//! exposition format via [`export`].
//!
//! ## Zero cost when disabled
//!
//! Instrumentation *must not* tax the analysis kernel or the simulator when
//! nobody is looking. The `enabled` cargo feature governs the macros:
//!
//! * With `enabled` **off** (default), [`counter!`], [`observe!`],
//!   [`span!`], and [`set_label!`] expand to no-ops — argument expressions
//!   are *not evaluated* — and [`enabled()`] is `const false`, so guarded
//!   measurement code (`if nss_obs::enabled() { … }`) is dead-code
//!   eliminated. Instrumented sweeps are bitwise identical with the feature
//!   on and off; the CI fig4 smoke asserts exactly that.
//! * With `enabled` **on**, counters are single relaxed atomic adds and
//!   histogram records are one atomic add per bucket/sum/count — safe to
//!   leave in warm (not innermost) loops.
//!
//! The [`console`] layer (verbosity-gated status lines) and [`manifest`]
//! are *not* feature-gated: they are user-facing output control and
//! provenance, not hot-path measurement.
//!
//! ```
//! nss_obs::counter!("demo.events").add(3);
//! nss_obs::observe!("demo.latency_seconds", 0.25);
//! {
//!     let _span = nss_obs::span!("demo.work");
//!     // ... timed region ...
//! }
//! if nss_obs::enabled() {
//!     assert_eq!(nss_obs::registry::Registry::global().counter("demo.events").get(), 3);
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod console;
pub mod export;
pub mod http;
pub mod jsonval;
pub mod manifest;
pub mod registry;
pub mod serve;
pub mod span;
pub mod trace;

/// True iff this build carries live instrumentation (`enabled` feature).
///
/// Const-evaluates, so `if nss_obs::enabled() { expensive_measure(); }`
/// compiles to nothing in a disabled build.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Interns (once) and returns the `&'static` [`registry::Counter`] with the
/// given name. Disabled builds get a no-op handle with the same API.
///
/// ```
/// nss_obs::counter!("doc.counter.events").add(2);
/// nss_obs::counter!("doc.counter.events").inc();
/// if nss_obs::enabled() {
///     let reg = nss_obs::registry::Registry::global();
///     assert_eq!(reg.counter("doc.counter.events").get(), 3);
/// }
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __NSS_OBS_COUNTER: ::std::sync::OnceLock<&'static $crate::registry::Counter> =
            ::std::sync::OnceLock::new();
        *__NSS_OBS_COUNTER.get_or_init(|| $crate::registry::Registry::global().counter($name))
    }};
}

/// Disabled: a shared no-op counter; the name expression is not evaluated
/// (it is referenced from a never-called closure so its bindings still
/// count as used).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = || $name;
        &$crate::registry::NOOP_COUNTER
    }};
}

/// Records `$value` (as `f64`) into the named [`registry::Histogram`].
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {{
        static __NSS_OBS_HIST: ::std::sync::OnceLock<&'static $crate::registry::Histogram> =
            ::std::sync::OnceLock::new();
        __NSS_OBS_HIST
            .get_or_init(|| $crate::registry::Registry::global().histogram($name))
            .record($value as f64);
    }};
}

/// Disabled: expands to nothing; neither argument is evaluated (both are
/// referenced from a never-called closure to keep their bindings used).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {{
        let _ = || ($name, $value);
    }};
}

/// Interns (once) and returns the `&'static` [`registry::Gauge`] with the
/// given name. Disabled builds get a no-op handle with the same API.
///
/// ```
/// nss_obs::gauge!("doc.gauge.bytes").set(4096.0);
/// if nss_obs::enabled() {
///     let reg = nss_obs::registry::Registry::global();
///     assert_eq!(reg.gauge("doc.gauge.bytes").get(), 4096.0);
/// }
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __NSS_OBS_GAUGE: ::std::sync::OnceLock<&'static $crate::registry::Gauge> =
            ::std::sync::OnceLock::new();
        *__NSS_OBS_GAUGE.get_or_init(|| $crate::registry::Registry::global().gauge($name))
    }};
}

/// Disabled: a shared no-op gauge; the name expression is not evaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        let _ = || $name;
        &$crate::registry::NOOP_GAUGE
    }};
}

/// Starts an RAII [`trace::TraceSpan`]: on drop it records wall time into
/// the histogram `<name>.seconds` **and** pushes a structured event into
/// the bounded lock-free flight recorder ([`trace`]), from which
/// `--trace-out` dumps a Chrome `trace_event` JSON timeline.
///
/// This is the hot-loop-safe span: recording is a handful of relaxed
/// stores into a per-thread ring, no locking, no allocation, bounded
/// memory. Use it (not [`span!`]) inside per-phase/per-shard loops —
/// `nss-lint`'s feature-hygiene rule enforces exactly that in the hot-path
/// crates.
///
/// ```
/// {
///     let _span = nss_obs::trace_span!("doc.trace.work");
///     // … timed region …
/// }
/// if nss_obs::enabled() {
///     // Wall time landed in the `<name>.seconds` histogram on drop.
///     let reg = nss_obs::registry::Registry::global();
///     assert_eq!(reg.histogram("doc.trace.work.seconds").snapshot().count, 1);
/// }
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {{
        static __NSS_OBS_TRACE: ::std::sync::OnceLock<(&'static $crate::registry::Histogram, u32)> =
            ::std::sync::OnceLock::new();
        let (hist, id) = *__NSS_OBS_TRACE.get_or_init(|| {
            (
                $crate::registry::Registry::global()
                    .histogram(&::std::format!("{}.seconds", $name)),
                $crate::trace::intern($name),
            )
        });
        $crate::trace::TraceSpan::start(hist, id)
    }};
}

/// Disabled: a zero-sized guard; the name expression is not evaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {{
        let _ = || $name;
        $crate::span::NoopSpan
    }};
}

/// Starts an RAII [`span::SpanTimer`]; on drop it records wall time into
/// the histogram `<name>.seconds` and appends to the span event sink.
/// Bind it (`let _span = span!("x");`) — an unbound temporary drops
/// immediately and times nothing.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanTimer::start($name)
    };
}

/// Disabled: a zero-sized guard; the name expression is not evaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        let _ = || $name;
        $crate::span::NoopSpan
    }};
}

/// Sets a free-form string label (e.g. the RNG master seed of the current
/// run) exported alongside the metrics.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! set_label {
    ($key:expr, $value:expr) => {{
        $crate::registry::Registry::global().set_label($key, ::std::format!("{}", $value));
    }};
}

/// Disabled: expands to nothing; neither argument is evaluated.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! set_label {
    ($key:expr, $value:expr) => {{
        let _ = || ($key, $value);
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_reflects_feature() {
        assert_eq!(super::enabled(), cfg!(feature = "enabled"));
    }

    #[test]
    fn macros_compile_in_both_configurations() {
        crate::counter!("lib.test.counter").inc();
        crate::counter!("lib.test.counter").add(2);
        crate::observe!("lib.test.hist", 1.5);
        crate::set_label!("lib.test.label", 42);
        crate::gauge!("lib.test.gauge").set(3.5);
        let _span = crate::span!("lib.test.span");
        let _tspan = crate::trace_span!("lib.test.trace_span");
        #[cfg(feature = "enabled")]
        {
            let reg = crate::registry::Registry::global();
            assert_eq!(reg.counter("lib.test.counter").get(), 3);
        }
    }
}
