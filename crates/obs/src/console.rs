//! Verbosity-gated console output.
//!
//! The experiment pipeline routes all of its ad-hoc progress `println!`s
//! through [`crate::status!`] / [`crate::status_err!`] so a single
//! [`set_verbosity`] call (the `repro --quiet` flag) silences them. This
//! layer is deliberately *not* feature-gated: controlling user-facing
//! output must work in uninstrumented builds too.

use std::sync::atomic::{AtomicU8, Ordering};

/// Suppress all status output.
pub const QUIET: u8 = 0;
/// Normal progress reporting (the default).
pub const NORMAL: u8 = 1;

static VERBOSITY: AtomicU8 = AtomicU8::new(NORMAL);

/// Sets the process-wide console verbosity.
pub fn set_verbosity(level: u8) {
    VERBOSITY.store(level, Ordering::Relaxed);
}

/// Current console verbosity.
pub fn verbosity() -> u8 {
    VERBOSITY.load(Ordering::Relaxed)
}

/// `println!` gated on [`console::verbosity`](verbosity) ≥ `NORMAL`.
#[macro_export]
macro_rules! status {
    ($($arg:tt)*) => {
        if $crate::console::verbosity() >= $crate::console::NORMAL {
            ::std::println!($($arg)*);
        }
    };
}

/// `eprintln!` gated on [`console::verbosity`](verbosity) ≥ `NORMAL`.
#[macro_export]
macro_rules! status_err {
    ($($arg:tt)*) => {
        if $crate::console::verbosity() >= $crate::console::NORMAL {
            ::std::eprintln!($($arg)*);
        }
    };
}

/// `print!` (no trailing newline; table cells) gated like [`status!`].
#[macro_export]
macro_rules! status_inline {
    ($($arg:tt)*) => {
        if $crate::console::verbosity() >= $crate::console::NORMAL {
            ::std::print!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_round_trips() {
        let before = verbosity();
        set_verbosity(QUIET);
        assert_eq!(verbosity(), QUIET);
        crate::status!("this line must not print under QUIET");
        set_verbosity(before);
    }
}
