//! Minimal reusable HTTP/1.1 machinery: request parsing, a method+path
//! [`Router`], and a threaded [`HttpServer`].
//!
//! Extracted from the original fixed-route scrape endpoint in
//! [`crate::serve`] so the workspace has exactly **one** hand-rolled HTTP
//! server. Two consumers with very different profiles share it:
//!
//! * [`crate::serve::MetricsServer`] — one scrape every few seconds,
//!   served inline on the accept thread, one request per connection
//!   (`workers = 0`, `keep_alive = false`). Its responses are pinned
//!   byte-for-byte by socket tests.
//! * `nss-serve` — tens of thousands of queries per second over
//!   persistent connections (`workers = N`, `keep_alive = true`), with
//!   `POST` bodies for batch queries.
//!
//! The design stays deliberately small: blocking I/O, a fixed worker
//! pool fed by one accept thread over an [`std::sync::mpsc`] channel,
//! one in-flight request per connection (no pipelining), `Content-Length`
//! bodies only (no chunked encoding). Read/write deadlines and the
//! HEAD-vs-GET body suppression each live in exactly one place —
//! previously the scrape endpoint repeated them per method arm.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Hard cap on request-head bytes (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8192;

/// A parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Upper-cased method (`GET`, `HEAD`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, without the query string (`/v1/optimal-p`).
    pub path: String,
    /// Raw query string after `?` (empty when absent).
    pub query: String,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of query parameter `key`, percent-decoded (`+` becomes a
    /// space). The first occurrence wins; `None` when absent.
    ///
    /// A key present without `=` decodes to `Some("")`, so handlers can
    /// distinguish `?flag` from a missing parameter.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k) == key).then(|| percent_decode(v))
        })
    }
}

/// Decodes `%XX` escapes and `+` (space) in a path or query component;
/// malformed escapes pass through verbatim rather than being rejected.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response: status code, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (only the codes known to [`status_line`] are used).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (suppressed on the wire for `HEAD` requests; the
    /// `Content-Length` header still reflects it).
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A JSON response with the given status code.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response with the given status code.
    pub fn status_text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }
}

/// The status line fragment (`code reason`) for every code this server
/// emits; unknown codes render as `500 Internal Server Error`.
pub fn status_line(status: u16) -> &'static str {
    match status {
        200 => "200 OK",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        413 => "413 Payload Too Large",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// A method + exact-path router.
///
/// `GET` routes also answer `HEAD` (the body is suppressed at write time,
/// not by the handler). Unknown paths get a `404` listing the registered
/// `GET` paths; known paths hit with the wrong method get a `405` naming
/// the allowed methods — reproducing the pre-extraction scrape endpoint's
/// responses byte for byte.
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, &'static str, Box<Handler>)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.paths())
            .finish()
    }
}

impl Router {
    /// An empty router (every request 404s).
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a handler for `GET` (and `HEAD`) on an exact path.
    pub fn get(
        mut self,
        path: &'static str,
        f: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(("GET", path, Box::new(f)));
        self
    }

    /// Registers a handler for `POST` on an exact path.
    pub fn post(
        mut self,
        path: &'static str,
        f: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(("POST", path, Box::new(f)));
        self
    }

    /// Every registered `(method, path)` pair, in registration order.
    pub fn paths(&self) -> Vec<(&'static str, &'static str)> {
        self.routes.iter().map(|(m, p, _)| (*m, *p)).collect()
    }

    /// Dispatches a request: the matching handler, `404` for unknown
    /// paths, `405` for known paths with the wrong method.
    pub fn route(&self, req: &Request) -> Response {
        let method = if req.method == "HEAD" {
            "GET"
        } else {
            req.method.as_str()
        };
        let mut path_seen = false;
        for (m, p, f) in &self.routes {
            if *p == req.path {
                path_seen = true;
                if *m == method {
                    return f(req);
                }
            }
        }
        if path_seen {
            let allowed: Vec<&str> = self
                .routes
                .iter()
                .filter(|(_, p, _)| *p == req.path)
                .map(|(m, _, _)| *m)
                .collect();
            Response::status_text(405, format!("{} only\n", allowed.join(" or ")))
        } else {
            let gets: Vec<&str> = self
                .routes
                .iter()
                .filter(|(m, _, _)| *m == "GET")
                .map(|(_, p, _)| *p)
                .collect();
            Response::status_text(404, format!("not found; try {}\n", gets.join(", ")))
        }
    }
}

/// Tuning knobs for an [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads handling connections; `0` serves inline on the
    /// accept thread (the scrape-endpoint profile).
    pub workers: usize,
    /// Serve multiple requests per connection until the client closes or
    /// sends `Connection: close`. When `false` every response carries
    /// `Connection: close` and the socket is closed after one exchange.
    ///
    /// A worker is tied to its connection for the connection's lifetime,
    /// so with keep-alive enabled, size `workers` at or above the
    /// expected number of concurrent client connections.
    pub keep_alive: bool,
    /// Per-connection read/write deadline (armed once per connection —
    /// a stuck peer must not wedge a worker).
    pub io_timeout: Duration,
    /// Reject bodies larger than this with `413` (DoS hygiene).
    pub max_body_bytes: usize,
    /// Base name for the server threads.
    pub thread_name: String,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 0,
            keep_alive: false,
            io_timeout: Duration::from_secs(2),
            max_body_bytes: 1 << 20,
            thread_name: "nss-http".to_string(),
        }
    }
}

/// A running HTTP server; shuts down gracefully on
/// [`HttpServer::shutdown`] (also invoked on drop).
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (port 0 picks a free port — read it back with
    /// [`HttpServer::addr`]) and starts the accept loop plus
    /// `opts.workers` connection-handling threads.
    pub fn start(
        addr: impl ToSocketAddrs,
        router: Arc<Router>,
        opts: ServerOptions,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let sender = if opts.workers > 0 {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            let rx = Arc::new(Mutex::new(rx));
            for i in 0..opts.workers {
                let rx = Arc::clone(&rx);
                let router = Arc::clone(&router);
                let opts = opts.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("{}-w{i}", opts.thread_name))
                        .spawn(move || loop {
                            // The guard only spans recv(); recover from a
                            // poisoned lock anyway — one lost worker must
                            // not strand the rest of the pool.
                            let conn = rx
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                // nss-lint: allow(lock-order) — single-consumer handoff: this mutex exists solely to serialize recv() among the workers, is the only lock a worker holds, and nothing else ever takes it
                                .recv();
                            match conn {
                                Ok(stream) => serve_connection(stream, &router, &opts),
                                Err(_) => return, // sender dropped: shutdown
                            }
                        })?,
                );
            }
            Some(tx)
        } else {
            None
        };
        let accept_stop = Arc::clone(&stop);
        let accept_router = router;
        let accept_opts = opts.clone();
        let accept = std::thread::Builder::new()
            .name(format!("{}-accept", opts.thread_name))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    match &sender {
                        Some(tx) => {
                            // A send error means the workers are gone;
                            // dropping the stream resets the connection.
                            let _ = tx.send(stream);
                        }
                        None => serve_connection(stream, &accept_router, &accept_opts),
                    }
                }
                // `sender` drops here, disconnecting the channel so every
                // worker's recv() returns Err → clean pool exit.
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the accept loop, and joins every thread.
    /// Idempotent; also called on drop. In-flight connections finish their
    /// current request.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(2));
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection: the single place deadlines are armed, requests
/// are parsed, and responses are written. GET and HEAD share every byte of
/// this path — HEAD only suppresses the body at the final write.
fn serve_connection(mut stream: TcpStream, router: &Router, opts: &ServerOptions) {
    if stream.set_read_timeout(Some(opts.io_timeout)).is_err()
        || stream.set_write_timeout(Some(opts.io_timeout)).is_err()
    {
        return;
    }
    // Small request/response exchanges: Nagle + delayed ACK would add
    // tens of milliseconds per round trip.
    let _ = stream.set_nodelay(true);
    let mut leftover: Vec<u8> = Vec::new();
    loop {
        let (req, client_close) = match read_request(&mut stream, &mut leftover, opts) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => return, // clean EOF between requests
            Err(status) => {
                // Parse-level failure: best-effort error response, close.
                let resp = Response::status_text(status, format!("{}\n", status_line(status)));
                let _ = write_response(&mut stream, "GET", &resp, true);
                return;
            }
        };
        let close = !opts.keep_alive || client_close;
        let resp = router.route(&req);
        if write_response(&mut stream, &req.method, &resp, close).is_err() || close {
            return;
        }
    }
}

/// Reads one request (head + `Content-Length` body) from the stream and
/// returns it with the client's `Connection: close` hint. `leftover`
/// carries bytes read past the previous request's boundary on a
/// keep-alive connection. `Ok(None)` on clean EOF before any byte of a
/// new request; `Err(status)` on malformed or oversized input.
fn read_request(
    stream: &mut TcpStream,
    leftover: &mut Vec<u8>,
    opts: &ServerOptions,
) -> Result<Option<(Request, bool)>, u16> {
    let mut buf = std::mem::take(leftover);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(413);
        }
        let n = stream.read(&mut chunk).map_err(|_| 400u16)?;
        if n == 0 {
            return if buf.is_empty() { Ok(None) } else { Err(400) };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Err(400);
    }
    let (raw_path, query) = target.split_once('?').unwrap_or((target, ""));
    let mut content_length = 0usize;
    let mut client_close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| 400u16)?;
        } else if name.eq_ignore_ascii_case("connection") {
            client_close = value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > opts.max_body_bytes {
        return Err(413);
    }
    let body_start = head_end + 4;
    let mut body = buf.split_off(body_start.min(buf.len()));
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|_| 400u16)?;
        if n == 0 {
            return Err(400);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    *leftover = body.split_off(content_length.min(body.len()));
    let req = Request {
        method,
        path: percent_decode(raw_path),
        query: query.to_string(),
        body,
    };
    Ok(Some((req, client_close)))
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response. Header order and formatting are pinned by the
/// scrape-endpoint socket tests — do not reorder. `HEAD` suppresses the
/// body bytes but keeps the `Content-Length` of the would-be body.
fn write_response(
    stream: &mut TcpStream,
    method: &str,
    resp: &Response,
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut wire = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        status_line(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if method != "HEAD" {
        wire.push_str(&resp.body);
    }
    stream.write_all(wire.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(router: Router, opts: ServerOptions) -> HttpServer {
        HttpServer::start("127.0.0.1:0", Arc::new(router), opts).expect("bind loopback")
    }

    fn demo_router() -> Router {
        Router::new()
            .get("/hello", |_req| Response::text("hi\n"))
            .get("/echo", |req| {
                Response::text(req.query_param("msg").unwrap_or_default())
            })
            .post("/sum", |req| {
                let n: i64 = String::from_utf8_lossy(&req.body)
                    .split_whitespace()
                    .filter_map(|t| t.parse::<i64>().ok())
                    .sum();
                Response::json(200, format!("{{\"sum\":{n}}}"))
            })
    }

    fn raw_exchange(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("conn");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn routes_get_post_404_405() {
        let server = start(demo_router(), ServerOptions::default());
        let addr = server.addr();
        let (status, body) = crate::serve::http_get(addr, "/hello").expect("get");
        assert_eq!((status, body.as_str()), (200, "hi\n"));
        let (status, body) = crate::serve::http_get(addr, "/echo?msg=a+b%21").expect("get");
        assert_eq!((status, body.as_str()), (200, "a b!"));
        let (status, body) = crate::serve::http_get(addr, "/nope").expect("get");
        assert_eq!(status, 404);
        assert_eq!(body, "not found; try /hello, /echo\n");
        let resp = raw_exchange(addr, "POST /hello HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        assert!(resp.ends_with("GET only\n"), "{resp}");
        let resp = raw_exchange(
            addr,
            "POST /sum HTTP/1.1\r\nContent-Length: 7\r\n\r\n1 2 3 4",
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.ends_with("{\"sum\":10}"), "{resp}");
    }

    #[test]
    fn head_suppresses_body_but_keeps_length() {
        let server = start(demo_router(), ServerOptions::default());
        let resp = raw_exchange(server.addr(), "HEAD /hello HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("Content-Length: 3"), "{resp}");
        assert!(resp.ends_with("\r\n\r\n"), "body must be absent: {resp:?}");
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = start(
            demo_router(),
            ServerOptions {
                workers: 2,
                keep_alive: true,
                ..ServerOptions::default()
            },
        );
        let mut stream =
            TcpStream::connect_timeout(&server.addr(), Duration::from_secs(2)).expect("conn");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        for i in 0..3 {
            stream
                .write_all(format!("GET /echo?msg={i} HTTP/1.1\r\n\r\n").as_bytes())
                .expect("send");
            let mut buf = [0u8; 512];
            let n = stream.read(&mut buf).expect("read");
            let resp = String::from_utf8_lossy(&buf[..n]).into_owned();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
            assert!(resp.ends_with(&i.to_string()), "{resp}");
        }
        // `Connection: close` is honored: response says close, then EOF.
        stream
            .write_all(b"GET /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("send");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).expect("read to EOF");
        assert!(rest.contains("Connection: close"), "{rest}");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let server = start(
            demo_router(),
            ServerOptions {
                max_body_bytes: 8,
                ..ServerOptions::default()
            },
        );
        let resp = raw_exchange(
            server.addr(),
            "POST /sum HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let server = start(demo_router(), ServerOptions::default());
        let resp = raw_exchange(server.addr(), "garbage\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }
}
