//! `nss-obs::serve` — a dependency-free Prometheus scrape endpoint.
//!
//! A [`MetricsServer`] binds a [`std::net::TcpListener`] on a background
//! thread and answers three routes from the **global** metric registry:
//!
//! | route           | content                                          |
//! |-----------------|--------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition ([`crate::export::prometheus`]) |
//! | `/metrics.json` | the JSON dump ([`crate::export::json`])          |
//! | `/healthz`      | `ok` (liveness)                                  |
//!
//! Start it with `repro --metrics-addr 127.0.0.1:9187` (or from
//! `bench_sim`) and point a Prometheus scraper — or `curl` — at it while
//! a sweep runs. Scrapes are snapshots of live atomics: they never pause
//! or perturb the instrumented hot paths.
//!
//! The server is intentionally minimal: one-shot connections
//! (`Connection: close` on every response), GET/HEAD only, one request
//! per connection, connections served sequentially on the accept thread
//! (scrape traffic is one request every few seconds — a thread pool
//! would be pure ceremony). Shutdown is graceful:
//! [`MetricsServer::shutdown`] (also invoked on drop) flags the accept
//! loop and unblocks it with a loopback connection, then joins the
//! thread.
//!
//! Since the `nss-serve` query service landed, the actual HTTP machinery
//! lives in [`crate::http`]; this module is a thin profile over it
//! (`workers = 0`, `keep_alive = false`) plus [`metrics_routes`], which
//! `nss-serve` reuses to mount the identical scrape endpoints next to
//! its query routes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::http::{HttpServer, Response, Router, ServerOptions};

/// Per-connection read/write timeout — a stuck scraper must not wedge the
/// accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Mounts the scrape endpoints — `/metrics`, `/metrics.json`, `/healthz`
/// — onto `router`, all answering from the global registry.
///
/// Shared by [`MetricsServer`] and the `nss-serve` query service so both
/// expose byte-identical scrape routes.
pub fn metrics_routes(router: Router) -> Router {
    router
        .get("/metrics", |_req| Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: crate::export::prometheus(crate::registry::Registry::global()),
        })
        .get("/metrics.json", |_req| {
            Response::json(
                200,
                crate::export::json(crate::registry::Registry::global()),
            )
        })
        .get("/healthz", |_req| Response::text("ok\n"))
}

/// A running scrape server; shuts down gracefully on [`shutdown`]
/// (explicit) or drop.
///
/// [`shutdown`]: MetricsServer::shutdown
#[derive(Debug)]
pub struct MetricsServer {
    inner: HttpServer,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9187"`; port 0 picks a free port —
    /// read it back with [`MetricsServer::addr`]) and starts serving.
    pub fn start(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        let inner = HttpServer::start(
            addr,
            Arc::new(metrics_routes(Router::new())),
            ServerOptions {
                workers: 0,
                keep_alive: false,
                io_timeout: IO_TIMEOUT,
                thread_name: "nss-obs-serve".to_string(),
                ..ServerOptions::default()
            },
        )?;
        Ok(MetricsServer { inner })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops accepting, unblocks the accept loop, and joins the serving
    /// thread. Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

/// Minimal test/smoke client: GETs `path` from `addr` and returns
/// `(status_code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn start_local() -> MetricsServer {
        MetricsServer::start("127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = start_local();
        let (status, body) = http_get(server.addr(), "/healthz").expect("scrape");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = http_get(server.addr(), "/nope").expect("scrape");
        assert_eq!(status, 404);
        // The 404 body is part of the pinned wire format: the router must
        // keep listing the scrape routes exactly as the pre-router server
        // did.
        assert_eq!(body, "not found; try /metrics, /metrics.json, /healthz\n");
    }

    #[test]
    fn metrics_routes_serve_both_formats() {
        // The global registry is process-wide: register through the direct
        // API so this works in both feature configurations.
        let reg = crate::registry::Registry::global();
        reg.counter("serve.test.hits").add(7);
        reg.histogram("serve.test.seconds").record(0.125);
        let server = start_local();

        let (status, text) = http_get(server.addr(), "/metrics").expect("scrape");
        assert_eq!(status, 200);
        assert!(text.contains("nss_serve_test_hits"), "{text}");
        assert!(text.contains("# TYPE nss_serve_test_hits counter"));

        let (status, json) = http_get(server.addr(), "/metrics.json").expect("scrape");
        assert_eq!(status, 200);
        let v = crate::jsonval::Json::parse(&json).expect("valid JSON body");
        assert!(
            v.get("counters")
                .and_then(|c| c.get("serve.test.hits"))
                .and_then(crate::jsonval::Json::as_f64)
                .is_some_and(|n| n >= 7.0),
            "{json}"
        );
    }

    #[test]
    fn scrapes_are_live_while_recording() {
        let reg = crate::registry::Registry::global();
        let counter = reg.counter("serve.test.live");
        let server = start_local();
        let addr = server.addr();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let writer_stop = std::sync::Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            while !writer_stop.load(Ordering::Relaxed) {
                counter.inc();
            }
        });
        let mut last = 0u64;
        for _ in 0..5 {
            let (status, text) = http_get(addr, "/metrics").expect("scrape mid-run");
            assert_eq!(status, 200);
            let v: u64 = text
                .lines()
                .find(|l| l.starts_with("nss_serve_test_live "))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
                .expect("counter line present");
            assert!(v >= last, "scrapes are monotone: {v} < {last}");
            last = v;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
        assert!(last > 0, "writer made progress during scrapes");
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let mut server = start_local();
        let addr = server.addr();
        assert_eq!(http_get(addr, "/healthz").expect("alive").0, 200);
        server.shutdown();
        server.shutdown(); // idempotent
                           // The port no longer answers (connect may succeed briefly on some
                           // platforms' backlog, but a full request must fail).
        let dead = http_get(addr, "/healthz");
        assert!(
            !matches!(dead, Ok((status, _)) if status != 0),
            "server still answering after shutdown: {dead:?}"
        );
    }

    #[test]
    fn post_is_rejected() {
        let server = start_local();
        let mut stream = TcpStream::connect_timeout(&server.addr(), IO_TIMEOUT).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        assert!(response.ends_with("GET only\n"), "{response}");
    }

    #[test]
    fn response_headers_are_byte_identical_to_pre_router_server() {
        let server = start_local();
        let mut stream = TcpStream::connect_timeout(&server.addr(), IO_TIMEOUT).expect("connect");
        stream.set_read_timeout(Some(IO_TIMEOUT)).expect("timeout");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert_eq!(
            response,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: 3\r\nConnection: close\r\n\r\nok\n"
        );
    }
}
