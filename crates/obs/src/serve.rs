//! `nss-obs::serve` — a dependency-free Prometheus scrape endpoint.
//!
//! A [`MetricsServer`] binds a [`std::net::TcpListener`] on a background
//! thread and answers three routes from the **global** metric registry:
//!
//! | route           | content                                          |
//! |-----------------|--------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition ([`crate::export::prometheus`]) |
//! | `/metrics.json` | the JSON dump ([`crate::export::json`])          |
//! | `/healthz`      | `ok` (liveness)                                  |
//!
//! Start it with `repro --metrics-addr 127.0.0.1:9187` (or from
//! `bench_sim`) and point a Prometheus scraper — or `curl` — at it while
//! a sweep runs. Scrapes are snapshots of live atomics: they never pause
//! or perturb the instrumented hot paths.
//!
//! The server is intentionally minimal: HTTP/1.0-style one-shot
//! connections, GET/HEAD only, one request per connection, connections
//! served sequentially on the accept thread (scrape traffic is one
//! request every few seconds — a thread pool would be pure ceremony).
//! Shutdown is graceful: [`MetricsServer::shutdown`] (also invoked on
//! drop) flags the accept loop and unblocks it with a loopback
//! connection, then joins the thread.
//!
//! This module is the architectural seed for the ROADMAP's `nss-serve`
//! query service: same no-deps listener discipline, same exporters.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection read/write timeout — a stuck scraper must not wedge the
/// accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running scrape server; shuts down gracefully on [`shutdown`]
/// (explicit) or drop.
///
/// [`shutdown`]: MetricsServer::shutdown
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9187"`; port 0 picks a free port —
    /// read it back with [`MetricsServer::addr`]) and starts serving.
    pub fn start(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("nss-obs-serve".into())
            .spawn(move || accept_loop(&listener, &thread_stop))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the accept loop, and joins the serving
    /// thread. Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway loopback connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Serve inline: scrapes are rare and the handler only formats a
        // registry snapshot. Errors (hangups, timeouts) drop the
        // connection and keep the loop alive.
        let _ = handle_connection(stream);
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or a sanity cap).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = match (method, path) {
        ("GET" | "HEAD", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::export::prometheus(crate::registry::Registry::global()),
        ),
        ("GET" | "HEAD", "/metrics.json") => (
            "200 OK",
            "application/json",
            crate::export::json(crate::registry::Registry::global()),
        ),
        ("GET" | "HEAD", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".into()),
        ("GET" | "HEAD", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /metrics.json, /healthz\n".into(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "GET only\n".into(),
        ),
    };

    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if method != "HEAD" {
        response.push_str(&body);
    }
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal test/smoke client: GETs `path` from `addr` and returns
/// `(status_code, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_local() -> MetricsServer {
        MetricsServer::start("127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let server = start_local();
        let (status, body) = http_get(server.addr(), "/healthz").expect("scrape");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http_get(server.addr(), "/nope").expect("scrape");
        assert_eq!(status, 404);
    }

    #[test]
    fn metrics_routes_serve_both_formats() {
        // The global registry is process-wide: register through the direct
        // API so this works in both feature configurations.
        let reg = crate::registry::Registry::global();
        reg.counter("serve.test.hits").add(7);
        reg.histogram("serve.test.seconds").record(0.125);
        let server = start_local();

        let (status, text) = http_get(server.addr(), "/metrics").expect("scrape");
        assert_eq!(status, 200);
        assert!(text.contains("nss_serve_test_hits"), "{text}");
        assert!(text.contains("# TYPE nss_serve_test_hits counter"));

        let (status, json) = http_get(server.addr(), "/metrics.json").expect("scrape");
        assert_eq!(status, 200);
        let v = crate::jsonval::Json::parse(&json).expect("valid JSON body");
        assert!(
            v.get("counters")
                .and_then(|c| c.get("serve.test.hits"))
                .and_then(crate::jsonval::Json::as_f64)
                .is_some_and(|n| n >= 7.0),
            "{json}"
        );
    }

    #[test]
    fn scrapes_are_live_while_recording() {
        let reg = crate::registry::Registry::global();
        let counter = reg.counter("serve.test.live");
        let server = start_local();
        let addr = server.addr();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let writer_stop = std::sync::Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            while !writer_stop.load(Ordering::Relaxed) {
                counter.inc();
            }
        });
        let mut last = 0u64;
        for _ in 0..5 {
            let (status, text) = http_get(addr, "/metrics").expect("scrape mid-run");
            assert_eq!(status, 200);
            let v: u64 = text
                .lines()
                .find(|l| l.starts_with("nss_serve_test_live "))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
                .expect("counter line present");
            assert!(v >= last, "scrapes are monotone: {v} < {last}");
            last = v;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
        assert!(last > 0, "writer made progress during scrapes");
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let mut server = start_local();
        let addr = server.addr();
        assert_eq!(http_get(addr, "/healthz").expect("alive").0, 200);
        server.shutdown();
        server.shutdown(); // idempotent
                           // The port no longer answers (connect may succeed briefly on some
                           // platforms' backlog, but a full request must fail).
        let dead = http_get(addr, "/healthz");
        assert!(
            !matches!(dead, Ok((status, _)) if status != 0),
            "server still answering after shutdown: {dead:?}"
        );
    }

    #[test]
    fn post_is_rejected() {
        let server = start_local();
        let mut stream = TcpStream::connect_timeout(&server.addr(), IO_TIMEOUT).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }
}
