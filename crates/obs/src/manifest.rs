//! Run manifests: machine-readable provenance for every `results/` batch.
//!
//! A [`RunManifest`] answers "which code, which configuration, and which
//! seed produced this CSV?" — the question a production sweep service (or a
//! reviewer re-checking a figure) asks first. It records a config
//! fingerprint, the RNG master seed, `git describe` of the working tree,
//! total wall time, an FNV-64 content hash per emitted artifact, and (in
//! instrumented builds) a counter snapshot. Serialized as hand-rolled JSON
//! next to the artifacts it describes.

use crate::export::json_escape;
use crate::registry::Registry;
use std::fmt::Write as _;
use std::path::Path;

/// Manifest schema version; bump on breaking shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the workspace's standard cheap content fingerprint
/// (the same construction `nss-model`'s seed derivation uses on labels).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// `git describe --always --dirty`, or `"unknown"` outside a repo / without
/// a git binary. Never fails.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One emitted artifact: path (relative to the manifest), size, and hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Path as recorded by the producer.
    pub path: String,
    /// File size in bytes.
    pub bytes: u64,
    /// FNV-64 of the file contents.
    pub fnv64: u64,
}

/// Provenance record for one experiment run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Producing tool (e.g. `"repro"`).
    pub tool: String,
    /// `git describe --always --dirty` at run time.
    pub git_describe: String,
    /// RNG master seed the run derived every stream from.
    pub master_seed: u64,
    /// Total wall time of the run, seconds.
    pub wall_s: f64,
    /// Ordered configuration fingerprint (`key`, `value`) pairs.
    pub config: Vec<(String, String)>,
    /// The commands/figures the run executed.
    pub commands: Vec<String>,
    /// Every artifact the run wrote, in emission order.
    pub artifacts: Vec<Artifact>,
    /// Counter snapshot at write time (empty in uninstrumented builds).
    pub counters: Vec<(String, u64)>,
}

impl RunManifest {
    /// Creates an empty manifest for `tool`, stamping `git describe` now.
    pub fn new(tool: &str, master_seed: u64) -> Self {
        RunManifest {
            tool: tool.to_string(),
            git_describe: git_describe(),
            master_seed,
            wall_s: 0.0,
            config: Vec::new(),
            commands: Vec::new(),
            artifacts: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Appends a configuration fingerprint entry.
    pub fn config_entry(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Hashes `path`'s current contents and records it as an artifact.
    /// Unreadable files are recorded with size 0 / hash 0 rather than
    /// aborting a finished run.
    pub fn add_artifact(&mut self, path: &Path) {
        let (bytes, hash) = match std::fs::read(path) {
            Ok(data) => (data.len() as u64, fnv64(&data)),
            Err(_) => (0, 0),
        };
        self.artifacts.push(Artifact {
            path: path.to_string_lossy().into_owned(),
            bytes,
            fnv64: hash,
        });
    }

    /// Captures the current global counter snapshot into the manifest.
    pub fn capture_counters(&mut self) {
        self.counters = Registry::global().counters_snapshot();
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"tool\": \"{}\",", json_escape(&self.tool));
        let _ = writeln!(
            out,
            "  \"git_describe\": \"{}\",",
            json_escape(&self.git_describe)
        );
        let _ = writeln!(out, "  \"master_seed\": {},", self.master_seed);
        let _ = writeln!(out, "  \"wall_s\": {:.3},", self.wall_s);
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("\n  },\n  \"commands\": [");
        for (i, c) in self.commands.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(c));
        }
        out.push_str("],\n  \"artifacts\": [");
        for (i, a) in self.artifacts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": \"{}\", \"bytes\": {}, \"fnv64\": \"{:016x}\"}}",
                json_escape(&a.path),
                a.bytes,
                a.fnv64
            );
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Writes the JSON manifest to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_round_trip_shape() {
        let mut m = RunManifest::new("test-tool", 2005);
        m.wall_s = 1.5;
        m.config_entry("rho_axis", "20..140");
        m.config_entry("quad_points", 64);
        m.commands.push("fig4".into());
        let dir = std::env::temp_dir().join("nss_obs_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("sample.csv");
        std::fs::write(&csv, b"a,b\n1,2\n").unwrap();
        m.add_artifact(&csv);
        let json = m.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"master_seed\": 2005"));
        assert!(json.contains("\"quad_points\": \"64\""));
        assert!(json.contains("\"fnv64\""));
        assert!(json.contains(&format!("{:016x}", fnv64(b"a,b\n1,2\n"))));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let out = dir.join("RUN_MANIFEST.json");
        m.write(&out).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), json);
    }

    #[test]
    fn missing_artifact_is_tolerated() {
        let mut m = RunManifest::new("t", 0);
        m.add_artifact(Path::new("/nonexistent/never/there.csv"));
        assert_eq!(m.artifacts[0].bytes, 0);
        assert_eq!(m.artifacts[0].fnv64, 0);
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
