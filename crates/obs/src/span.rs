//! RAII wall-time spans with a bounded, thread-safe event sink.
//!
//! A [`SpanTimer`] measures the wall time between construction and drop,
//! records it into the histogram `<name>.seconds`, and appends a
//! [`SpanEvent`] to the global sink (capped — old events are dropped and
//! counted in `obs.span_events_dropped` rather than growing without bound).

use crate::registry::Registry;
use std::sync::Mutex;
use std::time::Instant;

/// Maximum events retained in the sink.
pub const SINK_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (the histogram it recorded into is `<name>.seconds`).
    pub name: &'static str,
    /// Wall time in seconds.
    pub seconds: f64,
}

fn sink() -> &'static Mutex<Vec<SpanEvent>> {
    static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
    &SINK
}

/// Copies out every retained span event, oldest first.
pub fn events() -> Vec<SpanEvent> {
    sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Clears the sink.
pub fn clear_events() {
    sink()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// An in-flight span; finishes (records + reports) on drop.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    start: Instant,
    report: bool,
}

impl SpanTimer {
    /// Starts a span.
    pub fn start(name: &'static str) -> Self {
        SpanTimer {
            name,
            start: Instant::now(),
            report: false,
        }
    }

    /// Starts a span that additionally prints a verbosity-gated
    /// `name: X.XXs` console status line when it finishes — the exporter
    /// the experiment pipeline routes its per-figure progress through.
    pub fn start_reported(name: &'static str) -> Self {
        SpanTimer {
            name,
            start: Instant::now(),
            report: true,
        }
    }

    /// Seconds elapsed so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let seconds = self.elapsed_seconds();
        Registry::global()
            .histogram(&format!("{}.seconds", self.name))
            .record(seconds);
        let mut sink = sink()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dropped = sink.len() >= SINK_CAPACITY;
        if dropped {
            sink.remove(0); // evict the oldest; keep the newest
        }
        sink.push(SpanEvent {
            name: self.name,
            seconds,
        });
        drop(sink);
        if dropped {
            Registry::global().counter("obs.span_events_dropped").inc();
        }
        if self.report {
            crate::status!("  [span] {}: {:.2}s", self.name, seconds);
        }
    }
}

/// Zero-sized guard returned by [`crate::span!`] in disabled builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSpan;

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is global; serialize the tests that reset it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn span_records_event_and_histogram() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        {
            let s = SpanTimer::start("span.test.unit");
            assert!(s.elapsed_seconds() >= 0.0);
        }
        let evs = events();
        let ev = evs
            .iter()
            .find(|e| e.name == "span.test.unit")
            .expect("event recorded");
        assert!(ev.seconds >= 0.0);
        assert!(
            Registry::global()
                .histogram("span.test.unit.seconds")
                .count()
                >= 1
        );
    }

    #[test]
    fn sink_is_bounded() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        for _ in 0..(SINK_CAPACITY + 10) {
            let _s = SpanTimer::start("span.test.flood");
        }
        assert_eq!(events().len(), SINK_CAPACITY);
        assert!(Registry::global().counter("obs.span_events_dropped").get() >= 10);
    }
}
