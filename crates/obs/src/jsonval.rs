//! A minimal strict JSON reader (RFC 8259 subset) for tooling that must
//! *consume* JSON — `bench_check` diffing `BENCH_*.json` artifacts, tests
//! round-tripping `/metrics.json` — while the workspace stays
//! dependency-free.
//!
//! Objects preserve insertion order as `Vec<(String, Json)>` (no hash-map
//! iteration-order leaks; see the `determinism` lint rule). Numbers are
//! `f64`, which is exact for every integer the exporters emit (counters
//! fit 2^53 in practice) and the right type for the timing fields the
//! regression gate compares.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: decode the low half if present.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn structures_and_accessors() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().unwrap().len(), 2);
    }

    #[test]
    fn object_order_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn errors_are_reported() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn exporter_output_parses() {
        // The registry JSON exporter's own output must round-trip.
        let reg = crate::registry::Registry::default();
        reg.counter("a.b").add(3);
        reg.histogram("h").record(0.25);
        reg.set_label("k", "v \"quoted\"".into());
        let v = Json::parse(&crate::export::json(&reg)).expect("exporter emits valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.b"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("labels")
                .and_then(|l| l.get("k"))
                .and_then(Json::as_str),
            Some("v \"quoted\"")
        );
    }
}
