//! The flight recorder: a bounded, lock-free ring of structured span
//! events, dumped on demand as Chrome `trace_event` JSON (loads directly
//! in Perfetto / `chrome://tracing`).
//!
//! ## Why not the [`mod@crate::span`] sink?
//!
//! The span event sink is a mutex-guarded `Vec` with front eviction —
//! fine for a handful of per-figure spans, hostile to hot loops: every
//! event takes a lock and eviction is `O(n)`. The flight recorder instead
//! gives every thread its own fixed-capacity ring:
//!
//! * **Recording is wait-free for the owning thread.** A thread writes
//!   only its own ring — plain relaxed stores into pre-allocated slots
//!   plus one release store of the slot sequence number. No CAS loops, no
//!   locks, no allocation after ring creation.
//! * **Memory is bounded by construction.** Each ring holds
//!   [`RING_CAPACITY`] events; older events are overwritten (newest-wins)
//!   and the overwrite count is reported, never silently dropped. Rings
//!   are pooled, not leaked per thread: a thread-exit destructor returns
//!   the ring (events intact) to a free list and the next recording
//!   thread reuses it, so total ring memory is bounded by the *peak
//!   number of concurrently recording threads* — short-lived worker
//!   threads (e.g. one replication per scoped thread) recycle the same
//!   few rings instead of growing the recorder without bound.
//! * **Readers never block writers.** [`events`] snapshots the rings with
//!   a per-slot seqlock: read the sequence, copy the payload, re-read the
//!   sequence, discard on mismatch. A torn read is detected, not returned.
//!   Because each ring has exactly one writer (its owning thread), the
//!   seqlock validation is sound.
//!
//! Spans enter through [`crate::trace_span!`], which also records the
//! `<name>.seconds` histogram so scrape-time quantiles and the timeline
//! stay consistent. Names are interned to `u32` ids once per call site.

use crate::registry::Histogram;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Events retained per ring. Power of two so the slot index is a mask;
/// 16Ki events × 32 bytes ≈ 512 KiB per ring (rings are pooled across
/// short-lived threads, see the module docs).
pub const RING_CAPACITY: usize = 1 << 14;

/// One recorded span, copied out of a ring by [`events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned name id; resolve with [`name_of`].
    pub name_id: u32,
    /// Small dense id of the recording thread (trace lane).
    pub tid: u32,
    /// Span start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

struct Slot {
    /// 0 = never written; otherwise `head + 1` at the time of the write,
    /// stored release *after* the payload so readers can validate.
    seq: AtomicU64,
    name_tid: AtomicU64, // name_id << 32 | tid
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

/// One thread's ring. Only the owning thread writes; any thread may read
/// (seqlock-validated).
struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever recorded into this ring.
    head: AtomicU64,
    tid: u32,
}

impl Ring {
    fn record(&self, name_id: u32, start_ns: u64, dur_ns: u64) {
        // nss-lint: allow(atomic-protocol) — head is single-writer (this thread); readers only use it as a hint and revalidate every slot via seq
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i as usize) & (RING_CAPACITY - 1)];
        // Single-writer seqlock write (Boehm): invalidate, release fence
        // (orders the invalidation before the payload stores), payload,
        // release publish (orders the payload before the new sequence).
        // nss-lint: allow(atomic-protocol) — the Release fence below orders this invalidation before the payload stores
        slot.seq.store(0, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        // nss-lint: allow(atomic-protocol) — payload store: ordered after the invalidation by the Release fence above, before publication by the Release store of seq below
        slot.name_tid.store(
            (u64::from(name_id) << 32) | u64::from(self.tid),
            Ordering::Relaxed,
        );
        // nss-lint: allow(atomic-protocol) — payload store: same seqlock-write ordering as name_tid above
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        // nss-lint: allow(atomic-protocol) — payload store: same seqlock-write ordering as name_tid above
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.seq.store(i + 1, Ordering::Release);
        // nss-lint: allow(atomic-protocol) — single-writer head bump; the slot itself was already published by the Release store of seq
        self.head.store(i + 1, Ordering::Relaxed);
    }
}

struct Recorder {
    rings: Mutex<Vec<&'static Ring>>,
    /// Rings whose owning thread has exited, available for reuse. A pooled
    /// ring stays registered in `rings` (its events remain visible to
    /// [`events`]); the pool mutex hands single-writer ownership to the
    /// next thread.
    free: Mutex<Vec<&'static Ring>>,
    names: Mutex<Vec<&'static str>>,
    next_tid: AtomicU32,
    epoch: Instant,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        names: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(0),
        epoch: Instant::now(),
    })
}

/// Owns a ring for the lifetime of one thread; on thread exit the ring is
/// returned to the free pool for the next recording thread.
struct RingGuard(&'static Ring);

impl Drop for RingGuard {
    fn drop(&mut self) {
        recorder()
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(self.0);
    }
}

thread_local! {
    static LOCAL_RING: std::cell::RefCell<Option<RingGuard>> =
        const { std::cell::RefCell::new(None) };
}

fn acquire_ring() -> &'static Ring {
    let rec = recorder();
    if let Some(ring) = rec
        .free
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pop()
    {
        return ring;
    }
    let ring: &'static Ring = Box::leak(Box::new(Ring {
        slots: (0..RING_CAPACITY)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                name_tid: AtomicU64::new(0),
                start_ns: AtomicU64::new(0),
                dur_ns: AtomicU64::new(0),
            })
            .collect(),
        head: AtomicU64::new(0),
        tid: rec.next_tid.fetch_add(1, Ordering::Relaxed),
    }));
    rec.rings
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(ring);
    ring
}

/// Runs `f` with the calling thread's ring, acquiring one (pooled or
/// fresh) on first use. Returns `None` — dropping the event — only in the
/// narrow window where the thread's TLS is already being torn down.
fn with_local_ring<R>(f: impl FnOnce(&'static Ring) -> R) -> Option<R> {
    LOCAL_RING
        .try_with(|cell| {
            let mut guard = cell.borrow_mut();
            let ring = guard.get_or_insert_with(|| RingGuard(acquire_ring())).0;
            f(ring)
        })
        .ok()
}

/// Rings allocated so far (live + pooled). Bounded by the peak number of
/// concurrently recording threads, not by the total threads ever spawned.
pub fn ring_count() -> usize {
    recorder()
        .rings
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}

/// Interns a span name, returning its dense id. Call once per call site
/// (the [`crate::trace_span!`] macro caches the id in a `OnceLock`).
pub fn intern(name: &'static str) -> u32 {
    let mut names = recorder()
        .names
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(i) = names.iter().position(|&n| n == name) {
        return i as u32;
    }
    names.push(name);
    (names.len() - 1) as u32
}

/// Resolves an interned id back to its name (`"?"` for unknown ids).
pub fn name_of(id: u32) -> &'static str {
    recorder()
        .names
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// Nanoseconds since the recorder epoch (the first use of any trace API
/// in the process).
pub fn now_ns() -> u64 {
    recorder().epoch.elapsed().as_nanos() as u64
}

/// Records a completed span directly (the RAII path is
/// [`crate::trace_span!`] / [`TraceSpan`]).
pub fn record(name_id: u32, start_ns: u64, dur_ns: u64) {
    with_local_ring(|ring| ring.record(name_id, start_ns, dur_ns));
}

/// An in-flight flight-recorder span; on drop it records into both the
/// `<name>.seconds` histogram and the owning thread's ring.
#[derive(Debug)]
pub struct TraceSpan {
    hist: &'static Histogram,
    name_id: u32,
    start_ns: u64,
}

impl TraceSpan {
    /// Starts a span (used by the [`crate::trace_span!`] macro, which
    /// resolves `hist` and `name_id` once per call site).
    pub fn start(hist: &'static Histogram, name_id: u32) -> Self {
        TraceSpan {
            hist,
            name_id,
            start_ns: now_ns(),
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let end = now_ns();
        let dur = end.saturating_sub(self.start_ns);
        self.hist.record(dur as f64 * 1e-9);
        record(self.name_id, self.start_ns, dur);
    }
}

/// Snapshot of the recorder: all retained events (sorted by start time)
/// plus the number of events overwritten by ring wrap-around.
pub fn events() -> (Vec<TraceEvent>, u64) {
    let rings: Vec<&'static Ring> = recorder()
        .rings
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut out = Vec::new();
    let mut overwritten = 0u64;
    for ring in rings {
        let head = ring.head.load(Ordering::Acquire);
        overwritten += head.saturating_sub(RING_CAPACITY as u64);
        let live = head.min(RING_CAPACITY as u64) as usize;
        for k in 0..live {
            let slot = &ring.slots[k];
            // Seqlock read: seq, payload, seq again. The owning thread may
            // be overwriting this slot concurrently; a changed or zero
            // sequence means the copy may be torn, so it is discarded.
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 {
                continue;
            }
            // nss-lint: allow(atomic-protocol) — seqlock payload reads: ordered after seq1 by its Acquire load, before seq2 by the Acquire fence below; a torn read is discarded by the seq1 != seq2 check
            let name_tid = slot.name_tid.load(Ordering::Relaxed);
            // nss-lint: allow(atomic-protocol) — payload read: same seqlock-read ordering as name_tid above
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            // nss-lint: allow(atomic-protocol) — payload read: same seqlock-read ordering as name_tid above
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            // Acquire fence: the payload loads above cannot sink past the
            // validation load below.
            std::sync::atomic::fence(Ordering::Acquire);
            // nss-lint: allow(atomic-protocol) — validation load: the Acquire fence above keeps the payload loads from sinking below it
            let seq2 = slot.seq.load(Ordering::Relaxed);
            if seq1 != seq2 {
                continue;
            }
            out.push(TraceEvent {
                name_id: (name_tid >> 32) as u32,
                tid: name_tid as u32,
                start_ns,
                dur_ns,
            });
        }
    }
    out.sort_by_key(|e| (e.start_ns, e.tid, e.dur_ns, e.name_id));
    (out, overwritten)
}

/// Renders the recorder as Chrome `trace_event` JSON (the "JSON Array
/// Format" object variant): complete (`"ph": "X"`) events with
/// microsecond timestamps, one `tid` lane per ring (successive
/// short-lived threads reuse pooled rings, so a lane reads as a worker
/// slot rather than an OS thread).
pub fn chrome_trace_json() -> String {
    use std::fmt::Write;
    let (evs, overwritten) = events();
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    for (i, e) in evs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"cat\": \"nss\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
            crate::export::json_escape(name_of(e.name_id)),
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid,
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"otherData\": {{\"events\": {}, \"overwritten\": {overwritten}}}\n}}\n",
        evs.len()
    );
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolvable() {
        let a = intern("trace.test.alpha");
        let b = intern("trace.test.alpha");
        assert_eq!(a, b);
        assert_eq!(name_of(a), "trace.test.alpha");
        assert_ne!(a, intern("trace.test.beta"));
        assert_eq!(name_of(u32::MAX), "?");
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let id = intern("trace.test.rt");
        let t0 = now_ns();
        record(id, t0, 1_500);
        let (evs, _) = events();
        let ev = evs
            .iter()
            .find(|e| e.name_id == id && e.start_ns == t0)
            .expect("event retained");
        assert_eq!(ev.dur_ns, 1_500);
    }

    #[test]
    fn trace_span_records_histogram_and_event() {
        let hist = crate::registry::Registry::global().histogram("trace.test.span.seconds");
        let before = hist.count();
        let id = intern("trace.test.span");
        {
            let _s = TraceSpan::start(hist, id);
        }
        assert_eq!(hist.count(), before + 1);
        let (evs, _) = events();
        assert!(evs.iter().any(|e| e.name_id == id));
    }

    #[test]
    fn ring_is_bounded_and_reports_overwrites() {
        // Flood one thread's ring well past capacity from a dedicated
        // thread so other tests' events are unaffected.
        let id = intern("trace.test.flood");
        std::thread::spawn(move || {
            for i in 0..(RING_CAPACITY as u64 + 100) {
                record(id, i, 1);
            }
        })
        .join()
        .expect("flood thread");
        let (evs, overwritten) = events();
        let flood: Vec<_> = evs.iter().filter(|e| e.name_id == id).collect();
        assert!(flood.len() <= RING_CAPACITY);
        assert!(overwritten >= 100);
        // Newest events survive: the final start_ns values are present.
        assert!(flood
            .iter()
            .any(|e| e.start_ns == RING_CAPACITY as u64 + 99));
    }

    #[test]
    fn events_are_sorted_and_multi_thread_lanes_distinct() {
        let id = intern("trace.test.lanes");
        // The barrier keeps all three threads alive (rings held) while
        // each records: concurrent recorders must occupy distinct rings.
        // Without it a finished thread could return its ring to the pool
        // for the next one to reuse, merging the lanes.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(3));
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    record(id, 10 + k, 5);
                    barrier.wait();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("lane thread");
        }
        let (evs, _) = events();
        let lanes: std::collections::BTreeSet<u32> = evs
            .iter()
            .filter(|e| e.name_id == id && e.start_ns >= 10 && e.start_ns < 13)
            .map(|e| e.tid)
            .collect();
        assert_eq!(lanes.len(), 3, "each thread records in its own lane");
        assert!(evs.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn sequential_threads_reuse_pooled_rings() {
        let id = intern("trace.test.pool");
        // Strictly sequential short-lived threads: each one's ring returns
        // to the pool before the next starts, so they must recycle rings
        // instead of allocating one each. Other tests run concurrently and
        // may take from / add to the pool, hence the slack in the bound.
        let before = ring_count();
        for i in 0..32u64 {
            std::thread::spawn(move || record(id, i, 1))
                .join()
                .expect("pool thread");
        }
        let grown = ring_count().saturating_sub(before);
        assert!(grown <= 4, "32 sequential threads allocated {grown} rings");
        // The events themselves survive the handoffs.
        let (evs, _) = events();
        let kept = evs.iter().filter(|e| e.name_id == id).count();
        assert_eq!(kept, 32);
    }

    #[test]
    fn chrome_trace_shape() {
        let id = intern("trace.test.chrome\"quote");
        record(id, 2_000, 3_000);
        let j = chrome_trace_json();
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("trace.test.chrome\\\"quote"));
        // ts/dur are microseconds: 2000ns = 2.000us, 3000ns = 3.000us.
        assert!(j.contains("\"ts\": 2.000"), "{j}");
        assert!(j.contains("\"dur\": 3.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
