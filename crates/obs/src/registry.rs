//! The global metric registry: named atomic counters and fixed-bucket
//! histograms.
//!
//! Metrics are interned by name on first use and live for the process
//! lifetime (`Box::leak` — the set of metric names is a small static
//! vocabulary, so the leak is bounded). Handles are `&'static`, so the hot
//! path after interning is a single relaxed atomic add with no locking;
//! the [`crate::counter!`] macro additionally caches the handle in a
//! per-call-site `OnceLock`, so the registry lock is taken once per call
//! site, ever.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a free-standing counter (registry-less; mostly for tests).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (relaxed; counters are statistical, not synchronizing).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The shared no-op counter handle returned by [`crate::counter!`] in
/// disabled builds. Same API as [`Counter`], zero behavior.
pub static NOOP_COUNTER: NoopCounter = NoopCounter;

/// Zero-sized stand-in for [`Counter`] when instrumentation is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCounter;

impl NoopCounter {
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Number of finite histogram bucket bounds (one overflow bucket follows).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Upper bound of finite bucket `i`: `2^(i − 21)`.
///
/// Covers ~0.5 µs … ~1000 s with two buckets per decade-ish — sized for
/// wall-clock observations (sweep cells, replications, figure spans) while
/// remaining serviceable for any positive magnitude.
#[inline]
pub fn bucket_bound(i: usize) -> f64 {
    f64::powi(2.0, i as i32 - 21)
}

/// A fixed-bucket histogram (power-of-two bounds, see [`bucket_bound`]),
/// recording count, sum, min, and max alongside the bucket counts.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts observations `v ≤ bucket_bound(i)`; the final
    /// slot is the +∞ overflow bucket. Non-cumulative; exporters integrate.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    /// Sum of observations, stored as `f64::to_bits` and updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket but excluded from sum/min/max, so a stray NaN can
    /// never poison the aggregates.
    pub fn record(&self, v: f64) {
        let idx = if v.is_finite() {
            self.buckets
                .iter()
                .take(HISTOGRAM_BUCKETS)
                .enumerate()
                .find_map(|(i, _)| (v <= bucket_bound(i)).then_some(i))
                .unwrap_or(HISTOGRAM_BUCKETS)
        } else {
            HISTOGRAM_BUCKETS
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            fetch_update_f64(&self.sum_bits, |s| s + v);
            fetch_update_f64(&self.min_bits, |m| m.min(v));
            fetch_update_f64(&self.max_bits, |m| m.max(v));
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            sum,
            min: if count > 0 && min.is_finite() {
                Some(min)
            } else {
                None
            },
            max: if count > 0 && max.is_finite() {
                Some(max)
            } else {
                None
            },
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation, if any.
    pub min: Option<f64>,
    /// Largest finite observation, if any.
    pub max: Option<f64>,
    /// Per-bucket (non-cumulative) counts; last entry is the +∞ bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The process-global metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
    labels: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Interns (on first use) and returns the counter named `name`.
    ///
    /// Lock poisoning is recovered with `into_inner` here and throughout
    /// the registry: the maps hold plain interned handles, so state left by
    /// a panicking thread is still structurally valid, and instrumentation
    /// must never turn an unrelated panic into a second one.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = map.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(name.to_string(), c);
        c
    }

    /// Interns (on first use) and returns the histogram named `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        map.insert(name.to_string(), h);
        h
    }

    /// Sets (or replaces) a string label.
    pub fn set_label(&self, key: &str, value: String) {
        self.labels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.to_string(), value);
    }

    /// Sorted `(name, value)` snapshot of every registered counter.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Sorted `(name, snapshot)` of every registered histogram.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Sorted `(key, value)` of every label.
    pub fn labels_snapshot(&self) -> Vec<(String, String)> {
        self.labels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Zeroes every counter and histogram and clears labels. Registered
    /// handles stay valid (tests and repeated bench runs use this to take
    /// clean deltas).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            h.reset();
        }
        self.labels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn interning_returns_same_handle() {
        let reg = Registry::default();
        let a = reg.counter("x") as *const Counter;
        let b = reg.counter("x") as *const Counter;
        assert_eq!(a, b);
        assert_ne!(a, reg.counter("y") as *const Counter);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        // The range brackets realistic wall times.
        assert!(bucket_bound(0) < 1e-6);
        assert!(bucket_bound(HISTOGRAM_BUCKETS - 1) > 1000.0);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0.001, 0.002, 0.004, 1.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 1.007).abs() < 1e-12);
        assert_eq!(s.min, Some(0.001));
        assert_eq!(s.max, Some(1.0));
        assert!((s.mean() - 1.007 / 4.0).abs() < 1e-12);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn histogram_bucket_placement() {
        let h = Histogram::new();
        h.record(bucket_bound(5)); // exactly on a bound → that bucket (le)
        h.record(bucket_bound(5) * 1.01); // just past → next bucket
        h.record(1e12); // beyond the last finite bound → overflow
        let s = h.snapshot();
        assert_eq!(s.buckets[5], 1);
        assert_eq!(s.buckets[6], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS], 1);
    }

    #[test]
    fn histogram_ignores_nan_in_aggregates() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(2.0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 2.0);
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(2.0));
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = Registry::default();
        reg.counter("a").add(7);
        reg.histogram("h").record(1.0);
        reg.set_label("k", "v".into());
        reg.reset();
        assert_eq!(reg.counters_snapshot(), vec![("a".into(), 0)]);
        assert_eq!(reg.histograms_snapshot()[0].1.count, 0);
        assert!(reg.labels_snapshot().is_empty());
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = Registry::default();
        let c = reg.counter("conc");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
