//! The global metric registry: named atomic counters and fixed-bucket
//! histograms.
//!
//! Metrics are interned by name on first use and live for the process
//! lifetime (`Box::leak` — the set of metric names is a small static
//! vocabulary, so the leak is bounded). Handles are `&'static`, so the hot
//! path after interning is a single relaxed atomic add with no locking;
//! the [`crate::counter!`] macro additionally caches the handle in a
//! per-call-site `OnceLock`, so the registry lock is taken once per call
//! site, ever.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a free-standing counter (registry-less; mostly for tests).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` (relaxed; counters are statistical, not synchronizing).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in an atomic).
///
/// Gauges report *levels* — memory footprints, load-imbalance ratios —
/// where only the most recent value is meaningful, unlike the
/// monotonically accumulating [`Counter`].
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge reading 0.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the current value (relaxed; gauges are statistical).
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first set — note `0f64.to_bits() == 0`).
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// The shared no-op counter handle returned by [`crate::counter!`] in
/// disabled builds. Same API as [`Counter`], zero behavior.
pub static NOOP_COUNTER: NoopCounter = NoopCounter;

/// The shared no-op gauge handle returned by [`crate::gauge!`] in disabled
/// builds. Same API as [`Gauge`], zero behavior.
pub static NOOP_GAUGE: NoopGauge = NoopGauge;

/// Zero-sized stand-in for [`Gauge`] when instrumentation is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopGauge;

impl NoopGauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// Zero-sized stand-in for [`Counter`] when instrumentation is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCounter;

impl NoopCounter {
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Number of finite histogram bucket bounds (one overflow bucket follows).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Upper bound of finite bucket `i`: `2^(i − 21)`.
///
/// Covers ~0.5 µs … ~1000 s with two buckets per decade-ish — sized for
/// wall-clock observations (sweep cells, replications, figure spans) while
/// remaining serviceable for any positive magnitude.
#[inline]
pub fn bucket_bound(i: usize) -> f64 {
    f64::powi(2.0, i as i32 - 21)
}

/// A fixed-bucket histogram (power-of-two bounds, see [`bucket_bound`]),
/// recording count, sum, min, and max alongside the bucket counts.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts observations `v ≤ bucket_bound(i)`; the final
    /// slot is the +∞ overflow bucket. Non-cumulative; exporters integrate.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    /// Sum of observations, stored as `f64::to_bits` and updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket but excluded from sum/min/max, so a stray NaN can
    /// never poison the aggregates.
    pub fn record(&self, v: f64) {
        let idx = if v.is_finite() {
            self.buckets
                .iter()
                .take(HISTOGRAM_BUCKETS)
                .enumerate()
                .find_map(|(i, _)| (v <= bucket_bound(i)).then_some(i))
                .unwrap_or(HISTOGRAM_BUCKETS)
        } else {
            HISTOGRAM_BUCKETS
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            fetch_update_f64(&self.sum_bits, |s| s + v);
            fetch_update_f64(&self.min_bits, |m| m.min(v));
            fetch_update_f64(&self.max_bits, |m| m.max(v));
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            count,
            sum,
            min: if count > 0 && min.is_finite() {
                Some(min)
            } else {
                None
            },
            max: if count > 0 && max.is_finite() {
                Some(max)
            } else {
                None
            },
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        // nss-lint: allow(atomic-protocol) — CAS loop over one lone f64 cell (min/max fold): success publishes nothing beyond the cell itself, so there is no payload for Acquire/Release to order
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation, if any.
    pub min: Option<f64>,
    /// Largest finite observation, if any.
    pub max: Option<f64>,
    /// Per-bucket (non-cumulative) counts; last entry is the +∞ bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`) by linear interpolation within
    /// the fixed power-of-two buckets, Prometheus `histogram_quantile`
    /// style. `None` when the histogram is empty or `q` is out of range.
    ///
    /// The estimate is clamped to the observed `[min, max]` when those are
    /// known, so coarse buckets can never report a quantile outside the
    /// data. Observations landing in the +∞ overflow bucket interpolate to
    /// the largest finite bound (or `max` when recorded).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        let mut estimate = None;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let hi = if i < HISTOGRAM_BUCKETS {
                    bucket_bound(i)
                } else {
                    // Overflow bucket: no finite upper edge to interpolate
                    // toward; report its lower edge (clamped to max below).
                    bucket_bound(HISTOGRAM_BUCKETS - 1)
                };
                let lo = if i == 0 { 0.0 } else { bucket_bound(i - 1) };
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                estimate = Some(lo + frac * (hi - lo));
                break;
            }
            cum = next;
        }
        let mut v = estimate?;
        if let Some(min) = self.min {
            v = v.max(min);
        }
        if let Some(max) = self.max {
            v = v.min(max);
        }
        Some(v)
    }

    /// The (p50, p90, p99) triple most reports want.
    pub fn percentiles(&self) -> (Option<f64>, Option<f64>, Option<f64>) {
        (self.quantile(0.5), self.quantile(0.9), self.quantile(0.99))
    }

    /// Subtracts an earlier snapshot of the *same* histogram, yielding the
    /// observations recorded in between. `min`/`max` cannot be windowed
    /// retroactively, so the delta carries the later snapshot's values when
    /// anything was recorded in the window and `None` otherwise.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count.saturating_sub(earlier.count);
        HistogramSnapshot {
            count,
            sum: if count == 0 {
                0.0
            } else {
                self.sum - earlier.sum
            },
            min: if count == 0 { None } else { self.min },
            max: if count == 0 { None } else { self.max },
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(&a, &b)| a.saturating_sub(b))
                .collect(),
        }
    }
}

/// A point-in-time copy of an entire [`Registry`] — every counter, gauge,
/// histogram, and label — taken with [`Registry::snapshot`].
///
/// Snapshots subtract: [`RegistrySnapshot::delta_since`] yields only what
/// was recorded between two snapshots, which is how reports isolate a
/// measured run from warm-up traffic sharing the same process registry.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Sorted `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// Sorted `(name, value)` gauges (point-in-time levels).
    pub gauges: Vec<(String, f64)>,
    /// Sorted `(name, snapshot)` histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Sorted `(key, value)` labels.
    pub labels: Vec<(String, String)>,
}

impl RegistrySnapshot {
    /// The metrics recorded since `earlier` (counters and histogram
    /// aggregates subtract; gauges and labels are levels, so the later
    /// value is kept). Metrics that did not exist at `earlier` delta
    /// against zero.
    pub fn delta_since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let base_counter = |name: &str| -> u64 {
            earlier
                .counters
                .binary_search_by(|(k, _)| k.as_str().cmp(name))
                .map_or(0, |i| earlier.counters[i].1)
        };
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            buckets: Vec::new(),
        };
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(base_counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let base = earlier
                        .histograms
                        .binary_search_by(|(n, _)| n.as_str().cmp(k))
                        .map_or(&empty, |i| &earlier.histograms[i].1);
                    (k.clone(), h.delta_since(base))
                })
                .collect(),
            labels: self.labels.clone(),
        }
    }
}

/// The process-global metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
    labels: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Interns (on first use) and returns the counter named `name`.
    ///
    /// Lock poisoning is recovered with `into_inner` here and throughout
    /// the registry: the maps hold plain interned handles, so state left by
    /// a panicking thread is still structurally valid, and instrumentation
    /// must never turn an unrelated panic into a second one.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = map.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(name.to_string(), c);
        c
    }

    /// Interns (on first use) and returns the gauge named `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(g) = map.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        map.insert(name.to_string(), g);
        g
    }

    /// Interns (on first use) and returns the histogram named `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        map.insert(name.to_string(), h);
        h
    }

    /// Sets (or replaces) a string label.
    pub fn set_label(&self, key: &str, value: String) {
        self.labels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.to_string(), value);
    }

    /// Sorted `(name, value)` snapshot of every registered counter.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Sorted `(name, value)` snapshot of every registered gauge.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// A full point-in-time [`RegistrySnapshot`] — the unit the delta API
    /// ([`RegistrySnapshot::delta_since`]) works over.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters_snapshot(),
            gauges: self.gauges_snapshot(),
            histograms: self.histograms_snapshot(),
            labels: self.labels_snapshot(),
        }
    }

    /// Sorted `(name, snapshot)` of every registered histogram.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Sorted `(key, value)` of every label.
    pub fn labels_snapshot(&self) -> Vec<(String, String)> {
        self.labels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Zeroes every counter and histogram and clears labels. Registered
    /// handles stay valid (tests and repeated bench runs use this to take
    /// clean deltas).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            h.reset();
        }
        self.labels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn interning_returns_same_handle() {
        let reg = Registry::default();
        let a = reg.counter("x") as *const Counter;
        let b = reg.counter("x") as *const Counter;
        assert_eq!(a, b);
        assert_ne!(a, reg.counter("y") as *const Counter);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        // The range brackets realistic wall times.
        assert!(bucket_bound(0) < 1e-6);
        assert!(bucket_bound(HISTOGRAM_BUCKETS - 1) > 1000.0);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in [0.001, 0.002, 0.004, 1.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 1.007).abs() < 1e-12);
        assert_eq!(s.min, Some(0.001));
        assert_eq!(s.max, Some(1.0));
        assert!((s.mean() - 1.007 / 4.0).abs() < 1e-12);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn histogram_bucket_placement() {
        let h = Histogram::new();
        h.record(bucket_bound(5)); // exactly on a bound → that bucket (le)
        h.record(bucket_bound(5) * 1.01); // just past → next bucket
        h.record(1e12); // beyond the last finite bound → overflow
        let s = h.snapshot();
        assert_eq!(s.buckets[5], 1);
        assert_eq!(s.buckets[6], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS], 1);
    }

    #[test]
    fn histogram_ignores_nan_in_aggregates() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(2.0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 2.0);
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(2.0));
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = Registry::default();
        reg.counter("a").add(7);
        reg.histogram("h").record(1.0);
        reg.set_label("k", "v".into());
        reg.reset();
        assert_eq!(reg.counters_snapshot(), vec![("a".into(), 0)]);
        assert_eq!(reg.histograms_snapshot()[0].1.count, 0);
        assert!(reg.labels_snapshot().is_empty());
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let reg = Registry::default();
        let g = reg.gauge("mem.bytes");
        assert_eq!(g.get(), 0.0);
        g.set(1024.0);
        g.set(2048.0);
        assert_eq!(reg.gauge("mem.bytes").get(), 2048.0);
        assert_eq!(reg.gauges_snapshot(), vec![("mem.bytes".into(), 2048.0)]);
        reg.reset();
        assert_eq!(reg.gauge("mem.bytes").get(), 0.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations spread uniformly inside the (0.5, 1.0] bucket.
        for i in 0..100 {
            h.record(0.5 + 0.005 * (i as f64 + 0.5));
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).expect("non-empty");
        let p90 = s.quantile(0.9).expect("non-empty");
        let p99 = s.quantile(0.99).expect("non-empty");
        // Linear interpolation inside one bucket tracks the uniform data.
        assert!((p50 - 0.75).abs() < 0.01, "p50 = {p50}");
        assert!((p90 - 0.95).abs() < 0.01, "p90 = {p90}");
        assert!(p99 > p90 && p90 > p50);
        // Quantiles never leave the observed range.
        assert!(p99 <= s.max.expect("max recorded"));
        assert!(s.quantile(0.001).expect("ok") >= s.min.expect("min"));
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), None);
        h.record(3.0);
        let s = h.snapshot();
        // One observation: every quantile collapses to it (via clamping).
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(0.99), Some(3.0));
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(1.5), None);
        // Overflow-bucket observations clamp to the recorded max.
        let h = Histogram::new();
        h.record(1e12);
        assert_eq!(h.snapshot().quantile(0.9), Some(1e12));
    }

    #[test]
    fn registry_snapshot_delta_isolates_a_window() {
        let reg = Registry::default();
        reg.counter("c").add(10);
        reg.histogram("h").record(1.0);
        reg.gauge("g").set(7.0);
        let before = reg.snapshot();
        reg.counter("c").add(5);
        reg.counter("new").add(2);
        reg.histogram("h").record(2.0);
        reg.gauge("g").set(9.0);
        let delta = reg.snapshot().delta_since(&before);
        let counters: std::collections::BTreeMap<_, _> = delta.counters.into_iter().collect();
        assert_eq!(counters["c"], 5);
        assert_eq!(counters["new"], 2);
        let (_, h) = &delta.histograms[0];
        assert_eq!(h.count, 1);
        assert!((h.sum - 2.0).abs() < 1e-12);
        assert_eq!(h.max, Some(2.0)); // later snapshot's max, documented caveat
        assert_eq!(h.buckets.iter().sum::<u64>(), 1);
        // Gauges are levels: the delta carries the later reading.
        assert_eq!(delta.gauges, vec![("g".into(), 9.0)]);
    }

    #[test]
    fn histogram_delta_of_identical_snapshots_is_empty() {
        let h = Histogram::new();
        h.record(0.5);
        let s = h.snapshot();
        let d = s.delta_since(&s);
        assert_eq!(d.count, 0);
        assert_eq!(d.sum, 0.0);
        assert_eq!(d.min, None);
        assert_eq!(d.max, None);
        assert!(d.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = Registry::default();
        let c = reg.counter("conc");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
