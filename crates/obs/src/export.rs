//! Snapshot exporters: console table, JSON, and Prometheus text format.
//!
//! All three render the same point-in-time snapshot of the global
//! [`Registry`]: labels, counters, and histogram aggregates. JSON is
//! hand-rolled (no serde dependency — this crate must stay dependency-free)
//! but emits strict RFC 8259 output.

use crate::registry::{bucket_bound, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
use std::fmt::Write;

/// Escapes a string for a JSON string literal (without the quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the registry as a human-readable table.
pub fn console_table(reg: &Registry) -> String {
    let mut out = String::new();
    let labels = reg.labels_snapshot();
    let counters = reg.counters_snapshot();
    let hists = reg.histograms_snapshot();
    if !labels.is_empty() {
        out.push_str("labels:\n");
        for (k, v) in &labels {
            let _ = writeln!(out, "  {k} = {v}");
        }
    }
    if !counters.is_empty() {
        let width = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        out.push_str("counters:\n");
        for (k, v) in &counters {
            let _ = writeln!(out, "  {k:<width$}  {v:>12}");
        }
    }
    if !hists.is_empty() {
        out.push_str("histograms (count / mean / min / max):\n");
        let width = hists.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, h) in &hists {
            let _ = writeln!(
                out,
                "  {k:<width$}  {:>8}  {:>12.6}  {:>12.6}  {:>12.6}",
                h.count,
                h.mean(),
                h.min.unwrap_or(0.0),
                h.max.unwrap_or(0.0),
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue; // sparse: empty buckets carry no information
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let le = if i < HISTOGRAM_BUCKETS {
            json_f64(bucket_bound(i))
        } else {
            "null".to_string() // the +inf overflow bucket
        };
        let _ = write!(buckets, "[{le},{c}]");
    }
    buckets.push(']');
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"buckets\":{buckets}}}",
        h.count,
        json_f64(h.sum),
        json_f64(h.mean()),
        h.min.map_or("null".into(), json_f64),
        h.max.map_or("null".into(), json_f64),
    )
}

/// Renders the registry as a JSON object:
/// `{"labels": {...}, "counters": {...}, "histograms": {...}}`.
pub fn json(reg: &Registry) -> String {
    let mut out = String::from("{\n  \"labels\": {");
    for (i, (k, v)) in reg.labels_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("\n  },\n  \"counters\": {");
    for (i, (k, v)) in reg.counters_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (k, h)) in reg.histograms_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(k), histogram_json(h));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Sanitizes a metric name for Prometheus (`[a-zA-Z0-9_]`, `nss_` prefix).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("nss_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// counters as `counter`, histograms with cumulative `_bucket{le=...}`,
/// `_sum`, and `_count` series, labels as an `info`-style gauge.
pub fn prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    for (k, v) in reg.counters_snapshot() {
        let n = prom_name(&k);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (k, h) in reg.histograms_snapshot() {
        let n = prom_name(&k);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            if c == 0 && i < HISTOGRAM_BUCKETS {
                continue; // keep the exposition sparse; +Inf always printed
            }
            let le = if i < HISTOGRAM_BUCKETS {
                format!("{}", bucket_bound(i))
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
    }
    let labels = reg.labels_snapshot();
    if !labels.is_empty() {
        let mut pairs = String::new();
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                pairs.push(',');
            }
            let _ = write!(
                pairs,
                "{}=\"{}\"",
                prom_name(k).trim_start_matches("nss_"),
                v.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        let _ = writeln!(out, "# TYPE nss_run_info gauge\nnss_run_info{{{pairs}}} 1");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::default();
        reg.counter("a.hits").add(10);
        reg.counter("a.misses").add(2);
        reg.histogram("t.seconds").record(0.5);
        reg.histogram("t.seconds").record(2.0);
        reg.set_label("seed", "2005".into());
        reg
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn console_table_mentions_everything() {
        let t = console_table(&sample_registry());
        for needle in ["a.hits", "a.misses", "t.seconds", "seed = 2005", "10"] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
        assert_eq!(
            console_table(&Registry::default()),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn json_is_well_formed() {
        let j = json(&sample_registry());
        // Structural spot-checks (no JSON parser in a dependency-free crate;
        // CI additionally parses the emitted artifact with python).
        assert!(j.contains("\"a.hits\": 10"));
        assert!(j.contains("\"seed\": \"2005\""));
        assert!(j.contains("\"count\":2"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let p = prometheus(&sample_registry());
        assert!(p.contains("# TYPE nss_a_hits counter"));
        assert!(p.contains("nss_a_hits 10"));
        assert!(p.contains("# TYPE nss_t_seconds histogram"));
        assert!(p.contains("nss_t_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("nss_t_seconds_count 2"));
        assert!(p.contains("nss_run_info{seed=\"2005\"} 1"));
        // Cumulative buckets: +Inf equals the total count.
        let inf_line = p
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf bucket");
        assert!(inf_line.ends_with(" 2"));
    }
}
