//! Snapshot exporters: console table, JSON, and Prometheus text format.
//!
//! All three render the same point-in-time snapshot of the global
//! [`Registry`]: labels, counters, gauges, and histogram aggregates
//! (including p50/p90/p99 estimates). JSON is hand-rolled (no serde
//! dependency — this crate must stay dependency-free) but emits strict
//! RFC 8259 output, and the Prometheus output follows text exposition
//! v0.0.4: `# HELP`/`# TYPE` per family, cumulative `_bucket{le=...}`
//! series, `\\`/`"`/newline escapes in label values.

use crate::registry::{bucket_bound, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
use std::fmt::Write;

/// Escapes a string for a JSON string literal (without the quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the registry as a human-readable table.
pub fn console_table(reg: &Registry) -> String {
    let mut out = String::new();
    let labels = reg.labels_snapshot();
    let counters = reg.counters_snapshot();
    let gauges = reg.gauges_snapshot();
    let hists = reg.histograms_snapshot();
    if !labels.is_empty() {
        out.push_str("labels:\n");
        for (k, v) in &labels {
            let _ = writeln!(out, "  {k} = {v}");
        }
    }
    if !counters.is_empty() {
        let width = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        out.push_str("counters:\n");
        for (k, v) in &counters {
            let _ = writeln!(out, "  {k:<width$}  {v:>12}");
        }
    }
    if !gauges.is_empty() {
        let width = gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        out.push_str("gauges:\n");
        for (k, v) in &gauges {
            let _ = writeln!(out, "  {k:<width$}  {v:>16.6}");
        }
    }
    if !hists.is_empty() {
        out.push_str("histograms (count / mean / p50 / p99 / max):\n");
        let width = hists.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, h) in &hists {
            let (p50, _, p99) = h.percentiles();
            let _ = writeln!(
                out,
                "  {k:<width$}  {:>8}  {:>12.6}  {:>12.6}  {:>12.6}  {:>12.6}",
                h.count,
                h.mean(),
                p50.unwrap_or(0.0),
                p99.unwrap_or(0.0),
                h.max.unwrap_or(0.0),
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue; // sparse: empty buckets carry no information
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let le = if i < HISTOGRAM_BUCKETS {
            json_f64(bucket_bound(i))
        } else {
            "null".to_string() // the +inf overflow bucket
        };
        let _ = write!(buckets, "[{le},{c}]");
    }
    buckets.push(']');
    let (p50, p90, p99) = h.percentiles();
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":{buckets}}}",
        h.count,
        json_f64(h.sum),
        json_f64(h.mean()),
        h.min.map_or("null".into(), json_f64),
        h.max.map_or("null".into(), json_f64),
        p50.map_or("null".into(), json_f64),
        p90.map_or("null".into(), json_f64),
        p99.map_or("null".into(), json_f64),
    )
}

/// Renders the registry as a JSON object:
/// `{"labels": {...}, "counters": {...}, "gauges": {...}, "histograms": {...}}`.
pub fn json(reg: &Registry) -> String {
    let mut out = String::from("{\n  \"labels\": {");
    for (i, (k, v)) in reg.labels_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("\n  },\n  \"counters\": {");
    for (i, (k, v)) in reg.counters_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (k, v)) in reg.gauges_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(k), json_f64(*v));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (k, h)) in reg.histograms_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", json_escape(k), histogram_json(h));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Sanitizes a metric name for Prometheus (`[a-zA-Z0-9_]`, `nss_` prefix).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("nss_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a Prometheus label *value* (`\\`, `"`, and newline, per the
/// text exposition format).
fn prom_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a `# HELP` text line (`\\` and newline, per the format spec).
fn prom_help_text(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders the registry in the Prometheus text exposition format (v0.0.4):
/// counters as `counter`, gauges as `gauge`, histograms with cumulative
/// `_bucket{le=...}`, `_sum`, and `_count` series, labels as an
/// `info`-style gauge. Every family carries `# HELP` (echoing the
/// registry-side dotted name) and `# TYPE` lines.
pub fn prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    for (k, v) in reg.counters_snapshot() {
        let n = prom_name(&k);
        let _ = writeln!(
            out,
            "# HELP {n} nss counter `{}`\n# TYPE {n} counter\n{n} {v}",
            prom_help_text(&k)
        );
    }
    for (k, v) in reg.gauges_snapshot() {
        let n = prom_name(&k);
        let _ = writeln!(
            out,
            "# HELP {n} nss gauge `{}`\n# TYPE {n} gauge\n{n} {v}",
            prom_help_text(&k)
        );
    }
    for (k, h) in reg.histograms_snapshot() {
        let n = prom_name(&k);
        let _ = writeln!(
            out,
            "# HELP {n} nss histogram `{}`\n# TYPE {n} histogram",
            prom_help_text(&k)
        );
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            if c == 0 && i < HISTOGRAM_BUCKETS {
                continue; // keep the exposition sparse; +Inf always printed
            }
            let le = if i < HISTOGRAM_BUCKETS {
                format!("{}", bucket_bound(i))
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
    }
    let labels = reg.labels_snapshot();
    if !labels.is_empty() {
        let mut pairs = String::new();
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                pairs.push(',');
            }
            let _ = write!(
                pairs,
                "{}=\"{}\"",
                prom_name(k).trim_start_matches("nss_"),
                prom_label_value(v)
            );
        }
        let _ = writeln!(
            out,
            "# HELP nss_run_info free-form run labels\n\
             # TYPE nss_run_info gauge\nnss_run_info{{{pairs}}} 1"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let reg = Registry::default();
        reg.counter("a.hits").add(10);
        reg.counter("a.misses").add(2);
        reg.gauge("mem.bytes").set(4096.0);
        reg.histogram("t.seconds").record(0.5);
        reg.histogram("t.seconds").record(2.0);
        reg.set_label("seed", "2005".into());
        reg
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn console_table_mentions_everything() {
        let t = console_table(&sample_registry());
        for needle in [
            "a.hits",
            "a.misses",
            "mem.bytes",
            "t.seconds",
            "seed = 2005",
            "10",
        ] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
        assert_eq!(
            console_table(&Registry::default()),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn json_is_well_formed() {
        let j = json(&sample_registry());
        let v = crate::jsonval::Json::parse(&j).expect("exporter emits valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.hits"))
                .and_then(crate::jsonval::Json::as_f64),
            Some(10.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("mem.bytes"))
                .and_then(crate::jsonval::Json::as_f64),
            Some(4096.0)
        );
        assert_eq!(
            v.get("labels")
                .and_then(|l| l.get("seed"))
                .and_then(crate::jsonval::Json::as_str),
            Some("2005")
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("t.seconds"))
            .expect("t.seconds histogram");
        assert_eq!(
            hist.get("count").and_then(crate::jsonval::Json::as_f64),
            Some(2.0)
        );
        for q in ["p50", "p90", "p99"] {
            let est = hist
                .get(q)
                .and_then(crate::jsonval::Json::as_f64)
                .unwrap_or_else(|| panic!("{q} missing"));
            assert!(
                (0.5..=2.0).contains(&est),
                "{q}={est} outside observed [0.5, 2.0]"
            );
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let p = prometheus(&sample_registry());
        assert!(p.contains("# TYPE nss_a_hits counter"));
        assert!(p.contains("# HELP nss_a_hits "));
        assert!(p.contains("nss_a_hits 10"));
        assert!(p.contains("# TYPE nss_mem_bytes gauge"));
        assert!(p.contains("nss_mem_bytes 4096"));
        assert!(p.contains("# TYPE nss_t_seconds histogram"));
        assert!(p.contains("nss_t_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(p.contains("nss_t_seconds_count 2"));
        assert!(p.contains("nss_run_info{seed=\"2005\"} 1"));
        // Cumulative buckets: +Inf equals the total count.
        let inf_line = p
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf bucket");
        assert!(inf_line.ends_with(" 2"));
    }

    /// Structural validity per the text exposition format: every
    /// non-comment line is `name[{labels}] value`, names match
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`, every sample family has `# TYPE` (and
    /// `# HELP`) announced before its first sample.
    #[test]
    fn prometheus_lines_are_structurally_valid() {
        let reg = sample_registry();
        reg.counter("weird-name.1/2 spaced").inc();
        let p = prometheus(&reg);
        let valid_name = |n: &str| {
            !n.is_empty()
                && n.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
                && n.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut typed: Vec<String> = Vec::new();
        for line in p.lines().filter(|l| !l.is_empty()) {
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let kind = parts.next().unwrap_or("");
                let name = parts.next().unwrap_or("");
                assert!(
                    matches!(kind, "TYPE" | "HELP"),
                    "unknown comment kind in {line:?}"
                );
                assert!(valid_name(name), "bad family name in {line:?}");
                if kind == "TYPE" {
                    typed.push(name.to_string());
                }
                continue;
            }
            let name_end = line.find([' ', '{']).unwrap_or(line.len());
            let name = &line[..name_end];
            assert!(valid_name(name), "bad sample name in {line:?}");
            assert!(
                typed.iter().any(|t| name == t
                    || name
                        .strip_prefix(t.as_str())
                        .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count"))),
                "sample {name:?} has no preceding # TYPE"
            );
            let value = line[name_end..]
                .rsplit_once(' ')
                .map(|(_, v)| v)
                .unwrap_or("");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn prometheus_label_values_escape_backslash_quote_newline() {
        let reg = Registry::default();
        reg.set_label("cmd", "a\\b \"c\"\nd".into());
        let p = prometheus(&reg);
        assert!(
            p.contains(r#"nss_run_info{cmd="a\\b \"c\"\nd"} 1"#),
            "unexpected escaping:\n{p}"
        );
        // The exposition format is line-oriented: a raw newline inside a
        // label value would corrupt the whole scrape.
        assert!(p.lines().all(|l| !l.contains('\r')));
        assert_eq!(p.lines().filter(|l| l.contains("nss_run_info{")).count(), 1);
    }
}
