//! Cross-protocol invariants of [`nss_sim::trace::SimTrace`].
//!
//! Every executor — slotted gossip, counter/distance suppression, TDMA,
//! asynchronous gossip — fills the same trace structure; these tests pin
//! down the structural guarantees the analysis layer relies on:
//!
//! * a phase's deliveries cannot exceed `broadcasts × (n − 1)` (each
//!   transmission reaches at most every other node);
//! * the informed count derived from `first_rx_phase` is non-decreasing
//!   over phases, and every first reception in phase `p` is backed by at
//!   least that many deliveries in `p`;
//! * collision/deferral vectors line up with the phase axis, CFM never
//!   collides, and the transmission-range rule never defers;
//! * with the `obs` feature on, the global counters agree exactly with
//!   the trace totals.

use nss_model::deployment::Deployment;
use nss_model::topology::Topology;
use nss_sim::executor::Executor;
use nss_sim::protocols::{
    run_async_gossip, run_counter_broadcast, run_distance_broadcast, AsyncGossipConfig,
    CounterConfig, DistanceConfig,
};
use nss_sim::slotted::GossipConfig;
use nss_sim::trace::{SimTrace, NEVER};

fn disk(n_avg: u32, diameter: f64, seed: u64) -> Topology {
    Topology::build(&Deployment::disk(n_avg, 1.0, diameter).sample(seed))
}

/// Runs one representative execution of every slotted protocol.
fn slotted_traces(topo: &Topology, seed: u64) -> Vec<(&'static str, SimTrace)> {
    vec![
        (
            "flooding_cam",
            Executor::new(topo)
                .gossip(GossipConfig::flooding_cam())
                .run(seed),
        ),
        (
            "pb_cam",
            Executor::new(topo)
                .gossip(GossipConfig::pb_cam(0.6))
                .run(seed),
        ),
        (
            "gossip_cfm",
            Executor::new(topo)
                .gossip(GossipConfig::gossip_cfm(0.8))
                .run(seed),
        ),
        (
            "counter",
            run_counter_broadcast(topo, &CounterConfig::paper(3), seed),
        ),
        (
            "distance",
            run_distance_broadcast(topo, &DistanceConfig::paper(0.4), seed),
        ),
    ]
}

fn check_structure(name: &str, t: &SimTrace) {
    let n = t.n_total;
    let phases = t.phases();
    assert_eq!(
        t.deliveries_by_phase.len(),
        phases,
        "{name}: deliveries axis mismatch"
    );
    assert_eq!(
        t.collisions_by_phase.len(),
        phases,
        "{name}: collisions axis mismatch"
    );
    assert_eq!(
        t.cs_deferrals_by_phase.len(),
        phases,
        "{name}: deferrals axis mismatch"
    );
    for (i, (&d, &b)) in t
        .deliveries_by_phase
        .iter()
        .zip(&t.broadcasts_by_phase)
        .enumerate()
    {
        assert!(
            d <= u64::from(b) * (n as u64 - 1),
            "{name}: phase {i} has {d} deliveries from {b} broadcasts (n = {n})"
        );
    }
    t.phase_series().validate().unwrap_or_else(|e| {
        panic!("{name}: invalid phase series: {e}");
    });
}

fn check_first_rx(name: &str, t: &SimTrace) {
    let phases = t.phases();
    // Nodes first informed per phase index (1-based). The source is 0.
    let mut first_rx_hist = vec![0u64; phases + 1];
    for (v, &p) in t.first_rx_phase.iter().enumerate() {
        if p == NEVER {
            continue;
        }
        if v == 0 {
            assert_eq!(p, 0, "{name}: source must be informed at phase 0");
            continue;
        }
        assert!(p >= 1, "{name}: node {v} informed before any phase ran");
        assert!(
            (p as usize) <= phases,
            "{name}: node {v} informed in phase {p} of {phases}"
        );
        first_rx_hist[p as usize] += 1;
    }
    // Each first reception is one of that phase's deliveries.
    for (p, &fresh) in first_rx_hist.iter().enumerate().skip(1) {
        assert!(
            fresh <= t.deliveries_by_phase[p - 1],
            "{name}: phase {p} first-informs {fresh} nodes but delivered only {}",
            t.deliveries_by_phase[p - 1]
        );
    }
    // Monotonicity: cumulative informed count never decreases (trivially
    // true of a prefix sum of non-negative terms, asserted as a guard
    // against future representation changes).
    let mut cum = 0u64;
    let mut prev = 0u64;
    for &fresh in &first_rx_hist {
        cum += fresh;
        assert!(cum >= prev, "{name}: informed count decreased");
        prev = cum;
    }
    assert_eq!(
        cum + 1,
        t.informed_count() as u64,
        "{name}: histogram disagrees with informed_count()"
    );
}

#[test]
fn slotted_protocols_satisfy_trace_invariants() {
    for seed in 0..4u64 {
        let topo = disk(4, 40.0, seed + 100);
        for (name, t) in slotted_traces(&topo, seed) {
            check_structure(name, &t);
            check_first_rx(name, &t);
        }
    }
}

#[test]
fn cfm_never_records_collisions_or_deferrals() {
    let topo = disk(5, 40.0, 9);
    let t = Executor::new(&topo)
        .gossip(GossipConfig::gossip_cfm(1.0))
        .run(2);
    assert_eq!(t.total_collisions(), 0, "CFM cannot collide");
    assert_eq!(t.total_cs_deferrals(), 0, "CFM cannot defer");
    assert!(t.total_deliveries() > 0);
}

#[test]
fn transmission_range_rule_never_defers() {
    for seed in 0..3u64 {
        let topo = disk(6, 30.0, seed + 7);
        let t = Executor::new(&topo)
            .gossip(GossipConfig::flooding_cam())
            .run(seed);
        assert_eq!(
            t.total_cs_deferrals(),
            0,
            "TR rule has no carrier-sense annulus"
        );
    }
}

#[test]
fn dense_cam_flooding_records_collisions() {
    // A dense disk under CAM flooding must lose some receptions; the new
    // collision channel should see them.
    let topo = disk(8, 20.0, 3);
    let collided: u64 = (0..5)
        .map(|s| {
            Executor::new(&topo)
                .gossip(GossipConfig::flooding_cam())
                .run(s)
                .total_collisions()
        })
        .sum();
    assert!(collided > 0, "dense CAM flooding produced zero collisions");
}

#[test]
fn async_gossip_totals_are_consistent() {
    for seed in 0..4u64 {
        let topo = disk(4, 30.0, seed + 50);
        let n = topo.len() as u64;
        let t = run_async_gossip(&topo, &AsyncGossipConfig::paper(0.8), seed);
        // Window quantization can shift a delivery past its broadcast's
        // window, so the bound holds in aggregate rather than per phase.
        assert!(
            t.total_deliveries() + t.total_collisions() <= t.total_broadcasts() * (n - 1),
            "async: receptions exceed what {} broadcasts can reach",
            t.total_broadcasts()
        );
        assert_eq!(t.collisions_by_phase.len(), t.phases());
        assert_eq!(t.cs_deferrals_by_phase.len(), t.phases());
        check_first_rx("async", &t);
    }
}

/// With `obs` on, the global counters must agree with the trace exactly.
#[cfg(feature = "obs")]
mod obs_counters {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that read global-counter deltas.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn counter(name: &str) -> u64 {
        nss_obs::registry::Registry::global().counter(name).get()
    }

    #[test]
    fn gossip_counters_match_trace_totals() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let topo = disk(5, 30.0, 11);
        let before = (
            counter("sim.broadcasts"),
            counter("sim.deliveries"),
            counter("sim.collisions"),
            counter("sim.cs_deferrals"),
        );
        let t = Executor::new(&topo)
            .gossip(GossipConfig::flooding_cam())
            .run(4);
        let after = (
            counter("sim.broadcasts"),
            counter("sim.deliveries"),
            counter("sim.collisions"),
            counter("sim.cs_deferrals"),
        );
        assert_eq!(after.0 - before.0, t.total_broadcasts());
        assert_eq!(after.1 - before.1, t.total_deliveries());
        assert_eq!(after.2 - before.2, t.total_collisions());
        assert_eq!(after.3 - before.3, t.total_cs_deferrals());
    }

    #[test]
    fn async_counters_match_trace_totals() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let topo = disk(4, 30.0, 21);
        let before = (
            counter("sim.broadcasts"),
            counter("sim.deliveries"),
            counter("sim.collisions"),
        );
        let t = run_async_gossip(&topo, &AsyncGossipConfig::paper(1.0), 5);
        let after = (
            counter("sim.broadcasts"),
            counter("sim.deliveries"),
            counter("sim.collisions"),
        );
        assert_eq!(after.0 - before.0, t.total_broadcasts());
        assert_eq!(after.1 - before.1, t.total_deliveries());
        assert_eq!(after.2 - before.2, t.total_collisions());
    }
}
