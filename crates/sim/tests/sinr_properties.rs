//! Property tests for the SINR physical-layer backend.
//!
//! The SINR model must *contain* the unit-disk model as a limit: with a
//! vanishing decode threshold β (and any path-loss exponent), every
//! receiver with at least one in-range transmitter decodes the strongest
//! of them — interference can garble nothing because the threshold test
//! `SINR ≥ β` is satisfied by any bounded interference sum. Unit-disk CAM
//! (Assumption 6) delivers exactly to receivers with *exactly one*
//! in-range transmitter, so on any field:
//!
//! * β→0 SINR deliveries ⊇ unit-disk deliveries (pairwise, same tx), and
//! * the two backends agree exactly on slots where no receiver hears two
//!   or more transmitters (the sparse/uncontended regime).

use nss_model::comm::{CommunicationModel, MediumBackend, SinrParams};
use nss_model::deployment::DeployedNetwork;
use nss_model::geometry::Point2;
use nss_model::topology::Topology;
use nss_sim::medium::{Medium, MediumScratch};
use proptest::collection;
use proptest::prelude::*;

/// β small enough that any in-range signal beats the worst-case
/// interference sum of a few dozen transmitters.
const VANISHING_BETA: f64 = 1e-9;

fn degenerate_sinr() -> Medium {
    Medium::with_backend(
        CommunicationModel::CAM,
        MediumBackend::Sinr(SinrParams {
            alpha: 6.0,
            beta: VANISHING_BETA,
            noise: 0.0,
            interference_factor: 3.0,
        }),
    )
}

/// Splits the generated field into positions and a non-empty transmitter
/// set (node 0 transmits when the drawn set would be empty).
fn field(nodes: &[(f64, f64, u32)]) -> (Topology, Vec<u32>) {
    let pts: Vec<Point2> = nodes.iter().map(|&(x, y, _)| Point2::new(x, y)).collect();
    let mut txs: Vec<u32> = nodes
        .iter()
        .enumerate()
        .filter_map(|(i, &(_, _, tx))| (tx == 1).then_some(i as u32))
        .collect();
    if txs.is_empty() {
        txs.push(0);
    }
    let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
    (topo, txs)
}

/// Resolves one slot and returns the sorted clean (receiver, transmitter)
/// pairs plus the slot's collision count.
fn deliveries(medium: &Medium, topo: &Topology, txs: &[u32]) -> (Vec<(u32, u32)>, u64) {
    let mut scratch = MediumScratch::new(topo.len());
    let mut pairs = Vec::new();
    let stats = medium.resolve_slot(topo, txs, &mut scratch, None, |rx, tx| {
        pairs.push((rx.0, tx.0));
    });
    pairs.sort_unstable();
    (pairs, stats.collisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On arbitrary random fields, the β→0 SINR backend delivers a
    /// superset of the unit-disk deliveries, pair for pair — and exactly
    /// the unit-disk deliveries on slots with no contended receiver.
    #[test]
    fn vanishing_beta_sinr_degenerates_to_unit_disk(
        nodes in collection::vec((0.0f64..25.0, 0.0f64..25.0, 0u32..2), 2..40),
    ) {
        let (topo, txs) = field(&nodes);
        let unit = Medium::new(CommunicationModel::CAM);
        let sinr = degenerate_sinr();
        let (unit_pairs, unit_collisions) = deliveries(&unit, &topo, &txs);
        let (sinr_pairs, sinr_collisions) = deliveries(&sinr, &topo, &txs);

        for pair in &unit_pairs {
            prop_assert!(
                sinr_pairs.binary_search(pair).is_ok(),
                "unit-disk delivery {:?} lost under β→0 SINR",
                pair
            );
        }
        // β→0 leaves nothing for the threshold test to reject.
        prop_assert_eq!(sinr_collisions, 0, "β→0 SINR still garbled a reception");
        // Every unit-disk collision is a ≥2-candidate receiver the SINR
        // backend captures instead, so the delivery surplus matches.
        prop_assert_eq!(
            sinr_pairs.len() as u64,
            unit_pairs.len() as u64 + unit_collisions,
            "captured receivers must account for the delivery surplus"
        );
        // Sparse/uncontended regime: the degenerate backend is bitwise the
        // unit-disk model.
        if unit_collisions == 0 {
            prop_assert_eq!(
                unit_pairs,
                sinr_pairs,
                "backends diverge on an uncontended slot"
            );
        }
    }
}
