//! Exhaustive-interleaving model of the sharded engine's atomic-claim
//! contention discipline (`resolve_slot_cam` in `src/sharded.rs`).
//!
//! Pass A of the sharded CAM slot resolver runs this protocol per
//! transmitter worker:
//!
//! ```text
//! for v in neighbors(tx):
//!     if claim_word.fetch_or(1 << v) had bit v clear:  # AtomicBitSet::claim
//!         local_touched.push(v)                        # v is MINE to classify
//!     rx_count[v].fetch_add(1)                         # exposure accumulates
//! ```
//!
//! Pass B's safety — each touched receiver read, classified, and reset by
//! exactly one worker, with no further synchronization — rests on two
//! claims about pass A, checked here for **every** schedule with the
//! vendored `loom` shim:
//!
//! 1. every receiver touched by any worker lands in exactly one worker's
//!    `touched` list (the claim is an exclusive election), and
//! 2. the relaxed `fetch_add` exposure counts are exact regardless of
//!    interleaving (commutativity — this is why the engine's traces are
//!    bitwise thread-count invariant).
//!
//! `detects_broken_claim` is the control experiment: replacing the atomic
//! `fetch_or` election with a load-then-store — the bug the discipline is
//! one careless refactor away from — must be caught by some schedule,
//! proving the checker explores the racy interleavings.

use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use loom::sync::Arc;

/// Receiver sets of the two modeled transmitter workers: receiver 1 is the
/// contended one (both workers touch it), 0 and 2 are exclusive.
const NEIGHBORS: [&[u64]; 2] = [&[0, 1], &[1, 2]];
const RECEIVERS: usize = 3;

/// One pass-A worker: claim-then-count over its receiver list, exactly as
/// `resolve_slot_cam` does per transmitter chunk.
fn pass_a_worker(word: &AtomicU64, rx_count: &[AtomicU32], neighbors: &[u64]) -> Vec<u64> {
    let mut touched = Vec::new();
    for &v in neighbors {
        let mask = 1u64 << v;
        if word.fetch_or(mask, Ordering::Relaxed) & mask == 0 {
            touched.push(v);
        }
        rx_count[v as usize].fetch_add(1, Ordering::Relaxed);
    }
    touched
}

#[test]
fn every_touched_receiver_claimed_exactly_once() {
    loom::model(|| {
        let word = Arc::new(AtomicU64::new(0));
        let rx_count: Arc<Vec<AtomicU32>> =
            Arc::new((0..RECEIVERS).map(|_| AtomicU32::new(0)).collect());
        let handles: Vec<_> = NEIGHBORS
            .iter()
            .map(|&nbrs| {
                let word = Arc::clone(&word);
                let rx_count = Arc::clone(&rx_count);
                loom::thread::spawn(move || pass_a_worker(&word, &rx_count, nbrs))
            })
            .collect();
        let mut all_touched: Vec<u64> = Vec::new();
        for h in handles {
            all_touched.extend(h.join().expect("worker panicked"));
        }
        // Exclusive election: each receiver in exactly one touched list.
        all_touched.sort_unstable();
        assert_eq!(all_touched, vec![0, 1, 2], "claim election not exclusive");
        // Exact exposure counts: the contended receiver saw both
        // transmissions (a collision pass B must observe), the others one.
        let counts: Vec<u32> = rx_count.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        assert_eq!(counts, vec![1, 2, 1], "exposure counts not exact");
    });
}

/// Control: a load-then-store "claim" lets two workers both elect the
/// contended receiver under some schedule; the checker must find it.
#[test]
#[should_panic(expected = "claim election not exclusive")]
fn detects_broken_claim() {
    loom::model(|| {
        let word = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = NEIGHBORS
            .iter()
            .map(|&nbrs| {
                let word = Arc::clone(&word);
                loom::thread::spawn(move || {
                    let mut touched = Vec::new();
                    for &v in nbrs {
                        let mask = 1u64 << v;
                        // BUG under test: non-atomic read-modify-write.
                        let prev = word.load(Ordering::Relaxed);
                        word.store(prev | mask, Ordering::Relaxed);
                        if prev & mask == 0 {
                            touched.push(v);
                        }
                    }
                    touched
                })
            })
            .collect();
        let mut all_touched: Vec<u64> = Vec::new();
        for h in handles {
            all_touched.extend(h.join().expect("worker panicked"));
        }
        all_touched.sort_unstable();
        assert_eq!(all_touched, vec![0, 1, 2], "claim election not exclusive");
    });
}
