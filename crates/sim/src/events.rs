//! Event-delivery metric for transmit-only sensor fields.
//!
//! The paper's broadcast experiments measure how information spreads *from*
//! the source. Transmit-only capability classes
//! ([`Capability::TransmitOnly`](nss_model::faults::Capability)) invert the
//! question: a cheap sensor that can radio but never listen detects an
//! event and must push it *into* the network. This module scores that
//! uplink: every transmit-capable non-sink node repeatedly broadcasts its
//! event report over a contended CAM medium, and we count how many events
//! are (a) **heard** — cleanly received at least once by a node that can
//! listen — and (b) **deliverable** — heard by a receiver that can relay
//! to the sink (node 0) through the receive-capable subgraph.
//!
//! The relay leg is scored structurally (a BFS over alive, receive-capable
//! nodes), not simulated slot-by-slot: once a listening relay holds the
//! report, the ordinary gossip machinery of [`crate::slotted`] applies and
//! is measured elsewhere. What this metric isolates is the part that is
//! *new* under capability classes — the contended first hop out of a deaf
//! transmitter — so it is an optimistic bound on end-to-end delivery
//! (sleep schedules and energy exhaustion are ignored on the relay leg).
//!
//! All randomness (transmit coins, slot picks, link loss) is stateless
//! hashing, so the metric is deterministic for a given `(field, seed)` and
//! identical under any execution order.

use crate::faults::FaultState;
use crate::medium::{Medium, MediumScratch};
use nss_model::comm::{CommunicationModel, MediumBackend};
use nss_model::faults::{hash_unit, Capability, FaultPlan};
use nss_model::ids::NodeId;
use nss_model::topology::Topology;

/// Salt for the per-(source, round) transmit coin.
const EVENT_COIN_SALT: u64 = 0x00E7_C01A_5EED_0001;
/// Salt for the per-(source, round) slot pick.
const EVENT_SLOT_SALT: u64 = 0x00E7_5107_5EED_0002;

/// Scenario description for one event-delivery measurement.
#[derive(Debug, Clone, Copy)]
pub struct EventField<'a> {
    /// Capability classes and loss model for the field.
    pub plan: &'a FaultPlan,
    /// Seed for the plan's random decisions (capability draw, link loss).
    pub faults_seed: u64,
    /// How many phases each source retries its report.
    pub rounds: u32,
    /// Slots per round the sources randomize over.
    pub slots: u32,
    /// Per-round transmit probability of each source.
    pub prob: f64,
    /// Physical-layer backend arbitrating the uplink slots.
    pub backend: MediumBackend,
}

/// Outcome of [`run_event_delivery`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventDeliveryReport {
    /// Event sources: transmit-capable nodes other than the sink.
    pub sources: u32,
    /// Sources whose report was cleanly received by a listening node.
    pub heard: u32,
    /// Heard sources with a listening receiver in the sink's
    /// receive-capable component.
    pub delivered: u32,
    /// Rounds each source was given.
    pub rounds: u32,
    /// Garbled receptions across the run (collisions plus, under a SINR
    /// backend, sub-threshold rejects).
    pub collisions: u64,
    /// Mean 1-based round of first clean reception, over heard sources
    /// (`0.0` when nothing was heard).
    pub mean_first_heard_round: f64,
}

impl EventDeliveryReport {
    /// Fraction of sources heard by any listening node.
    pub fn heard_rate(&self) -> f64 {
        if self.sources == 0 {
            0.0
        } else {
            f64::from(self.heard) / f64::from(self.sources)
        }
    }

    /// Fraction of sources whose report can reach the sink.
    pub fn delivery_rate(&self) -> f64 {
        if self.sources == 0 {
            0.0
        } else {
            f64::from(self.delivered) / f64::from(self.sources)
        }
    }
}

/// True when `u` can relay toward the sink: fully capable (alive and
/// listening) under the field's capability draw.
fn relays(plan: &FaultPlan, u: u32, faults_seed: u64) -> bool {
    plan.capability_of(u, faults_seed) == Capability::Normal
}

/// BFS component of the sink over relay-capable nodes.
fn sink_component(topo: &Topology, plan: &FaultPlan, faults_seed: u64) -> Vec<bool> {
    let n = topo.len();
    let mut in_comp = vec![false; n];
    if n == 0 || !relays(plan, 0, faults_seed) {
        return in_comp;
    }
    in_comp[0] = true;
    let mut queue = std::collections::VecDeque::from([0u32]);
    while let Some(u) = queue.pop_front() {
        for &v in topo.neighbors(NodeId(u)) {
            if !in_comp[v as usize] && relays(plan, v, faults_seed) {
                in_comp[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    in_comp
}

/// Runs the uplink metric over `field` and returns its report.
///
/// Every transmit-capable node except the sink is an event source. Each
/// round, each not-yet-heard source flips a stateless coin
/// (`field.prob`), picks one of `field.slots` slots, and broadcasts; the
/// slots are arbitrated by the CAM medium under `field.backend`, with the
/// plan's link loss and hearing mask applied. Deterministic in
/// `(topo, field, seed)`.
pub fn run_event_delivery(
    topo: &Topology,
    field: &EventField<'_>,
    seed: u64,
) -> EventDeliveryReport {
    field
        .plan
        .validate()
        .unwrap_or_else(|e| panic!("invalid FaultPlan: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; `validate()` is the fallible path
    field
        .backend
        .validate()
        .unwrap_or_else(|e| panic!("invalid MediumBackend: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs
    assert!(field.rounds > 0, "need at least one round");
    assert!(field.slots > 0, "need at least one slot per round");
    assert!(
        (0.0..=1.0).contains(&field.prob),
        "transmit probability must lie in [0,1]"
    );

    let n = topo.len();
    let medium = Medium::with_backend(CommunicationModel::CAM, field.backend);
    let mut scratch = MediumScratch::new(n);
    let mut fs = FaultState::new(field.plan, field.faults_seed, n);
    let in_comp = sink_component(topo, field.plan, field.faults_seed);

    let sources: Vec<u32> = (1..n as u32)
        .filter(|&u| {
            field
                .plan
                .capability_of(u, field.faults_seed)
                .can_transmit()
        })
        .collect();
    let mut first_heard: Vec<u32> = vec![u32::MAX; n];
    let mut delivered_mask = vec![false; n];
    let mut heard = 0u32;
    let mut delivered = 0u32;
    let mut collisions = 0u64;
    let mut slot_txs: Vec<Vec<u32>> = vec![Vec::new(); field.slots as usize];

    for round in 0..field.rounds {
        if heard == sources.len() as u32 {
            break;
        }
        fs.begin_phase(round);
        for bucket in &mut slot_txs {
            bucket.clear();
        }
        for &u in &sources {
            if first_heard[u as usize] != u32::MAX || !fs.is_alive(u as usize) {
                continue;
            }
            let payload = (u64::from(round) << 32) | u64::from(u);
            if hash_unit(seed ^ EVENT_COIN_SALT, payload) >= field.prob {
                continue;
            }
            let pick = hash_unit(seed ^ EVENT_SLOT_SALT, payload) * f64::from(field.slots);
            let slot = (pick as u32).min(field.slots - 1);
            slot_txs[slot as usize].push(u);
        }
        for (slot, txs) in slot_txs.iter().enumerate() {
            if txs.is_empty() {
                continue;
            }
            let sf = fs.slot(round, slot as u32);
            let stats = medium.resolve_slot(topo, txs, &mut scratch, Some(&sf), |rx, tx| {
                let (src, listener) = (tx.index(), rx.index());
                if first_heard[src] == u32::MAX {
                    first_heard[src] = round + 1;
                    heard += 1;
                }
                if !delivered_mask[src] && in_comp[listener] {
                    delivered_mask[src] = true;
                    delivered += 1;
                }
            });
            collisions += stats.collisions + stats.sinr_rejects;
        }
    }

    let heard_rounds: u64 = sources
        .iter()
        .filter(|&&u| first_heard[u as usize] != u32::MAX)
        .map(|&u| u64::from(first_heard[u as usize]))
        .sum();
    EventDeliveryReport {
        sources: sources.len() as u32,
        heard,
        delivered,
        rounds: field.rounds,
        collisions,
        mean_first_heard_round: if heard == 0 {
            0.0
        } else {
            heard_rounds as f64 / f64::from(heard)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::comm::SinrParams;
    use nss_model::deployment::Deployment;

    fn topo(nodes: u32, sample: u64) -> Topology {
        Topology::build(&Deployment::disk(nodes, 1.0, 60.0).sample(sample))
    }

    fn line(n: usize) -> Topology {
        use nss_model::deployment::DeployedNetwork;
        use nss_model::geometry::Point2;
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    fn field(plan: &FaultPlan) -> EventField<'_> {
        EventField {
            plan,
            faults_seed: 11,
            rounds: 20,
            slots: 4,
            prob: 0.5,
            backend: MediumBackend::UnitDisk,
        }
    }

    #[test]
    fn fault_free_connected_field_delivers_everything() {
        // A line is connected by construction, so every source's report
        // must be heard and deliverable within the retry budget.
        let topo = line(6);
        let plan = FaultPlan::none();
        let report = run_event_delivery(&topo, &field(&plan), 3);
        assert_eq!(report.sources as usize, topo.len() - 1);
        assert_eq!(report.heard, report.sources);
        assert_eq!(report.delivered, report.sources);
        assert!((report.heard_rate() - 1.0).abs() < 1e-12);
        assert!(report.mean_first_heard_round >= 1.0);
    }

    #[test]
    fn transmit_only_sources_still_count_and_deliver_through_listeners() {
        let topo = topo(5, 2);
        let plan = FaultPlan::transmit_only(0.4);
        let report = run_event_delivery(&topo, &field(&plan), 3);
        // Transmit-only nodes are sources too; only dead nodes drop out.
        assert_eq!(report.sources as usize, topo.len() - 1);
        assert!(report.heard > 0);
        assert!(report.delivered <= report.heard);
        // Determinism: same inputs, same report.
        let again = run_event_delivery(&topo, &field(&plan), 3);
        assert_eq!(report, again);
    }

    #[test]
    fn saturated_transmit_only_field_is_deaf() {
        // Near-total transmit-only fraction: almost nobody can listen, so
        // hearing (and delivery) collapses versus the fault-free field.
        let topo = topo(5, 2);
        let healthy = FaultPlan::none();
        let deaf = FaultPlan::transmit_only(0.95);
        let base = run_event_delivery(&topo, &field(&healthy), 3);
        let worst = run_event_delivery(&topo, &field(&deaf), 3);
        assert!(worst.heard < base.heard);
        assert!(worst.delivered < base.delivered);
    }

    #[test]
    fn sinr_backend_is_deterministic_and_bounded() {
        let topo = topo(5, 2);
        let plan = FaultPlan::transmit_only(0.3);
        let mut f = field(&plan);
        f.backend = MediumBackend::Sinr(SinrParams::DEFAULT);
        let a = run_event_delivery(&topo, &f, 9);
        let b = run_event_delivery(&topo, &f, 9);
        assert_eq!(a, b);
        assert!(a.heard <= a.sources);
        assert!(a.delivered <= a.heard);
    }

    #[test]
    fn dead_sink_kills_delivery_but_not_hearing() {
        let topo = topo(5, 2);
        // Kill every node's relay capability by making everyone lossless
        // but the sink unreachable: a fully dead field has no sources.
        let plan = FaultPlan::thinned(1.0);
        let report = run_event_delivery(&topo, &field(&plan), 3);
        assert_eq!(report.sources, 0);
        assert_eq!(report.heard, 0);
        assert_eq!(report.delivery_rate(), 0.0);
    }
}
