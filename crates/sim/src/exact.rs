//! Exact (exhaustive) analysis of PB_CAM on tiny topologies.
//!
//! For networks of up to ~10 nodes the full probability space of a PB_CAM
//! execution — every rebroadcast coin flip and every jitter-slot
//! assignment — can be enumerated exactly. This gives ground truth that
//! neither the mean-field ring model (an approximation) nor the Monte
//! Carlo simulator (an estimator) provides, and the workspace uses it to
//! validate both (see tests here and `tests/exact_validation.rs`).
//!
//! State space: `(informed, pending)` bitmask pairs. A phase transition
//! enumerates the `2^|pending|` coin outcomes and, for each transmitter
//! set, the `s^|tx|` slot assignments, resolving receptions under the
//! Assumption-6 collision rule. Memoization on the state pair keeps the
//! recursion tractable despite overlapping trajectories.

use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use std::collections::HashMap;

/// Upper bound on the node count for exact analysis (the state and
/// per-phase enumeration are exponential).
pub const MAX_EXACT_NODES: usize = 12;

/// Exact expected *final* informed-node count (including the source) of
/// PB_CAM with rebroadcast probability `p` and `s` jitter slots, under the
/// transmission-range CAM collision rule.
pub fn exact_expected_informed(topo: &Topology, s: u32, p: f64) -> f64 {
    assert!(
        topo.len() <= MAX_EXACT_NODES,
        "exact analysis limited to {MAX_EXACT_NODES} nodes, got {}",
        topo.len()
    );
    assert!(s >= 1, "need at least one slot");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let n = topo.len();
    if n == 0 {
        return 0.0;
    }
    // Adjacency as bitmasks.
    let adj: Vec<u32> = (0..n)
        .map(|u| {
            topo.neighbors(NodeId(u as u32))
                .iter()
                .fold(0u32, |m, &v| m | (1 << v))
        })
        .collect();

    let mut memo: HashMap<(u32, u32), f64> = HashMap::new();
    let source_bit = 1u32 << NodeId::SOURCE.index();
    // Phase 1: the source transmits alone — all its neighbors receive.
    let informed = source_bit | adj[NodeId::SOURCE.index()];
    let pending = informed & !source_bit;
    expected(informed, pending, &adj, n, s, p, &mut memo)
}

/// Exact expected final reachability (fraction of all nodes).
///
/// ```
/// use nss_model::deployment::DeployedNetwork;
/// use nss_model::geometry::Point2;
/// use nss_model::topology::Topology;
/// use nss_sim::exact::exact_expected_reachability;
///
/// // A 3-node line: node 2 is reached iff node 1 rebroadcasts.
/// let pts = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(2.0, 0.0)];
/// let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
/// let r = exact_expected_reachability(&topo, 3, 0.5);
/// assert!((r - 2.5 / 3.0).abs() < 1e-12);
/// ```
pub fn exact_expected_reachability(topo: &Topology, s: u32, p: f64) -> f64 {
    exact_expected_informed(topo, s, p) / topo.len() as f64
}

fn expected(
    informed: u32,
    pending: u32,
    adj: &[u32],
    n: usize,
    s: u32,
    p: f64,
    memo: &mut HashMap<(u32, u32), f64>,
) -> f64 {
    if pending == 0 {
        return f64::from(informed.count_ones());
    }
    if let Some(&v) = memo.get(&(informed, pending)) {
        return v;
    }
    let pend: Vec<usize> = (0..n).filter(|&u| pending & (1 << u) != 0).collect();
    let k = pend.len();
    let mut total = 0.0f64;
    // Enumerate coin outcomes: which pending nodes transmit.
    for coin in 0..(1u32 << k) {
        let ntx = coin.count_ones();
        let prob_coin = p.powi(ntx as i32) * (1.0 - p).powi((k as u32 - ntx) as i32);
        if prob_coin == 0.0 {
            continue;
        }
        let tx: Vec<usize> = pend
            .iter()
            .enumerate()
            .filter(|&(i, _)| coin & (1 << i) != 0)
            .map(|(_, &u)| u)
            .collect();
        if tx.is_empty() {
            total += prob_coin * f64::from(informed.count_ones());
            continue;
        }
        // Enumerate slot assignments.
        let assignments = (s as u64).pow(tx.len() as u32);
        let prob_slot = 1.0 / assignments as f64;
        for code in 0..assignments {
            // Per-slot transmitter masks.
            let mut c = code;
            let mut slot_tx = vec![0u32; s as usize];
            for &u in &tx {
                slot_tx[(c % u64::from(s)) as usize] |= 1 << u;
                c /= u64::from(s);
            }
            // Resolve receptions (Assumption 6, transmission range).
            let mut newly = 0u32;
            for mask in &slot_tx {
                if *mask == 0 {
                    continue;
                }
                for (v, &adj_v) in adj.iter().enumerate() {
                    if informed & (1 << v) != 0 || newly & (1 << v) != 0 {
                        // Already informed nodes ignore duplicates; a node
                        // newly informed in an earlier slot of this phase
                        // likewise.
                        continue;
                    }
                    if (mask & adj_v).count_ones() == 1 {
                        newly |= 1 << v;
                    }
                }
            }
            let next_informed = informed | newly;
            total += prob_coin * prob_slot * expected(next_informed, newly, adj, n, s, p, memo);
        }
    }
    memo.insert((informed, pending), total);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::slotted::GossipConfig;
    use nss_model::deployment::DeployedNetwork;
    use nss_model::geometry::Point2;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    /// Fully-connected triangle plus a far node reachable only through one
    /// relay — a shape with interesting collision structure.
    fn kite() -> Topology {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.8, 0.5),
            Point2::new(0.8, -0.5),
            Point2::new(1.7, 0.0),
        ];
        Topology::build(&DeployedNetwork::from_positions(pts, 1.05))
    }

    #[test]
    fn two_node_network_is_trivial() {
        let topo = line(2);
        for p in [0.0, 0.3, 1.0] {
            // Source informs node 1 in phase 1, always.
            assert!((exact_expected_informed(&topo, 3, p) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn three_node_line_closed_form() {
        // 0-1-2: node 1 informed in phase 1. Node 2 informed iff node 1
        // rebroadcasts (prob p) — no contention possible. E[informed] =
        // 2 + p.
        let topo = line(3);
        for p in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let e = exact_expected_informed(&topo, 3, p);
            assert!((e - (2.0 + p)).abs() < 1e-12, "p={p}: {e}");
        }
    }

    #[test]
    fn kite_collision_probability_closed_form() {
        // Kite with p=1, s slots: nodes 1, 2 informed in phase 1; both
        // transmit in phase 2. Node 3 hears both → informed iff they pick
        // different slots: P = (s−1)/s. E = 3 + (s−1)/s.
        let topo = kite();
        assert_eq!(topo.degree(NodeId(3)), 2, "kite wiring");
        for s in [1u32, 2, 3, 4] {
            let e = exact_expected_informed(&topo, s, 1.0);
            let expect = 3.0 + f64::from(s - 1) / f64::from(s);
            assert!((e - expect).abs() < 1e-12, "s={s}: {e} vs {expect}");
        }
    }

    #[test]
    fn kite_partial_probability() {
        // p < 1: node 3 is informed if exactly one of {1,2} transmits, or
        // both transmit in different slots. Then it never matters further.
        // P(reach 3) = 2p(1−p) + p²(s−1)/s.
        let topo = kite();
        let s = 3u32;
        for p in [0.2, 0.5, 0.8] {
            let e = exact_expected_informed(&topo, s, p);
            let reach3 = 2.0 * p * (1.0 - p) + p * p * (f64::from(s - 1) / f64::from(s));
            assert!((e - (3.0 + reach3)).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        // The simulator must estimate the exact value within Monte Carlo
        // error on a topology with real contention.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.3),
            Point2::new(0.9, -0.3),
            Point2::new(1.6, 0.4),
            Point2::new(1.6, -0.4),
            Point2::new(2.4, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
        let s = 3u32;
        let p = 0.6;
        let exact = exact_expected_reachability(&topo, s, p);

        let runs = 40_000u64;
        let mut cfg = GossipConfig::pb_cam(p);
        cfg.s = s;
        let mut total = 0.0;
        for seed in 0..runs {
            total += Executor::new(&topo)
                .gossip(cfg)
                .run(seed)
                .final_reachability();
        }
        let mc = total / runs as f64;
        // Std error ≈ 0.5/√runs ≈ 0.0025; allow 5σ.
        assert!(
            (mc - exact).abs() < 0.0125,
            "Monte Carlo {mc:.4} vs exact {exact:.4}"
        );
    }

    #[test]
    fn exact_monotone_in_slots() {
        let topo = kite();
        let mut prev = 0.0;
        for s in 1..=5u32 {
            let e = exact_expected_informed(&topo, s, 1.0);
            assert!(e >= prev - 1e-12, "more slots can't hurt: s={s}");
            prev = e;
        }
    }

    #[test]
    fn exact_bounds() {
        let topo = line(5);
        for p in [0.1, 0.5, 1.0] {
            let e = exact_expected_informed(&topo, 2, p);
            assert!((2.0 - 1e-12..=5.0 + 1e-12).contains(&e));
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn large_networks_rejected() {
        let topo = line(MAX_EXACT_NODES + 1);
        let _ = exact_expected_informed(&topo, 3, 0.5);
    }
}
