//! Slot-synchronous execution of phase-structured gossip (PB_CAM's native
//! habitat, §4.2).
//!
//! Time is organized in phases of `s` slots. A node informed during phase
//! `i` decides **once** — with probability `p` — whether to rebroadcast; if
//! it does, it transmits in a uniformly random slot of phase `i+1` (the
//! paper's jitter/backoff). Phase 1 is the source's uncontended broadcast.
//!
//! The executor is model-agnostic: plugging a CFM [`Medium`] gives the
//! collision-free execution the paper uses as a motivating contrast, and a
//! CAM medium gives PB_CAM proper (with either collision rule).

use crate::bits::BitSet;
use crate::faults::FaultState;
use crate::medium::{Medium, MediumScratch, SlotStats};
use crate::trace::SimTrace;
use nss_model::comm::{CommunicationModel, MediumBackend};
use nss_model::error::ConfigError;
use nss_model::faults::FaultPlan;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a probability-based gossip execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Jitter slots per phase `s` (the paper uses 3).
    pub s: u32,
    /// Broadcast probability `p` (1.0 = simple flooding).
    pub prob: f64,
    /// Communication model (CFM, or CAM with a collision rule).
    pub model: CommunicationModel,
    /// Hard cap on phases (safety net; gossip normally dies out on its own).
    pub max_phases: usize,
    /// Record per-broadcast delivery ratios (Fig. 12 measurement).
    pub track_success_rate: bool,
    /// Per-phase per-node death probability (failure injection). The
    /// paper's Assumption 5 fixes a stable snapshot (`0.0`); non-zero
    /// values quantify the protocol's sensitivity to that assumption.
    /// Dead nodes neither transmit nor receive; the source never dies
    /// (a dead source makes reachability trivially degenerate).
    pub node_failure_per_phase: f64,
    /// Physical-layer backend resolving CAM slots (unit-disk reception by
    /// default; [`MediumBackend::Sinr`] replaces Assumption 6 with the
    /// SINR threshold test). Ignored under CFM.
    #[serde(default)]
    pub backend: MediumBackend,
}

impl GossipConfig {
    /// The paper's PB_CAM configuration (`s = 3`, transmission-range CAM).
    pub fn pb_cam(prob: f64) -> Self {
        GossipConfig {
            s: 3,
            prob,
            model: CommunicationModel::CAM,
            max_phases: 10_000,
            track_success_rate: false,
            node_failure_per_phase: 0.0,
            backend: MediumBackend::UnitDisk,
        }
    }

    /// Simple flooding under CAM (`p = 1`).
    pub fn flooding_cam() -> Self {
        Self::pb_cam(1.0)
    }

    /// Probability-based gossip under CFM (no collisions).
    pub fn gossip_cfm(prob: f64) -> Self {
        GossipConfig {
            s: 3,
            prob,
            model: CommunicationModel::Cfm,
            max_phases: 10_000,
            track_success_rate: false,
            node_failure_per_phase: 0.0,
            backend: MediumBackend::UnitDisk,
        }
    }

    /// Returns the config with a different physical-layer backend.
    pub fn with_backend(mut self, backend: MediumBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.s < 1 {
            return Err(ConfigError::TooSmall {
                field: "s",
                min: 1,
                value: u64::from(self.s),
            });
        }
        if !(0.0..=1.0).contains(&self.prob) {
            return Err(ConfigError::OutOfUnitRange {
                field: "prob",
                value: self.prob,
            });
        }
        if !(0.0..=1.0).contains(&self.node_failure_per_phase) {
            return Err(ConfigError::OutOfUnitRange {
                field: "node_failure_per_phase",
                value: self.node_failure_per_phase,
            });
        }
        if self.max_phases < 1 {
            return Err(ConfigError::TooSmall {
                field: "max_phases",
                min: 1,
                value: self.max_phases as u64,
            });
        }
        self.backend.validate()?;
        Ok(())
    }
}

/// Core sequential gossip loop: probability axis, seed, and optional
/// faults. Public entry is the [`crate::executor::Executor`] builder; the
/// builder's bitwise-equality tests pin this seam directly.
pub(crate) fn run_gossip_with(
    topo: &Topology,
    cfg: &GossipConfig,
    prob_of: impl Fn(usize) -> f64,
    seed: u64,
    faults: Option<(&FaultPlan, u64)>,
) -> SimTrace {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid GossipConfig: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; `validate()` is the fallible path
    let n = topo.len();
    let mut trace = SimTrace::new(n);
    if n == 0 {
        return trace;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let medium = Medium::with_backend(cfg.model, cfg.backend);
    let mut scratch = MediumScratch::new(n);

    // Packed per-node flags: 64 nodes per word keeps the phase loop's
    // working set proportional to the active frontier.
    let mut informed = BitSet::new(n);
    informed.set(NodeId::SOURCE.index());
    let mut alive = BitSet::filled(n);
    // Fault interpretation is only instantiated for non-empty plans; the
    // `None` path below is byte-for-byte the pre-fault executor.
    let mut fault_state = faults.map(|(plan, fseed)| FaultState::new(plan, fseed, n));

    // Nodes informed in the previous phase, pending their (single)
    // rebroadcast decision.
    let mut pending: Vec<u32> = vec![NodeId::SOURCE.0];
    // Per-slot transmitter lists, reused across phases.
    let mut slots: Vec<Vec<u32>> = vec![Vec::new(); cfg.s as usize];
    // Per-transmitter clean-delivery tally (success-rate tracking).
    let mut delivered = vec![0u32; n];

    for phase in 1..=cfg.max_phases as u32 {
        for sl in &mut slots {
            sl.clear();
        }
        if let Some(fs) = fault_state.as_mut() {
            fs.begin_phase(phase);
        }
        // Failure injection: each alive non-source node dies independently
        // at the start of the phase.
        if cfg.node_failure_per_phase > 0.0 {
            for u in 1..n {
                if alive.get(u) && rng.random::<f64>() < cfg.node_failure_per_phase {
                    alive.clear_bit(u);
                }
            }
        }
        let mut tx_count = 0u32;
        if phase == 1 {
            // The source's initial broadcast: unconditional, uncontended.
            slots[0].push(NodeId::SOURCE.0);
            tx_count = 1;
        } else {
            for &u in &pending {
                if !alive.get(u as usize) {
                    continue;
                }
                // A node the fault plan has down this phase forfeits its
                // (single) rebroadcast opportunity.
                if let Some(fs) = fault_state.as_ref() {
                    if !fs.is_alive(u as usize) {
                        continue;
                    }
                }
                let p_u = prob_of(u as usize);
                if p_u >= 1.0 || rng.random::<f64>() < p_u {
                    let sl = rng.random_range(0..cfg.s) as usize;
                    slots[sl].push(u);
                    tx_count += 1;
                    if let Some(fs) = fault_state.as_mut() {
                        fs.note_broadcast(u);
                    }
                }
            }
        }
        trace.broadcasts_by_phase.push(tx_count);
        nss_obs::counter!("sim.broadcasts").add(u64::from(tx_count));

        let mut newly: Vec<u32> = Vec::new();
        let mut deliveries = 0u64;
        let mut phase_stats = SlotStats::default();
        for (si, sl) in slots.iter().enumerate() {
            let sf = fault_state.as_ref().map(|fs| fs.slot(phase, si as u32));
            phase_stats.absorb(medium.resolve_slot(
                topo,
                sl,
                &mut scratch,
                sf.as_ref(),
                |rx, tx| {
                    if !alive.get(rx.index()) {
                        return; // dead radios hear nothing
                    }
                    deliveries += 1;
                    delivered[tx.index()] += 1;
                    if !informed.get(rx.index()) {
                        informed.set(rx.index());
                        trace.first_rx_phase[rx.index()] = phase;
                        newly.push(rx.0);
                    }
                },
            ));
        }
        trace.deliveries_by_phase.push(deliveries);
        trace.collisions_by_phase.push(phase_stats.collisions);
        trace.cs_deferrals_by_phase.push(phase_stats.cs_deferrals);
        if cfg.backend.is_sinr() {
            trace.sinr_rejects_by_phase.push(phase_stats.sinr_rejects);
        }
        if let Some(fs) = fault_state.as_ref() {
            trace.losses_by_phase.push(phase_stats.losses);
            trace.dead_drops_by_phase.push(phase_stats.dead_drops);
            // Effective liveness combines the plan with the legacy per-phase
            // failure injection.
            let effective = (0..n).filter(|&u| alive.get(u) && fs.is_alive(u)).count() as u32;
            trace.alive_by_phase.push(effective);
        }

        if cfg.track_success_rate {
            let mut rate_sum = 0.0f64;
            let mut count = 0u32;
            for sl in &slots {
                for &t in sl {
                    let deg = topo.degree(NodeId(t));
                    if deg > 0 {
                        rate_sum += f64::from(delivered[t as usize]) / deg as f64;
                        count += 1;
                    }
                    delivered[t as usize] = 0;
                }
            }
            trace.success_rate_by_phase.push((rate_sum, count));
        } else {
            for sl in &slots {
                for &t in sl {
                    delivered[t as usize] = 0;
                }
            }
        }

        pending = newly;
        if pending.is_empty() {
            // Nobody was newly informed, so nobody has a rebroadcast
            // pending: the cascade is dead.
            break;
        }
    }
    trace
}

#[cfg(test)]
// The legacy free-function shims stay covered here until their removal;
// crate::executor::tests proves the builder reproduces each one bit-for-bit.
mod tests {
    use super::*;
    use crate::executor::Executor;
    use nss_model::comm::CollisionRule;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;
    use nss_model::topology::Topology;

    // The former free-function entry points, reconstructed on top of the
    // `Executor` builder: every trace below exercises the public API.
    fn run_gossip(topo: &Topology, cfg: &GossipConfig, seed: u64) -> SimTrace {
        Executor::new(topo).gossip(*cfg).run(seed)
    }

    fn run_gossip_faulty(
        topo: &Topology,
        cfg: &GossipConfig,
        plan: &FaultPlan,
        seed: u64,
        faults_seed: u64,
    ) -> SimTrace {
        Executor::new(topo)
            .gossip(*cfg)
            .faults(plan.clone())
            .faults_seed(faults_seed)
            .run(seed)
    }

    fn run_gossip_per_node(
        topo: &Topology,
        cfg: &GossipConfig,
        probs: &[f64],
        seed: u64,
    ) -> SimTrace {
        Executor::new(topo)
            .gossip(*cfg)
            .per_node_probs(probs.to_vec())
            .run(seed)
    }

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn flooding_on_line_under_cfm_reaches_everyone() {
        let topo = line(10);
        let cfg = GossipConfig {
            model: CommunicationModel::Cfm,
            ..GossipConfig::flooding_cam()
        };
        let trace = run_gossip(&topo, &cfg, 1);
        assert_eq!(trace.informed_count(), 10);
        // Information moves one hop per phase: node i informed in phase i.
        for i in 1..10 {
            assert_eq!(trace.first_rx_phase[i], i as u32, "node {i}");
        }
        // Everyone broadcasts exactly once under p = 1.
        assert_eq!(trace.total_broadcasts(), 10);
    }

    #[test]
    fn flooding_on_line_under_cam_also_succeeds() {
        // On a line each node has ≤ 2 neighbors; with s = 3 slots the chain
        // usually survives, but single-run collisions are possible. Use a
        // seed that completes (determinism makes this stable) and verify
        // the collision rule does fire on some other seed.
        let topo = line(8);
        let cfg = GossipConfig::flooding_cam();
        let full = (0..50)
            .map(|seed| run_gossip(&topo, &cfg, seed).final_reachability())
            .filter(|&r| (r - 1.0).abs() < 1e-12)
            .count();
        assert!(full > 25, "most seeds should complete the line: {full}/50");
    }

    #[test]
    fn zero_probability_stops_immediately() {
        let topo = line(5);
        let cfg = GossipConfig::pb_cam(0.0);
        let trace = run_gossip(&topo, &cfg, 3);
        // Source informs node 1 in phase 1; nobody rebroadcasts.
        assert_eq!(trace.informed_count(), 2);
        assert_eq!(trace.total_broadcasts(), 1);
        assert!(trace.phases() <= 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 30.0).sample(5));
        let cfg = GossipConfig::pb_cam(0.4);
        let a = run_gossip(&topo, &cfg, 77);
        let b = run_gossip(&topo, &cfg, 77);
        assert_eq!(a.first_rx_phase, b.first_rx_phase);
        assert_eq!(a.broadcasts_by_phase, b.broadcasts_by_phase);
        let c = run_gossip(&topo, &cfg, 78);
        assert_ne!(a.first_rx_phase, c.first_rx_phase);
    }

    #[test]
    fn collision_star_topology() {
        // Two informed transmitters covering the same third node: under CAM
        // with s = 1 (single slot) the reception at the common neighbor
        // must fail in the phase where both transmit.
        let pts = vec![
            Point2::new(0.0, 0.0),  // source
            Point2::new(0.9, 0.6),  // A: neighbor of source and of C
            Point2::new(0.9, -0.6), // B: neighbor of source and of C
            Point2::new(1.8, 0.0),  // C: neighbor of A and B only
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.2));
        let mut cfg = GossipConfig::flooding_cam();
        cfg.s = 1;
        let trace = run_gossip(&topo, &cfg, 0);
        // Phase 1: source informs A and B. Phase 2: A and B both transmit
        // in the single slot → C collides. C can never be informed later
        // (A and B broadcast only once).
        assert_eq!(trace.informed_count(), 3);
        assert_eq!(trace.first_rx_phase[3], crate::trace::NEVER);
    }

    #[test]
    fn jitter_slots_rescue_the_star() {
        // Same topology with s = 3: some seeds separate A and B into
        // different slots, informing C.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.6),
            Point2::new(0.9, -0.6),
            Point2::new(1.8, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.2));
        let cfg = GossipConfig::flooding_cam();
        let succeeded = (0..40)
            .filter(|&seed| run_gossip(&topo, &cfg, seed).informed_count() == 4)
            .count();
        // P(different slots) = 2/3 per trial.
        assert!(
            (15..=35).contains(&succeeded),
            "expected ≈ 2/3 of 40 trials, got {succeeded}"
        );
    }

    #[test]
    fn cfm_dominates_cam_reachability() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(9));
        let cam = run_gossip(&topo, &GossipConfig::flooding_cam(), 1);
        let cfm = run_gossip(
            &topo,
            &GossipConfig {
                model: CommunicationModel::Cfm,
                ..GossipConfig::flooding_cam()
            },
            1,
        );
        assert!(cfm.final_reachability() >= cam.final_reachability());
        // CFM flooding reaches the whole connected component.
        let expect = topo.reachable_fraction(NodeId::SOURCE);
        assert!((cfm.final_reachability() - expect).abs() < 1e-12);
    }

    #[test]
    fn carrier_sense_reduces_or_equals_reachability() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(4));
        let mut reach_tr = 0.0;
        let mut reach_cs = 0.0;
        for seed in 0..10 {
            let tr = run_gossip(&topo, &GossipConfig::pb_cam(0.5), seed);
            let cs = run_gossip(
                &topo,
                &GossipConfig {
                    model: CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R),
                    ..GossipConfig::pb_cam(0.5)
                },
                seed,
            );
            reach_tr += tr.final_reachability();
            reach_cs += cs.final_reachability();
        }
        assert!(
            reach_cs <= reach_tr,
            "carrier sensing must not increase reachability: {reach_cs} vs {reach_tr}"
        );
    }

    #[test]
    fn success_rate_tracking_on_flooding() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(2));
        let mut cfg = GossipConfig::flooding_cam();
        cfg.track_success_rate = true;
        let trace = run_gossip(&topo, &cfg, 11);
        let sr = trace.mean_success_rate().expect("broadcasts happened");
        assert!(sr > 0.0 && sr < 1.0, "success rate {sr}");
        // Phase 1 is the uncontended source broadcast: its rate is 1.
        let (sum, count) = trace.success_rate_by_phase[0];
        assert_eq!(count, 1);
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcasts_bounded_by_informed_nodes() {
        // Each node transmits at most once, so M ≤ informed count.
        let topo = Topology::build(&Deployment::disk(5, 1.0, 50.0).sample(8));
        for seed in 0..5 {
            let t = run_gossip(&topo, &GossipConfig::pb_cam(0.7), seed);
            assert!(t.total_broadcasts() <= t.informed_count() as u64);
        }
    }

    #[test]
    fn phase_series_valid_on_random_runs() {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 40.0).sample(3));
        for seed in 0..5 {
            let t = run_gossip(&topo, &GossipConfig::pb_cam(0.3), seed);
            t.phase_series().validate().expect("invalid phase series");
        }
    }

    #[test]
    fn singleton_network() {
        let topo = line(1);
        let t = run_gossip(&topo, &GossipConfig::flooding_cam(), 0);
        assert_eq!(t.informed_count(), 1);
        assert_eq!(t.total_broadcasts(), 1);
        assert_eq!(t.final_reachability(), 1.0);
    }

    #[test]
    fn config_validation() {
        let mut c = GossipConfig::pb_cam(0.5);
        assert!(c.validate().is_ok());
        c.prob = -0.1;
        assert!(c.validate().is_err());
        c = GossipConfig::pb_cam(0.5);
        c.s = 0;
        assert!(c.validate().is_err());
        c = GossipConfig::pb_cam(0.5);
        c.node_failure_per_phase = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn per_node_probabilities_respected() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(2));
        let n = topo.len();
        // Uniform per-node vector must replay the scalar run exactly.
        let cfg = GossipConfig::pb_cam(0.4);
        let scalar = run_gossip(&topo, &cfg, 8);
        let vector = run_gossip_per_node(&topo, &cfg, &vec![0.4; n], 8);
        assert_eq!(scalar.first_rx_phase, vector.first_rx_phase);
        assert_eq!(scalar.broadcasts_by_phase, vector.broadcasts_by_phase);
        // All-zero probabilities stop after phase 1.
        let silent = run_gossip_per_node(&topo, &cfg, &vec![0.0; n], 8);
        assert_eq!(silent.total_broadcasts(), 1);
    }

    #[test]
    #[should_panic(expected = "one probability per node")]
    fn per_node_length_mismatch_rejected() {
        let topo = line(3);
        let _ = run_gossip_per_node(&topo, &GossipConfig::pb_cam(0.5), &[0.5, 0.5], 0);
    }

    #[test]
    fn zero_failure_rate_changes_nothing() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(6));
        let base = run_gossip(&topo, &GossipConfig::pb_cam(0.4), 12);
        let mut cfg = GossipConfig::pb_cam(0.4);
        cfg.node_failure_per_phase = 0.0;
        let same = run_gossip(&topo, &cfg, 12);
        assert_eq!(base.first_rx_phase, same.first_rx_phase);
        assert_eq!(base.broadcasts_by_phase, same.broadcasts_by_phase);
    }

    #[test]
    fn failures_degrade_reachability() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(3));
        let reach = |q: f64| {
            let mut total = 0.0;
            for seed in 0..8 {
                let mut cfg = GossipConfig::pb_cam(0.4);
                cfg.node_failure_per_phase = q;
                total += run_gossip(&topo, &cfg, seed).final_reachability();
            }
            total / 8.0
        };
        let healthy = reach(0.0);
        let failing = reach(0.3);
        assert!(
            failing < healthy - 0.05,
            "30% per-phase deaths should hurt: {failing} vs {healthy}"
        );
    }

    #[test]
    fn total_failure_kills_cascade_after_source() {
        let topo = line(6);
        let mut cfg = GossipConfig::flooding_cam();
        cfg.node_failure_per_phase = 1.0;
        let t = run_gossip(&topo, &cfg, 0);
        // Everyone dies before phase 1's broadcast lands → only the source
        // is informed and nobody relays.
        assert_eq!(t.informed_count(), 1);
        assert_eq!(t.total_broadcasts(), 1);
    }

    #[test]
    fn empty_fault_plan_is_bitwise_identical() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(7));
        let cfg = GossipConfig::pb_cam(0.4);
        let plain = run_gossip(&topo, &cfg, 21);
        let faulted = run_gossip_faulty(&topo, &cfg, &FaultPlan::none(), 21, 999);
        assert_eq!(plain.first_rx_phase, faulted.first_rx_phase);
        assert_eq!(plain.broadcasts_by_phase, faulted.broadcasts_by_phase);
        assert_eq!(plain.deliveries_by_phase, faulted.deliveries_by_phase);
        assert_eq!(plain.collisions_by_phase, faulted.collisions_by_phase);
        assert!(faulted.losses_by_phase.is_empty());
        assert!(faulted.alive_by_phase.is_empty());
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(7));
        let cfg = GossipConfig::pb_cam(0.4);
        let plan = FaultPlan::lossy(0.3);
        let a = run_gossip_faulty(&topo, &cfg, &plan, 21, 5);
        let b = run_gossip_faulty(&topo, &cfg, &plan, 21, 5);
        assert_eq!(a.first_rx_phase, b.first_rx_phase);
        assert_eq!(a.losses_by_phase, b.losses_by_phase);
        // A different faults seed changes which packets drop without
        // touching the protocol stream (same broadcasting schedule in
        // phase 1, at least).
        let c = run_gossip_faulty(&topo, &cfg, &plan, 21, 6);
        assert_eq!(a.broadcasts_by_phase[0], c.broadcasts_by_phase[0]);
    }

    #[test]
    fn link_loss_degrades_reachability_monotonically() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(3));
        let cfg = GossipConfig::pb_cam(0.6);
        let reach = |loss: f64| {
            let plan = FaultPlan::lossy(loss);
            (0..6)
                .map(|seed| {
                    run_gossip_faulty(&topo, &cfg, &plan, seed, seed + 100).final_reachability()
                })
                .sum::<f64>()
                / 6.0
        };
        let r0 = reach(0.0);
        let r5 = reach(0.5);
        let r9 = reach(0.9);
        assert!(r0 > r5 + 0.02, "loss 0.5 should hurt: {r0} vs {r5}");
        assert!(r5 > r9, "loss 0.9 should hurt more: {r5} vs {r9}");
        // Losses are recorded once loss is non-zero.
        let t = run_gossip_faulty(&topo, &cfg, &FaultPlan::lossy(0.5), 0, 100);
        assert!(t.total_losses() > 0);
    }

    #[test]
    fn thinning_kills_nodes_and_records_alive_counts() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(3));
        let cfg = GossipConfig::pb_cam(0.6);
        let plan = FaultPlan::thinned(0.4);
        let t = run_gossip_faulty(&topo, &cfg, &plan, 1, 77);
        let n = topo.len() as u32;
        let alive = t.min_alive().expect("alive counts recorded");
        assert!(alive < n, "thinning should kill someone");
        assert!(alive > n / 4, "but not everyone");
        // Dead receivers show up as drops whenever they are in range.
        assert!(t.total_dead_drops() > 0);
        // Reachability can never exceed the alive fraction (plus nothing:
        // dead nodes are never informed).
        assert!(t.informed_count() as u32 <= alive.max(t.alive_by_phase[0]));
    }

    #[test]
    fn energy_budget_suppresses_reception_after_spend() {
        // With budget 1 every relay dies right after its broadcast; the
        // cascade still progresses (transmissions happen before death) but
        // alive counts shrink as the wave spends its energy.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(2));
        let mut plan = FaultPlan::none();
        plan.energy_budget = Some(1);
        let cfg = GossipConfig::flooding_cam();
        let t = run_gossip_faulty(&topo, &cfg, &plan, 4, 8);
        let first = t.alive_by_phase.first().copied().unwrap();
        let last = t.alive_by_phase.last().copied().unwrap();
        assert!(
            last < first,
            "relays should exhaust their budget: {first} -> {last}"
        );
    }

    #[test]
    fn sinr_backend_runs_and_records_reject_series() {
        use nss_model::comm::SinrParams;
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(5));
        // β = 1, zero noise: uncontended slots decode like unit-disk, but
        // concurrent out-of-range interference can reject sole candidates.
        let cfg =
            GossipConfig::flooding_cam().with_backend(MediumBackend::Sinr(SinrParams::DEFAULT));
        let t = run_gossip(&topo, &cfg, 3);
        assert!(t.final_reachability() > 0.0);
        assert_eq!(t.sinr_rejects_by_phase.len(), t.phases());
        // Deterministic per seed.
        let again = run_gossip(&topo, &cfg, 3);
        assert_eq!(t, again);
        // The default backend leaves the series empty.
        let unit = run_gossip(&topo, &GossipConfig::flooding_cam(), 3);
        assert!(unit.sinr_rejects_by_phase.is_empty());
    }

    #[test]
    fn sinr_uncontended_flooding_matches_unit_disk_on_line() {
        use nss_model::comm::SinrParams;
        // On a line with s large enough that a seed separates transmitters,
        // compare against unit-disk where no slot ever has 2 transmitters:
        // use p=1, n=2 (source + one node) — only the source transmits in
        // phase 1 and node 1 in phase 2, each alone in its slot.
        let topo = line(2);
        let sinr_cfg =
            GossipConfig::flooding_cam().with_backend(MediumBackend::Sinr(SinrParams::DEFAULT));
        let unit_cfg = GossipConfig::flooding_cam();
        for seed in 0..5 {
            let a = run_gossip(&topo, &sinr_cfg, seed);
            let b = run_gossip(&topo, &unit_cfg, seed);
            assert_eq!(a.first_rx_phase, b.first_rx_phase);
            assert_eq!(a.deliveries_by_phase, b.deliveries_by_phase);
        }
    }

    #[test]
    fn transmit_only_nodes_relay_but_never_learn() {
        // A transmit-only node can never be informed (it hears nothing), so
        // under a plan converting most relays to tx-only, reachability
        // collapses toward the dead-node case even though the nodes are
        // "alive".
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(3));
        let cfg = GossipConfig::flooding_cam();
        let t = run_gossip_faulty(&topo, &cfg, &FaultPlan::transmit_only(0.6), 1, 77);
        let n = topo.len();
        // Tx-only nodes count as alive...
        assert_eq!(t.alive_by_phase[0] as usize, n);
        // ...but are never informed, and their missed receptions are drops.
        let plan = FaultPlan::transmit_only(0.6);
        for u in 0..n {
            if !plan.capability_of(u as u32, 77).can_receive() {
                assert_eq!(t.first_rx_phase[u], crate::trace::NEVER, "node {u}");
            }
        }
        assert!(t.total_dead_drops() > 0);
        let full = run_gossip(&topo, &cfg, 1);
        assert!(t.final_reachability() < full.final_reachability());
    }

    #[test]
    fn dead_nodes_never_marked_informed() {
        // With heavy failure, informed nodes must be a subset of nodes
        // that were alive when they first heard the packet: verified
        // indirectly — reachability monotone decreasing in failure rate on
        // average (statistical), and no panic/index issues at extremes.
        let topo = Topology::build(&Deployment::disk(3, 1.0, 30.0).sample(1));
        for q in [0.1, 0.5, 0.9] {
            let mut cfg = GossipConfig::pb_cam(0.5);
            cfg.node_failure_per_phase = q;
            let t = run_gossip(&topo, &cfg, 5);
            t.phase_series().validate().unwrap();
        }
    }
}
