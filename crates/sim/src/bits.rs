//! Packed `u64` bitsets for per-node protocol state.
//!
//! Executors track per-node flags (informed / alive / has-transmitted) for
//! up to 10⁶ nodes; a packed bitset keeps a whole field's mask in
//! `n / 8` bytes — 64 nodes per cache line instead of 8 — so the phase
//! loop's working set scales with the *active* frontier rather than with
//! `n` booleans. [`AtomicBitSet`] adds the lock-free claim used by the
//! sharded phase engine: `fetch_or` on one bit decides exactly one winner
//! per receiver regardless of thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// A fixed-length packed bitset (one bit per node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-false bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; word_count(len)],
            len,
        }
    }

    /// All-true bitset of `len` bits.
    pub fn filled(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![u64::MAX; word_count(len)],
            len,
        };
        s.trim_tail();
        s
    }

    /// Builds from a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut s = BitSet::new(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                s.set(i);
            }
        }
        s
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear_bit(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Writes bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear_bit(i);
        }
    }

    /// Clears every bit (reusable scratch).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit.
    pub fn fill_all(&mut self) {
        self.words.fill(u64::MAX);
        self.trim_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw packed words (low bit of word 0 = node 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the packed words (memory-footprint telemetry).
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Calls `f(i)` for every set bit, ascending.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * WORD_BITS + bit);
                w &= w - 1;
            }
        }
    }

    /// Calls `f(i)` for every bit set here but not in `other`, ascending
    /// (word-parallel `self & !other` — the TDMA "informed but not yet
    /// transmitted" scan).
    pub fn for_each_set_and_not(&self, other: &BitSet, mut f: impl FnMut(usize)) {
        debug_assert_eq!(self.len, other.len);
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut w = a & !b;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * WORD_BITS + bit);
                w &= w - 1;
            }
        }
    }

    /// Zeroes the bits past `len` in the last word so `count_ones` and
    /// word-level scans never see phantom nodes.
    fn trim_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// A fixed-length bitset with lock-free bit claims, for sharded phase
/// execution.
///
/// The claim discipline mirrors the sweep collector's cursor protocol
/// (loom-checked in `crates/sim/tests/loom_claim.rs`): `fetch_or` on a
/// bit is the linearization point, and exactly one thread observes the
/// 0→1 transition.
#[derive(Debug)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitSet {
    /// All-false atomic bitset of `len` bits.
    pub fn new(len: usize) -> Self {
        AtomicBitSet {
            words: (0..word_count(len)).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes held by the packed words (memory-footprint telemetry).
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<AtomicU64>()
    }

    /// Atomically sets bit `i`; returns `true` iff this call flipped it
    /// (the caller won the claim).
    #[inline]
    pub fn claim(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        // nss-lint: allow(atomic-protocol) — pure claim race: the winner publishes nothing through the bit (payload travels via the channel), and crates/sim/tests/loom_claim.rs model-checks that Relaxed suffices
        self.words[i / WORD_BITS].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Reads bit `i` (relaxed; only meaningful after the writing threads
    /// have joined).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Clears every bit. Requires `&mut self`, i.e. all claiming threads
    /// have joined.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.clear_bit(64);
        assert!(!b.get(64));
        b.assign(64, true);
        assert!(b.get(64));
        b.assign(64, false);
        assert_eq!(b.count_ones(), 7);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn filled_and_fill_all_respect_length() {
        let b = BitSet::filled(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(69));
        let mut c = BitSet::new(70);
        c.fill_all();
        assert_eq!(b, c);
        // Exact word multiple: no tail to trim.
        assert_eq!(BitSet::filled(128).count_ones(), 128);
        assert_eq!(BitSet::filled(0).count_ones(), 0);
    }

    #[test]
    fn from_bools_matches() {
        let bools: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let b = BitSet::from_bools(&bools);
        for (i, &expect) in bools.iter().enumerate() {
            assert_eq!(b.get(i), expect, "bit {i}");
        }
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut b = BitSet::new(200);
        let set = [0usize, 5, 63, 64, 100, 199];
        for &i in &set {
            b.set(i);
        }
        let mut seen = Vec::new();
        b.for_each_set(|i| seen.push(i));
        assert_eq!(seen, set);
    }

    #[test]
    fn and_not_scan() {
        let mut a = BitSet::new(130);
        let mut bset = BitSet::new(130);
        for i in 0..130 {
            if i % 2 == 0 {
                a.set(i);
            }
            if i % 4 == 0 {
                bset.set(i);
            }
        }
        let mut seen = Vec::new();
        a.for_each_set_and_not(&bset, |i| seen.push(i));
        let expect: Vec<usize> = (0..130).filter(|i| i % 2 == 0 && i % 4 != 0).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn bytes_report_packed_footprint() {
        assert_eq!(BitSet::new(0).bytes(), 0);
        assert_eq!(BitSet::new(1).bytes(), 8);
        assert_eq!(BitSet::new(64).bytes(), 8);
        assert_eq!(BitSet::new(65).bytes(), 16);
        assert_eq!(AtomicBitSet::new(128).bytes(), 16);
    }

    #[test]
    fn atomic_claim_is_exactly_once() {
        let b = AtomicBitSet::new(80);
        assert!(b.claim(70));
        assert!(!b.claim(70), "second claim must lose");
        assert!(b.get(70));
        assert!(!b.get(71));
        assert!(b.claim(71));
    }

    #[test]
    fn atomic_clear_resets() {
        let mut b = AtomicBitSet::new(65);
        assert_eq!(b.len(), 65);
        b.claim(64);
        b.clear_all();
        assert!(!b.get(64));
        assert!(b.claim(64));
    }

    #[test]
    fn concurrent_claims_have_one_winner_per_bit() {
        let b = std::sync::Arc::new(AtomicBitSet::new(1024));
        let winners: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = std::sync::Arc::clone(&b);
                    scope.spawn(move || (0..1024).filter(|&i| b.claim(i)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().sum::<usize>(), 1024);
    }
}
