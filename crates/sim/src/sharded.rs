//! Intra-replication parallel execution of phase-structured gossip.
//!
//! [`crate::slotted`] runs one replication on one thread; at 10⁶ nodes a
//! single broadcast wave touches hundreds of megabytes of adjacency and the
//! per-phase work dwarfs what replication-level parallelism can amortize.
//! This module shards the work *inside* a phase across threads while
//! keeping the result bitwise-identical for every thread count:
//!
//! 1. **Stateless randomness.** The sequential executor draws coins from
//!    one `SmallRng` whose consumption order bakes the thread schedule into
//!    the trace. Here every random decision — rebroadcast coin and slot
//!    jitter — is a pure hash of `(seed, phase, node)` (the same
//!    counter-based discipline [`crate::faults`] uses for link-loss coins),
//!    so any shard layout computes identical decisions.
//! 2. **Atomic-claim contention.** Per-slot CAM arbitration accumulates
//!    `rx_count`/`cs_count` with relaxed atomic adds (commutative, so
//!    thread order cannot matter) and elects exactly one discoverer per
//!    touched receiver through an [`AtomicBitSet`] claim; classification
//!    then re-walks the touched set, each receiver owned by exactly one
//!    worker. The claim protocol is modelled in `tests/loom_claim.rs`.
//! 3. **Canonical merges.** Per-worker partial outputs (newly informed
//!    nodes, slot statistics) are merged in shard order and sorted where
//!    order is observable, collapsing every schedule to one trace.
//!
//! The engine intentionally reuses the sequential executor's *semantics*
//! (Assumption 6 arbitration, fault gating order, phase/slot structure) but
//! not its RNG stream: the sequential and sharded engines produce
//! different — individually reproducible — traces. Under CFM with `p = 1`
//! the randomness is immaterial and the two engines agree exactly, which
//! the tests pin down.

use crate::bits::{AtomicBitSet, BitSet};
use crate::faults::{FaultState, SlotFaults};
use crate::medium::SlotStats;
use crate::slotted::GossipConfig;
use crate::trace::SimTrace;
use nss_model::comm::{CollisionRule, CommunicationModel, MediumBackend, SinrParams};
use nss_model::error::ConfigError;
use nss_model::faults::{hash_unit, FaultPlan};
use nss_model::ids::NodeId;
use nss_model::rng::splitmix64;
use nss_model::topology::Topology;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

/// Salt separating the rebroadcast-coin stream from everything else.
const COIN_SALT: u64 = 0x8E44_55B6_ACD3_F1A9;
/// Salt separating the slot-jitter stream from the coin stream.
const SLOT_SALT: u64 = 0x5851_F42D_4C95_7F2D;

/// Whitened per-phase key for one of the stateless decision streams.
fn phase_mix(seed: u64, phase: u32, salt: u64) -> u64 {
    let mut s = seed ^ u64::from(phase).wrapping_mul(salt);
    splitmix64(&mut s)
}

/// Checks the config features the sharded engine deliberately omits.
///
/// `track_success_rate` and the legacy `node_failure_per_phase` injection
/// both consume the sequential RNG stream in data-dependent order; porting
/// them would either break thread-count invariance or silently change
/// their meaning. Use the sequential engine (`Executor::sequential`) for
/// those studies.
pub fn validate_sharded(cfg: &GossipConfig) -> Result<(), ConfigError> {
    cfg.validate()?;
    if cfg.track_success_rate {
        return Err(ConfigError::Inconsistent {
            what: "track_success_rate requires the sequential engine (Executor::sequential)",
            at: None,
        });
    }
    if cfg.node_failure_per_phase > 0.0 {
        return Err(ConfigError::Inconsistent {
            what: "node_failure_per_phase requires the sequential engine (Executor::sequential)",
            at: None,
        });
    }
    Ok(())
}

/// Resolves a thread-count request against the available work.
fn resolve_workers(threads: usize, work: usize) -> usize {
    let t = match threads {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    };
    t.min(work.max(1))
}

/// Runs `f` over contiguous chunks of `items` on up to `workers` threads
/// and returns the per-chunk results **in chunk order**, so downstream
/// merges see the same partial sequence under any actual parallelism.
///
/// `stage` labels this fan-out in the telemetry plane (no-op unless the
/// `obs` feature is live): one flight-recorder event spanning the call,
/// each chunk's wall time into the `<stage>.shard.seconds` histogram, and
/// the max/mean chunk-time ratio into the `<stage>.imbalance` gauge.
fn map_chunks<T, F>(stage: &'static str, items: &[u32], workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&[u32]) -> T + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let nw = workers.min(items.len());
    let start_ns = if nss_obs::enabled() {
        nss_obs::trace::now_ns()
    } else {
        0
    };
    let timed: Vec<(T, u64)> = if nw <= 1 {
        vec![timed_chunk(items, &f)]
    } else {
        let chunk = items.len().div_ceil(nw);
        std::thread::scope(|sc| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| sc.spawn(|| timed_chunk(c, &f)))
                .collect();
            handles
                .into_iter()
                // nss-lint: allow(panic-hygiene) — a panicking worker already poisoned the replication; propagating the panic is the only sound option
                .map(|h| h.join().expect("sharded worker panicked"))
                .collect()
        })
    };
    if nss_obs::enabled() {
        record_stage(stage, start_ns, &timed);
    }
    timed.into_iter().map(|(out, _)| out).collect()
}

/// Runs `f` on one chunk; with live instrumentation also measures the
/// chunk's wall time in nanoseconds (0 otherwise — the timing calls
/// const-fold away in disabled builds).
#[inline]
fn timed_chunk<T>(chunk: &[u32], f: &(impl Fn(&[u32]) -> T + Sync)) -> (T, u64) {
    if !nss_obs::enabled() {
        return (f(chunk), 0);
    }
    let start = nss_obs::trace::now_ns();
    let out = f(chunk);
    (out, nss_obs::trace::now_ns().saturating_sub(start))
}

/// Publishes one sharded stage to the telemetry plane. Runs on the
/// coordinating replication thread *after* the workers have joined, so the
/// flight recorder sees one ring per replication — never one per
/// short-lived scoped worker — and the workers themselves stay
/// instrumentation-free.
fn record_stage<T>(stage: &'static str, start_ns: u64, timed: &[(T, u64)]) {
    if timed.is_empty() {
        return;
    }
    let end_ns = nss_obs::trace::now_ns();
    nss_obs::trace::record(
        nss_obs::trace::intern(stage),
        start_ns,
        end_ns.saturating_sub(start_ns),
    );
    let reg = nss_obs::registry::Registry::global();
    let shard_hist = reg.histogram(&format!("{stage}.shard.seconds"));
    let mut max_ns = 0u64;
    let mut sum_ns = 0u64;
    for &(_, dur_ns) in timed {
        shard_hist.record(dur_ns as f64 * 1e-9);
        max_ns = max_ns.max(dur_ns);
        sum_ns += dur_ns;
    }
    let mean_ns = sum_ns as f64 / timed.len() as f64;
    if mean_ns > 0.0 {
        // 1.0 = perfectly balanced shards; the slowest-shard multiple of
        // the mean is the wall-clock cost of the imbalance.
        reg.gauge(&format!("{stage}.imbalance"))
            .set(max_ns as f64 / mean_ns);
    }
}

/// Core sharded gossip loop; `threads = 0` uses all available cores,
/// `threads = 1` runs the identical algorithm sequentially. The returned
/// trace is bitwise-identical for every `threads` value. Public entry is
/// `Executor::sharded(threads)`.
pub(crate) fn run_sharded_with(
    topo: &Topology,
    cfg: &GossipConfig,
    seed: u64,
    faults: Option<(&FaultPlan, u64)>,
    threads: usize,
) -> SimTrace {
    validate_sharded(cfg)
        .unwrap_or_else(|e| panic!("invalid GossipConfig for sharded engine: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; `validate_sharded()` is the fallible path
    let n = topo.len();
    let mut trace = SimTrace::new(n);
    if n == 0 {
        return trace;
    }
    let workers = resolve_workers(threads, n);
    let s = cfg.s as usize;
    let is_cfm = matches!(cfg.model, CommunicationModel::Cfm);
    // The SINR backend replaces CAM arbitration (CFM ignores the physical
    // layer entirely, mirroring the sequential medium).
    let sinr = match cfg.backend {
        MediumBackend::Sinr(params) if !is_cfm => Some(params),
        _ => None,
    };
    let cs_rule = match cfg.model {
        CommunicationModel::Cam(CollisionRule::CarrierSense { factor }) if sinr.is_none() => {
            Some(factor)
        }
        _ => None,
    };

    let mut fault_state = faults.map(|(plan, fseed)| FaultState::new(plan, fseed, n));
    let mut informed = BitSet::new(n);
    informed.set(NodeId::SOURCE.index());
    let mut pending: Vec<u32> = vec![NodeId::SOURCE.0];

    // CAM arbitration scratch: relaxed atomics accumulated in pass A, read
    // and reset by the (single) owner of each touched receiver in pass B.
    // The SINR backend needs neither — its pass B recomputes exposure from
    // the transmitter bitset in the grid's canonical order.
    let rx_count: Vec<AtomicU32> = if is_cfm || sinr.is_some() {
        Vec::new()
    } else {
        (0..n).map(|_| AtomicU32::new(0)).collect()
    };
    let cs_count: Vec<AtomicU32> = if cs_rule.is_some() {
        (0..n).map(|_| AtomicU32::new(0)).collect()
    } else {
        Vec::new()
    };
    let last_tx: Vec<AtomicU32> = if is_cfm || sinr.is_some() {
        Vec::new()
    } else {
        (0..n).map(|_| AtomicU32::new(0)).collect()
    };
    let mut touched_claim = AtomicBitSet::new(if is_cfm { 0 } else { n });
    // Per-slot transmitter membership for SINR interference sweeps, built
    // and cleared by the coordinator between slots.
    let mut tx_bits = BitSet::new(if sinr.is_some() { n } else { 0 });

    // Memory-footprint gauges: protocol bitsets vs. CAM arbitration
    // scratch, so a scrape of a live million-node run shows where the
    // resident bytes are.
    nss_obs::gauge!("sim.bitset.bytes").set((informed.bytes() + touched_claim.bytes()) as f64);
    nss_obs::gauge!("sim.scratch.bytes").set(
        ((rx_count.len() + cs_count.len() + last_tx.len()) * std::mem::size_of::<AtomicU32>())
            as f64,
    );

    for phase in 1..=cfg.max_phases as u32 {
        // Per-phase wall-clock histogram (`sim.phase.seconds`), surfaced in
        // OBS_METRICS.json and the bench_sim report, plus a flight-recorder
        // event per phase (this loop runs ~10² times per replication — a
        // mutex-sinked `span!` here would thrash; see the obs-hygiene lint).
        let _phase_span = nss_obs::trace_span!("sim.phase");
        if let Some(fs) = fault_state.as_mut() {
            fs.begin_phase(phase);
        }

        // Transmitter selection: stateless coins, sharded over `pending`.
        let mut slots: Vec<Vec<u32>> = vec![Vec::new(); s];
        if phase == 1 {
            // The source's initial broadcast: unconditional, uncontended.
            slots[0].push(NodeId::SOURCE.0);
        } else {
            let coin_mix = phase_mix(seed, phase, COIN_SALT);
            let slot_mix = phase_mix(seed, phase, SLOT_SALT);
            let fs = fault_state.as_ref();
            let partials = map_chunks("sim.txsel", &pending, workers, |chunk| {
                let mut local: Vec<Vec<u32>> = vec![Vec::new(); s];
                for &u in chunk {
                    if let Some(fs) = fs {
                        if !fs.is_alive(u as usize) {
                            continue; // down this phase: forfeits the rebroadcast
                        }
                    }
                    if cfg.prob >= 1.0 || hash_unit(coin_mix, u64::from(u)) < cfg.prob {
                        let sl =
                            ((hash_unit(slot_mix, u64::from(u)) * s as f64) as usize).min(s - 1);
                        local[sl].push(u);
                    }
                }
                local
            });
            for local in partials {
                for (sl, mut part) in local.into_iter().enumerate() {
                    slots[sl].append(&mut part);
                }
            }
        }
        let tx_count: u32 = slots.iter().map(|sl| sl.len() as u32).sum();
        if let Some(fs) = fault_state.as_mut() {
            for sl in &slots {
                for &u in sl {
                    fs.note_broadcast(u);
                }
            }
        }
        trace.broadcasts_by_phase.push(tx_count);
        nss_obs::counter!("sim.broadcasts").add(u64::from(tx_count));

        // Slot resolution: slots are sequential; the work inside each is
        // sharded over transmitters (pass A) and touched receivers (pass B).
        let mut phase_stats = SlotStats::default();
        let mut phase_newly: Vec<u32> = Vec::new();
        for (si, txs) in slots.iter().enumerate() {
            if txs.is_empty() {
                continue;
            }
            let sf = fault_state.as_ref().map(|fs| fs.slot(phase, si as u32));
            let (stats, mut newly) = if is_cfm {
                resolve_slot_cfm(topo, txs, &informed, sf.as_ref(), workers)
            } else if let Some(params) = sinr {
                for &t in txs {
                    tx_bits.set(t as usize);
                }
                let out = resolve_slot_sinr(
                    topo,
                    txs,
                    &informed,
                    sf.as_ref(),
                    &params,
                    &tx_bits,
                    &touched_claim,
                    workers,
                );
                for &t in txs {
                    tx_bits.clear_bit(t as usize);
                }
                out
            } else {
                resolve_slot_cam(
                    topo,
                    txs,
                    &informed,
                    sf.as_ref(),
                    cs_rule,
                    &rx_count,
                    &cs_count,
                    &last_tx,
                    &touched_claim,
                    workers,
                )
            };
            if !is_cfm {
                touched_claim.clear_all();
            }
            phase_stats.absorb(stats);
            // Canonical order: ascending within the slot. Receivers informed
            // here are visible as duplicates to later slots of this phase.
            newly.sort_unstable();
            newly.dedup();
            for &v in &newly {
                informed.set(v as usize);
                trace.first_rx_phase[v as usize] = phase;
            }
            phase_newly.append(&mut newly);
        }

        trace.deliveries_by_phase.push(phase_stats.deliveries);
        trace.collisions_by_phase.push(phase_stats.collisions);
        trace.cs_deferrals_by_phase.push(phase_stats.cs_deferrals);
        nss_obs::counter!("sim.deliveries").add(phase_stats.deliveries);
        nss_obs::counter!("sim.collisions").add(phase_stats.collisions);
        nss_obs::counter!("sim.cs_deferrals").add(phase_stats.cs_deferrals);
        if sinr.is_some() {
            trace.sinr_rejects_by_phase.push(phase_stats.sinr_rejects);
            nss_obs::counter!("sim.sinr.rejects").add(phase_stats.sinr_rejects);
            nss_obs::counter!("sim.sinr.captures").add(phase_stats.sinr_captures);
        }
        if let Some(fs) = fault_state.as_ref() {
            trace.losses_by_phase.push(phase_stats.losses);
            trace.dead_drops_by_phase.push(phase_stats.dead_drops);
            trace.alive_by_phase.push(fs.alive_count());
            crate::faults::record_fault_obs(&phase_stats);
        }

        pending = phase_newly;
        if pending.is_empty() {
            break;
        }
    }
    trace
}

/// CFM slot: every transmission reaches every neighbor (fault-gated);
/// deliveries are per `(tx, rx)` pair, so no arbitration state is needed.
fn resolve_slot_cfm(
    topo: &Topology,
    txs: &[u32],
    informed: &BitSet,
    sf: Option<&SlotFaults<'_>>,
    workers: usize,
) -> (SlotStats, Vec<u32>) {
    let partials = map_chunks("sim.slot.cfm", txs, workers, |chunk| {
        let mut st = SlotStats::default();
        let mut newly: Vec<u32> = Vec::new();
        for &t in chunk {
            for &v in topo.neighbors(NodeId(t)) {
                if let Some(f) = sf {
                    if !f.alive.get(v as usize) {
                        st.dead_drops += 1;
                        continue;
                    }
                    if !f.link_delivers(t, v) {
                        st.losses += 1;
                        continue;
                    }
                }
                st.deliveries += 1;
                if !informed.get(v as usize) {
                    newly.push(v);
                }
            }
        }
        (st, newly)
    });
    merge_partials(partials)
}

/// CAM slot under atomic-claim contention.
///
/// Pass A shards the transmitters: relaxed `fetch_add` accumulates
/// in-range (`rx_count`) and annulus (`cs_count`) exposure per receiver,
/// and the first worker to touch a receiver claims it into its local
/// `touched` list. Pass B shards the touched set: the claiming discipline
/// guarantees each receiver appears exactly once, so its owner can read,
/// classify (Assumption 6 / Appendix A / fault gates — same order as
/// [`crate::medium::Medium::resolve_slot`]), and reset its counters
/// without further synchronization.
#[allow(clippy::too_many_arguments)]
fn resolve_slot_cam(
    topo: &Topology,
    txs: &[u32],
    informed: &BitSet,
    sf: Option<&SlotFaults<'_>>,
    cs_rule: Option<f64>,
    rx_count: &[AtomicU32],
    cs_count: &[AtomicU32],
    last_tx: &[AtomicU32],
    touched_claim: &AtomicBitSet,
    workers: usize,
) -> (SlotStats, Vec<u32>) {
    // Pass A: accumulate exposure. The per-chunk `lost` tally counts claim
    // elections this worker lost (bit already set) — the contention the
    // atomic-claim protocol absorbs; the `enabled()` guards const-fold the
    // bookkeeping away in uninstrumented builds.
    let touched_parts = map_chunks("sim.slot.expose", txs, workers, |chunk| {
        let mut touched: Vec<u32> = Vec::new();
        let mut lost: u64 = 0;
        for &t in chunk {
            for &v in topo.neighbors(NodeId(t)) {
                if touched_claim.claim(v as usize) {
                    touched.push(v);
                } else if nss_obs::enabled() {
                    lost += 1;
                }
                rx_count[v as usize].fetch_add(1, Relaxed);
                last_tx[v as usize].store(t, Relaxed);
            }
            if let Some(factor) = cs_rule {
                let pos = topo.position(NodeId(t));
                let r = topo.comm_radius();
                let r2 = r * r;
                topo.for_each_within(&pos, factor * r, |v| {
                    if v.0 == t {
                        return;
                    }
                    if topo.position(v).dist_sq(&pos) > r2 {
                        if touched_claim.claim(v.index()) {
                            touched.push(v.0);
                        } else if nss_obs::enabled() {
                            lost += 1;
                        }
                        cs_count[v.index()].fetch_add(1, Relaxed);
                    }
                });
            }
        }
        (touched, lost)
    });
    let mut touched: Vec<u32> = Vec::new();
    let mut lost_total: u64 = 0;
    for (mut part, lost) in touched_parts {
        touched.append(&mut part);
        lost_total += lost;
    }
    nss_obs::counter!("sim.claim.won").add(touched.len() as u64);
    nss_obs::counter!("sim.claim.contended").add(lost_total);

    // Pass B: classify and reset, each receiver owned by one worker.
    let partials = map_chunks("sim.slot.classify", &touched, workers, |chunk| {
        let mut st = SlotStats::default();
        let mut newly: Vec<u32> = Vec::new();
        for &v in chunk {
            let vi = v as usize;
            // nss-lint: allow(atomic-protocol) — drain-and-reset after the phase barrier: joining pass A's scope already ordered every fetch_add before these swaps
            let rx = rx_count[vi].swap(0, Relaxed);
            let cs = if cs_rule.is_some() {
                // nss-lint: allow(atomic-protocol) — same barrier argument as the rx_count drain above
                cs_count[vi].swap(0, Relaxed)
            } else {
                0
            };
            if rx == 1 && cs == 0 {
                let t = last_tx[vi].load(Relaxed);
                if let Some(f) = sf {
                    if !f.alive.get(vi) {
                        st.dead_drops += 1;
                        continue;
                    }
                    if !f.link_delivers(t, v) {
                        st.losses += 1;
                        continue;
                    }
                }
                st.deliveries += 1;
                if !informed.get(vi) {
                    newly.push(v);
                }
            } else if rx > 1 {
                st.collisions += 1;
            } else if rx == 1 {
                st.cs_deferrals += 1;
            }
        }
        (st, newly)
    });
    merge_partials(partials)
}

/// SINR slot under atomic-claim contention.
///
/// Pass A shards the transmitters and only *claims* touched receivers —
/// no exposure counters, because pass B recomputes everything it needs by
/// sweeping the spatial grid around each receiver in the grid's canonical
/// order (the exact loop [`crate::medium`]'s sequential SINR resolver
/// runs), so the per-receiver interference sum is bit-identical under any
/// thread count. Classification order (capture accounting before fault
/// gating) matches the sequential medium exactly.
#[allow(clippy::too_many_arguments)]
fn resolve_slot_sinr(
    topo: &Topology,
    txs: &[u32],
    informed: &BitSet,
    sf: Option<&SlotFaults<'_>>,
    params: &SinrParams,
    tx_bits: &BitSet,
    touched_claim: &AtomicBitSet,
    workers: usize,
) -> (SlotStats, Vec<u32>) {
    let touched_parts = map_chunks("sim.slot.expose", txs, workers, |chunk| {
        let mut touched: Vec<u32> = Vec::new();
        let mut lost: u64 = 0;
        for &t in chunk {
            for &v in topo.neighbors(NodeId(t)) {
                if touched_claim.claim(v as usize) {
                    touched.push(v);
                } else if nss_obs::enabled() {
                    lost += 1;
                }
            }
        }
        (touched, lost)
    });
    let mut touched: Vec<u32> = Vec::new();
    let mut lost_total: u64 = 0;
    for (mut part, lost) in touched_parts {
        touched.append(&mut part);
        lost_total += lost;
    }
    nss_obs::counter!("sim.claim.won").add(touched.len() as u64);
    nss_obs::counter!("sim.claim.contended").add(lost_total);

    let r = topo.comm_radius();
    let r2 = r * r;
    let d2_floor = r2 * 1e-12;
    let partials = map_chunks("sim.slot.classify", &touched, workers, |chunk| {
        let mut st = SlotStats::default();
        let mut newly: Vec<u32> = Vec::new();
        for &v in chunk {
            let vi = v as usize;
            let pos = topo.position(NodeId(v));
            let mut total = 0.0f64;
            let mut best_p = -1.0f64;
            let mut best_tx = u32::MAX;
            let mut candidates = 0u32;
            topo.for_each_within(&pos, params.interference_factor * r, |u| {
                if u.0 == v || !tx_bits.get(u.index()) {
                    return;
                }
                let d2 = topo.position(u).dist_sq(&pos).max(d2_floor);
                let p = (r2 / d2).powf(params.alpha * 0.5);
                total += p;
                if d2 <= r2 {
                    candidates += 1;
                    if p > best_p || (p == best_p && u.0 < best_tx) {
                        best_p = p;
                        best_tx = u.0;
                    }
                }
            });
            if best_tx == u32::MAX {
                continue; // touched implies an in-range candidate; defensive
            }
            let denom = params.noise + (total - best_p).max(0.0);
            let decodes = denom <= 0.0 || best_p / denom >= params.beta;
            if decodes {
                if candidates > 1 {
                    st.sinr_captures += 1;
                }
                if let Some(f) = sf {
                    if !f.alive.get(vi) {
                        st.dead_drops += 1;
                        continue;
                    }
                    if !f.link_delivers(best_tx, v) {
                        st.losses += 1;
                        continue;
                    }
                }
                st.deliveries += 1;
                if !informed.get(vi) {
                    newly.push(v);
                }
            } else if candidates > 1 {
                st.collisions += 1;
            } else {
                st.sinr_rejects += 1;
            }
        }
        (st, newly)
    });
    merge_partials(partials)
}

/// Folds per-worker `(stats, newly)` partials; both merges commute, so the
/// result is shard-layout independent.
fn merge_partials(partials: Vec<(SlotStats, Vec<u32>)>) -> (SlotStats, Vec<u32>) {
    let mut stats = SlotStats::default();
    let mut newly = Vec::new();
    for (st, mut part) in partials {
        stats.absorb(st);
        newly.append(&mut part);
    }
    (stats, newly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    // The former free-function entry points, reconstructed on top of the
    // `Executor` builder: every trace below exercises the public API.
    // `sharded(threads)` keeps the shim's `0 = all cores` semantics.
    fn run_gossip(topo: &Topology, cfg: &GossipConfig, seed: u64) -> SimTrace {
        Executor::new(topo).gossip(*cfg).run(seed)
    }

    fn run_gossip_sharded(
        topo: &Topology,
        cfg: &GossipConfig,
        seed: u64,
        threads: usize,
    ) -> SimTrace {
        Executor::new(topo).gossip(*cfg).sharded(threads).run(seed)
    }

    fn run_gossip_sharded_faulty(
        topo: &Topology,
        cfg: &GossipConfig,
        plan: &FaultPlan,
        seed: u64,
        faults_seed: u64,
        threads: usize,
    ) -> SimTrace {
        Executor::new(topo)
            .gossip(*cfg)
            .faults(plan.clone())
            .faults_seed(faults_seed)
            .sharded(threads)
            .run(seed)
    }

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    fn assert_traces_equal(a: &SimTrace, b: &SimTrace) {
        assert_eq!(a.first_rx_phase, b.first_rx_phase);
        assert_eq!(a.broadcasts_by_phase, b.broadcasts_by_phase);
        assert_eq!(a.deliveries_by_phase, b.deliveries_by_phase);
        assert_eq!(a.collisions_by_phase, b.collisions_by_phase);
        assert_eq!(a.cs_deferrals_by_phase, b.cs_deferrals_by_phase);
        assert_eq!(a.losses_by_phase, b.losses_by_phase);
        assert_eq!(a.dead_drops_by_phase, b.dead_drops_by_phase);
        assert_eq!(a.alive_by_phase, b.alive_by_phase);
    }

    #[test]
    fn thread_count_invariant_fault_free() {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 60.0).sample(11));
        let cfg = GossipConfig::pb_cam(0.5);
        let base = run_gossip_sharded(&topo, &cfg, 42, 1);
        for threads in [2, 3, 4, 7] {
            let t = run_gossip_sharded(&topo, &cfg, 42, threads);
            assert_traces_equal(&base, &t);
        }
        // threads = 0 (auto) must also agree.
        assert_traces_equal(&base, &run_gossip_sharded(&topo, &cfg, 42, 0));
    }

    #[test]
    fn thread_count_invariant_carrier_sense() {
        use nss_model::comm::CollisionRule;
        let topo = Topology::build(&Deployment::disk(5, 1.0, 50.0).sample(4));
        let mut cfg = GossipConfig::pb_cam(0.7);
        cfg.model = CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R);
        let base = run_gossip_sharded(&topo, &cfg, 9, 1);
        for threads in [2, 4] {
            assert_traces_equal(&base, &run_gossip_sharded(&topo, &cfg, 9, threads));
        }
        assert!(base.informed_count() > 1);
    }

    #[test]
    fn thread_count_invariant_under_faults() {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 50.0).sample(6));
        let cfg = GossipConfig::pb_cam(0.6);
        let mut plan = FaultPlan::lossy(0.3);
        plan.dead_frac = 0.2;
        let base = run_gossip_sharded_faulty(&topo, &cfg, &plan, 7, 70, 1);
        for threads in [2, 4] {
            let t = run_gossip_sharded_faulty(&topo, &cfg, &plan, 7, 70, threads);
            assert_traces_equal(&base, &t);
        }
        assert!(base.total_losses() > 0, "loss plan should drop packets");
        assert!(!base.alive_by_phase.is_empty());
    }

    #[test]
    fn empty_plan_matches_fault_free_path() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(3));
        let cfg = GossipConfig::pb_cam(0.5);
        let plain = run_gossip_sharded(&topo, &cfg, 5, 4);
        let faulted = run_gossip_sharded_faulty(&topo, &cfg, &FaultPlan::none(), 5, 99, 4);
        assert_traces_equal(&plain, &faulted);
        assert!(faulted.losses_by_phase.is_empty());
    }

    #[test]
    fn cfm_flooding_matches_sequential_engine() {
        // Under CFM with p = 1 no random decision affects the outcome:
        // information spreads in exact BFS layers, so the sharded engine
        // (hash coins) and the sequential engine (SmallRng) must agree on
        // every per-phase series despite their different RNG disciplines.
        let topo = Topology::build(&Deployment::disk(5, 1.0, 45.0).sample(8));
        let cfg = GossipConfig {
            model: CommunicationModel::Cfm,
            ..GossipConfig::flooding_cam()
        };
        let seq = run_gossip(&topo, &cfg, 3);
        let shard = run_gossip_sharded(&topo, &cfg, 3, 4);
        assert_eq!(seq.first_rx_phase, shard.first_rx_phase);
        assert_eq!(seq.broadcasts_by_phase, shard.broadcasts_by_phase);
        assert_eq!(seq.deliveries_by_phase, shard.deliveries_by_phase);
        // And the informed set is the source's connected component.
        let expect = topo.reachable_fraction(NodeId::SOURCE);
        assert!((shard.final_reachability() - expect).abs() < 1e-12);
    }

    #[test]
    fn cam_collision_star_matches_semantics() {
        // Same construction as slotted's collision test: with s = 1 both
        // relays transmit in the only slot, so the far node must collide.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.6),
            Point2::new(0.9, -0.6),
            Point2::new(1.8, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.2));
        let mut cfg = GossipConfig::flooding_cam();
        cfg.s = 1;
        let t = run_gossip_sharded(&topo, &cfg, 0, 4);
        assert_eq!(t.informed_count(), 3);
        assert_eq!(t.first_rx_phase[3], crate::trace::NEVER);
        // Both the far node and the (already-informed) source hear the two
        // overlapping relays → two collided receivers.
        assert_eq!(t.collisions_by_phase[1], 2);
    }

    #[test]
    fn trace_series_valid_and_bounded() {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 40.0).sample(2));
        for seed in 0..5 {
            let t = run_gossip_sharded(&topo, &GossipConfig::pb_cam(0.4), seed, 3);
            t.phase_series().validate().expect("invalid phase series");
            assert!(t.total_broadcasts() <= t.informed_count() as u64);
        }
    }

    #[test]
    fn zero_probability_stops_after_source() {
        let topo = line(5);
        let t = run_gossip_sharded(&topo, &GossipConfig::pb_cam(0.0), 3, 2);
        assert_eq!(t.informed_count(), 2);
        assert_eq!(t.total_broadcasts(), 1);
    }

    #[test]
    fn singleton_network() {
        let topo = line(1);
        let t = run_gossip_sharded(&topo, &GossipConfig::flooding_cam(), 0, 4);
        assert_eq!(t.informed_count(), 1);
        assert_eq!(t.total_broadcasts(), 1);
    }

    #[test]
    fn probability_thins_broadcasts() {
        // Statistical sanity for the stateless coin: p = 0.3 should yield
        // clearly fewer broadcasts than flooding on a dense field.
        let topo = Topology::build(&Deployment::disk(5, 1.0, 70.0).sample(13));
        let mut flood = 0u64;
        let mut thin = 0u64;
        for seed in 0..5 {
            flood += run_gossip_sharded(&topo, &GossipConfig::flooding_cam(), seed, 2)
                .total_broadcasts();
            thin +=
                run_gossip_sharded(&topo, &GossipConfig::pb_cam(0.3), seed, 2).total_broadcasts();
        }
        assert!(
            thin * 2 < flood,
            "p=0.3 should cut broadcasts well below flooding: {thin} vs {flood}"
        );
    }

    #[test]
    fn validate_sharded_rejects_sequential_only_features() {
        let mut cfg = GossipConfig::pb_cam(0.5);
        cfg.track_success_rate = true;
        assert!(matches!(
            validate_sharded(&cfg),
            Err(ConfigError::Inconsistent { .. })
        ));
        let mut cfg = GossipConfig::pb_cam(0.5);
        cfg.node_failure_per_phase = 0.1;
        assert!(matches!(
            validate_sharded(&cfg),
            Err(ConfigError::Inconsistent { .. })
        ));
        assert!(validate_sharded(&GossipConfig::pb_cam(0.5)).is_ok());
    }

    #[test]
    #[should_panic(expected = "sharded engine")]
    fn sequential_only_config_panics_at_entry() {
        let topo = line(3);
        let mut cfg = GossipConfig::pb_cam(0.5);
        cfg.track_success_rate = true;
        let _ = run_gossip_sharded(&topo, &cfg, 0, 2);
    }

    /// With live instrumentation, a sharded run must leave a coherent
    /// telemetry footprint: claim elections won/contended, per-stage shard
    /// timings, imbalance and memory gauges, and flight-recorder events.
    #[cfg(feature = "obs")]
    #[test]
    fn telemetry_footprint_is_coherent() {
        let reg = nss_obs::registry::Registry::global();
        let before = reg.snapshot();
        let topo = Topology::build(&Deployment::disk(5, 1.0, 60.0).sample(21));
        let t = run_gossip_sharded(&topo, &GossipConfig::flooding_cam(), 17, 4);
        let delta = reg.snapshot().delta_since(&before);
        let counter = |name: &str| {
            delta
                .counters
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |&(_, v)| v)
        };
        let won = counter("sim.claim.won");
        let contended = counter("sim.claim.contended");
        // Every delivery/collision/deferral receiver was claimed exactly
        // once; flooding a dense disk must also lose some elections.
        assert!(
            won >= t.total_deliveries() + t.total_collisions(),
            "won={won}"
        );
        assert!(contended > 0, "dense flooding must contend claims");
        let hist = |name: &str| {
            delta
                .histograms
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |(_, h)| h.count)
        };
        assert!(hist("sim.phase.seconds") > 0, "phase spans missing");
        assert!(
            hist("sim.slot.expose.shard.seconds") > 0,
            "shard timings missing"
        );
        for g in ["sim.bitset.bytes", "sim.slot.expose.imbalance"] {
            assert!(
                delta.gauges.iter().any(|(k, v)| k == g && *v > 0.0),
                "gauge {g} missing or zero"
            );
        }
        let (events, _) = nss_obs::trace::events();
        assert!(
            events
                .iter()
                .any(|e| nss_obs::trace::name_of(e.name_id) == "sim.phase"),
            "flight recorder saw no sim.phase events"
        );
    }

    #[test]
    fn thread_count_invariant_under_sinr() {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 60.0).sample(11));
        let cfg = GossipConfig::pb_cam(0.5).with_backend(MediumBackend::Sinr(SinrParams {
            alpha: 3.0,
            beta: 0.5,
            noise: 0.05,
            interference_factor: 3.0,
        }));
        let base = run_gossip_sharded(&topo, &cfg, 42, 1);
        assert_eq!(base.sinr_rejects_by_phase.len(), base.phases());
        for threads in [2, 3, 4, 7] {
            let t = run_gossip_sharded(&topo, &cfg, 42, threads);
            assert_traces_equal(&base, &t);
            assert_eq!(base.sinr_rejects_by_phase, t.sinr_rejects_by_phase);
        }
        assert_traces_equal(&base, &run_gossip_sharded(&topo, &cfg, 42, 0));
    }

    #[test]
    fn sinr_flooding_single_slot_matches_sequential_engine() {
        // With s = 1 and p = 1 neither engine draws a consequential coin:
        // every informed node transmits in the only slot, and the SINR
        // interference sum is accumulated in the grid's canonical order by
        // both resolvers — the traces must agree exactly.
        let topo = Topology::build(&Deployment::disk(5, 1.0, 50.0).sample(8));
        let mut cfg =
            GossipConfig::flooding_cam().with_backend(MediumBackend::Sinr(SinrParams::DEFAULT));
        cfg.s = 1;
        let seq = run_gossip(&topo, &cfg, 3);
        for threads in [1, 4] {
            let shard = run_gossip_sharded(&topo, &cfg, 3, threads);
            assert_eq!(seq.first_rx_phase, shard.first_rx_phase);
            assert_eq!(seq.broadcasts_by_phase, shard.broadcasts_by_phase);
            assert_eq!(seq.deliveries_by_phase, shard.deliveries_by_phase);
            assert_eq!(seq.collisions_by_phase, shard.collisions_by_phase);
            assert_eq!(seq.sinr_rejects_by_phase, shard.sinr_rejects_by_phase);
        }
    }

    #[test]
    fn sinr_with_capability_classes_is_thread_invariant() {
        let topo = Topology::build(&Deployment::disk(5, 1.0, 50.0).sample(6));
        let cfg = GossipConfig::pb_cam(0.6).with_backend(MediumBackend::Sinr(SinrParams::DEFAULT));
        let plan = FaultPlan {
            dead_frac: 0.1,
            tx_only_frac: 0.2,
            link_loss: 0.1,
            ..FaultPlan::default()
        };
        let base = run_gossip_sharded_faulty(&topo, &cfg, &plan, 7, 70, 1);
        for threads in [2, 4] {
            let t = run_gossip_sharded_faulty(&topo, &cfg, &plan, 7, 70, threads);
            assert_traces_equal(&base, &t);
        }
        // Tx-only receivers drop packets without dying.
        assert!(base.total_dead_drops() > 0);
        assert_eq!(base.alive_by_phase[0], {
            let dead = (0..topo.len() as u32)
                .filter(|&u| !plan.survives_thinning(u, 70))
                .count() as u32;
            topo.len() as u32 - dead
        });
    }

    #[test]
    fn faulty_runs_deterministic_per_seed_pair() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 45.0).sample(5));
        let cfg = GossipConfig::pb_cam(0.5);
        let plan = FaultPlan::lossy(0.4);
        let a = run_gossip_sharded_faulty(&topo, &cfg, &plan, 2, 20, 3);
        let b = run_gossip_sharded_faulty(&topo, &cfg, &plan, 2, 20, 3);
        assert_traces_equal(&a, &b);
        // Protocol stream unaffected by the faults seed: phase-1 broadcast
        // schedule (just the source) is identical.
        let c = run_gossip_sharded_faulty(&topo, &cfg, &plan, 2, 21, 3);
        assert_eq!(a.broadcasts_by_phase[0], c.broadcasts_by_phase[0]);
    }
}
