//! Generic discrete-event simulation core.
//!
//! The paper's analysis assumes perfectly aligned time phases, but notes
//! (§4.2) that PB_CAM itself "does not require synchronized time slots".
//! The slotted executor ([`crate::slotted`]) implements the aligned
//! idealization; this engine supports the *asynchronous* execution model
//! (see [`crate::protocols::async_gossip`]), where transmissions are
//! intervals on a continuous timeline and collisions are overlaps at the
//! receiver — the behavior of real 802.11 broadcast without RTS/CTS/ACK.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation timestamp. Total order over non-NaN `f64`s; constructing a
/// NaN time is a logic error and panics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(f64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0.0);

    /// Wraps a finite timestamp.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "NaN simulation time");
        Time(t)
    }

    /// The raw value.
    pub fn as_f64(&self) -> f64 {
        self.0
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An event scheduled for execution.
#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest (then lowest seq,
        // i.e. FIFO among ties) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events at equal timestamps pop in insertion order, making executions
/// reproducible independent of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`. Scheduling into the past is
    /// a logic error (panics): the causality violation would silently
    /// reorder history otherwise.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {} but now is {}",
            at.as_f64(),
            self.now.as_f64()
        );
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` `delay` time units from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule(Time::new(self.now.as_f64() + delay), event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Runs events through `handler` until the queue drains or `handler`
    /// returns `false` (early stop). Returns the number of events handled.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Time, E) -> bool) -> u64 {
        let mut handled = 0;
        while let Some((t, e)) = self.pop() {
            handled += 1;
            if !handler(self, t, e) {
                break;
            }
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering() {
        assert!(Time::new(1.0) < Time::new(2.0));
        assert_eq!(Time::new(3.0), Time::new(3.0));
        assert_eq!(Time::ZERO.as_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(3.0), "c");
        q.schedule(Time::new(1.0), "a");
        q.schedule(Time::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Time::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(2.5), ());
        q.schedule(Time::new(7.0), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::new(2.5));
        q.pop();
        assert_eq!(q.now(), Time::new(7.0));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), Time::new(7.0), "clock stays at last event");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(4.0), "first");
        q.pop();
        q.schedule_in(1.5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::new(5.5));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5.0), ());
        q.pop();
        q.schedule(Time::new(4.0), ());
    }

    #[test]
    fn run_drains_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(1.0), 0u32);
        let mut seen = Vec::new();
        let handled = q.run(|q, _t, gen| {
            seen.push(gen);
            if gen < 4 {
                q.schedule_in(1.0, gen + 1);
            }
            true
        });
        assert_eq!(handled, 5);
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.now(), Time::new(5.0));
    }

    #[test]
    fn run_early_stop() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Time::new(f64::from(i)), i);
        }
        let handled = q.run(|_, _, e| e < 3);
        assert_eq!(handled, 4); // events 0,1,2 continue; 3 stops
        assert_eq!(q.len(), 6);
    }
}
