//! Unified entry point for every simulator execution.
//!
//! Historically each scenario axis grew its own free function —
//! `run_gossip`, `run_gossip_faulty`, `run_gossip_per_node`,
//! `run_gossip_sharded`, `run_gossip_sharded_faulty`, `run_tdma_flooding`,
//! `run_tdma_flooding_faulty` — a 2×2×2 matrix that could only get worse
//! with every new axis (the SINR backend would have doubled it again). The
//! [`Executor`] builder collapses the matrix: pick a topology, then chain
//! whichever axes the experiment needs.
//!
//! ```
//! use nss_model::prelude::*;
//! use nss_sim::executor::Executor;
//! use nss_sim::slotted::GossipConfig;
//!
//! let topo = Topology::build(&Deployment::disk(5, 1.0, 60.0).sample(1));
//! let trace = Executor::new(&topo)
//!     .gossip(GossipConfig::pb_cam(0.2))
//!     .run(7);
//! assert!(trace.final_reachability() > 0.2);
//! ```
//!
//! Every combination reproduces the exact output of the core loop it
//! drives: the sequential engine (the default) is byte-compatible with
//! `slotted::run_gossip_with`, and [`Executor::threads`] switches to the
//! sharded engine of `sharded::run_sharded_with` (thread-count-invariant,
//! but a distinct RNG discipline — see [`crate::sharded`]). The tests here
//! pin the builder bitwise against those internal seams, so the removed
//! legacy free functions stay reproducible through the builder.

use crate::slotted::GossipConfig;
use crate::tdma::{TdmaOutcome, TdmaSchedule};
use crate::trace::SimTrace;
use nss_model::comm::{CommunicationModel, MediumBackend};
use nss_model::faults::FaultPlan;
use nss_model::topology::Topology;

/// Which engine executes the phase loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Single-threaded `SmallRng` executor ([`crate::slotted`]).
    Sequential,
    /// Intra-replication sharded executor ([`crate::sharded`]); `0` uses
    /// all available cores.
    Sharded(usize),
}

/// Builder for one simulator execution over a borrowed [`Topology`].
///
/// Defaults: CAM flooding (`p = 1`, `s = 3`), unit-disk backend, no
/// faults, sequential engine.
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    topo: &'a Topology,
    cfg: GossipConfig,
    plan: FaultPlan,
    faults_seed: u64,
    engine: Engine,
    probs: Option<Vec<f64>>,
}

impl<'a> Executor<'a> {
    /// Starts a builder over `topo` with the default configuration.
    pub fn new(topo: &'a Topology) -> Self {
        Executor {
            topo,
            cfg: GossipConfig::flooding_cam(),
            plan: FaultPlan::none(),
            faults_seed: 0,
            engine: Engine::Sequential,
            probs: None,
        }
    }

    /// Replaces the whole gossip configuration (probability, slots, model,
    /// backend, phase cap, …).
    pub fn gossip(mut self, cfg: GossipConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the communication model (CFM, or CAM with a collision rule).
    pub fn model(mut self, model: CommunicationModel) -> Self {
        self.cfg.model = model;
        self
    }

    /// Sets the physical-layer backend resolving CAM slots.
    pub fn medium(mut self, backend: MediumBackend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Sets the rebroadcast probability `p`.
    pub fn prob(mut self, prob: f64) -> Self {
        self.cfg.prob = prob;
        self
    }

    /// Installs a fault plan (see [`Executor::faults_seed`] for the seed
    /// discipline). An empty plan keeps the exact fault-free code path.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Seeds the plan's random decisions; derive it from
    /// [`Stream::Faults`](nss_model::rng::Stream::Faults) so the protocol
    /// and jitter streams stay untouched.
    pub fn faults_seed(mut self, seed: u64) -> Self {
        self.faults_seed = seed;
        self
    }

    /// Selects the engine by worker count, mirroring
    /// [`Replication::with_intra_threads`](crate::runner::Replication):
    /// `0` keeps the sequential executor; any other value runs the sharded
    /// engine with that many workers (bitwise-invariant across counts).
    pub fn threads(self, threads: usize) -> Self {
        match threads {
            0 => self.sequential(),
            t => self.sharded(t),
        }
    }

    /// Forces the sequential engine (the default).
    pub fn sequential(mut self) -> Self {
        self.engine = Engine::Sequential;
        self
    }

    /// Forces the sharded engine; `threads = 0` uses all available cores.
    pub fn sharded(mut self, threads: usize) -> Self {
        self.engine = Engine::Sharded(threads);
        self
    }

    /// Uses a per-node rebroadcast probability vector (the §6 adaptive
    /// extension); `cfg.prob` is ignored. Sequential engine only.
    pub fn per_node_probs(mut self, probs: Vec<f64>) -> Self {
        self.probs = Some(probs);
        self
    }

    fn checked_faults(&self) -> Option<(&FaultPlan, u64)> {
        if self.plan.is_empty() {
            None
        } else {
            self.plan
                .validate()
                .unwrap_or_else(|e| panic!("invalid FaultPlan: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; `validate()` is the fallible path
            Some((&self.plan, self.faults_seed))
        }
    }

    /// Runs one gossip execution and returns its trace.
    ///
    /// # Panics
    ///
    /// On invalid configurations or plans, on per-node probability vectors
    /// that don't match the topology, and on combinations the sharded
    /// engine rejects (per-node probabilities, success-rate tracking,
    /// legacy per-phase failure injection).
    pub fn run(&self, seed: u64) -> SimTrace {
        let faults = self.checked_faults();
        match (self.engine, self.probs.as_deref()) {
            (Engine::Sequential, None) => crate::slotted::run_gossip_with(
                self.topo,
                &self.cfg,
                |_| self.cfg.prob,
                seed,
                faults,
            ),
            (Engine::Sequential, Some(probs)) => {
                assert_eq!(probs.len(), self.topo.len(), "one probability per node");
                assert!(
                    probs.iter().all(|p| (0.0..=1.0).contains(p)),
                    "per-node probabilities must lie in [0,1]"
                );
                crate::slotted::run_gossip_with(self.topo, &self.cfg, |u| probs[u], seed, faults)
            }
            (Engine::Sharded(threads), None) => {
                crate::sharded::run_sharded_with(self.topo, &self.cfg, seed, faults, threads)
            }
            (Engine::Sharded(_), Some(_)) => {
                panic!("per-node probabilities require the sequential engine") // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs
            }
        }
    }

    /// Floods the network over a TDMA `schedule` through the CAM medium,
    /// honoring the builder's backend and fault plan. Under a SINR backend
    /// the outcome's `collisions` field counts every interference-garbled
    /// reception (in-range concurrency and SINR rejects alike).
    pub fn run_tdma(&self, schedule: &TdmaSchedule) -> TdmaOutcome {
        let faults = self.checked_faults();
        crate::tdma::run_tdma_with(self.topo, schedule, faults, self.cfg.backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::comm::SinrParams;
    use nss_model::deployment::Deployment;

    fn topo() -> Topology {
        Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(3))
    }

    // The builder must reproduce the internal core loops bit-for-bit:
    // these pins are what kept the removed legacy free functions honest,
    // and they now guard the builder's own plumbing (validation defaults,
    // axis wiring) against drift.
    #[test]
    fn matches_sequential_core_loop() {
        let topo = topo();
        let cfg = GossipConfig::pb_cam(0.4);
        let core = crate::slotted::run_gossip_with(&topo, &cfg, |_| cfg.prob, 21, None);
        let built = Executor::new(&topo).gossip(cfg).run(21);
        assert_eq!(core, built);
    }

    #[test]
    fn matches_sequential_core_loop_with_faults() {
        let topo = topo();
        let cfg = GossipConfig::pb_cam(0.4);
        let mut plan = FaultPlan::lossy(0.3);
        plan.dead_frac = 0.1;
        let core =
            crate::slotted::run_gossip_with(&topo, &cfg, |_| cfg.prob, 21, Some((&plan, 77)));
        let built = Executor::new(&topo)
            .gossip(cfg)
            .faults(plan)
            .faults_seed(77)
            .run(21);
        assert_eq!(core, built);
    }

    #[test]
    fn matches_per_node_core_loop() {
        let topo = topo();
        let cfg = GossipConfig::pb_cam(0.0);
        let probs: Vec<f64> = (0..topo.len()).map(|u| (u % 3) as f64 * 0.3).collect();
        let core = crate::slotted::run_gossip_with(&topo, &cfg, |u| probs[u], 9, None);
        let built = Executor::new(&topo)
            .gossip(cfg)
            .per_node_probs(probs)
            .run(9);
        assert_eq!(core, built);
    }

    #[test]
    fn matches_sharded_core_loop() {
        let topo = topo();
        let cfg = GossipConfig::pb_cam(0.5);
        let core = crate::sharded::run_sharded_with(&topo, &cfg, 5, None, 3);
        let built = Executor::new(&topo).gossip(cfg).threads(3).run(5);
        assert_eq!(core, built);
        // threads(0) keeps the sequential engine (intra_threads semantics).
        let seq = Executor::new(&topo).gossip(cfg).threads(0).run(5);
        assert_eq!(
            seq,
            crate::slotted::run_gossip_with(&topo, &cfg, |_| cfg.prob, 5, None)
        );
        // sharded(0) = sharded engine on all cores.
        let auto = Executor::new(&topo).gossip(cfg).sharded(0).run(5);
        assert_eq!(auto, core);
    }

    #[test]
    fn matches_sharded_core_loop_with_faults() {
        let topo = topo();
        let cfg = GossipConfig::pb_cam(0.5);
        let plan = FaultPlan::thinned(0.2);
        let core = crate::sharded::run_sharded_with(&topo, &cfg, 5, Some((&plan, 50)), 2);
        let built = Executor::new(&topo)
            .gossip(cfg)
            .faults(plan)
            .faults_seed(50)
            .threads(2)
            .run(5);
        assert_eq!(core, built);
    }

    #[test]
    fn matches_tdma_core_loop() {
        let topo = topo();
        let schedule = TdmaSchedule::build(&topo);
        let core = crate::tdma::run_tdma_with(&topo, &schedule, None, MediumBackend::UnitDisk);
        let built = Executor::new(&topo).run_tdma(&schedule);
        assert_eq!(core, built);
    }

    #[test]
    fn matches_tdma_core_loop_with_faults() {
        let topo = topo();
        let schedule = TdmaSchedule::build(&topo);
        let plan = FaultPlan::lossy(0.4);
        let core =
            crate::tdma::run_tdma_with(&topo, &schedule, Some((&plan, 9)), MediumBackend::UnitDisk);
        let built = Executor::new(&topo)
            .faults(plan)
            .faults_seed(9)
            .run_tdma(&schedule);
        assert_eq!(core, built);
    }

    #[test]
    fn axis_helpers_compose() {
        let topo = topo();
        let a = Executor::new(&topo)
            .gossip(GossipConfig::pb_cam(0.3))
            .medium(MediumBackend::Sinr(SinrParams::DEFAULT))
            .run(4);
        let b = Executor::new(&topo)
            .prob(0.3)
            .medium(MediumBackend::Sinr(SinrParams::DEFAULT))
            .run(4);
        // pb_cam(0.3) differs from flooding_cam only in prob.
        assert_eq!(a, b);
        assert_eq!(a.sinr_rejects_by_phase.len(), a.phases());
        // model() switches to CFM (backend then ignored).
        let cfm = Executor::new(&topo)
            .model(CommunicationModel::Cfm)
            .prob(0.3)
            .run(4);
        assert!(cfm.sinr_rejects_by_phase.is_empty());
    }

    #[test]
    #[should_panic(expected = "sequential engine")]
    fn per_node_probs_reject_sharded_engine() {
        let topo = topo();
        let n = topo.len();
        let _ = Executor::new(&topo)
            .per_node_probs(vec![0.5; n])
            .sharded(2)
            .run(1);
    }

    #[test]
    #[should_panic(expected = "invalid FaultPlan")]
    fn invalid_plan_rejected_at_run() {
        let topo = topo();
        let _ = Executor::new(&topo).faults(FaultPlan::lossy(1.5)).run(1);
    }
}
