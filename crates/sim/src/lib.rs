//! # nss-sim — packet-level simulator for CFM/CAM networks
//!
//! The GloMoSim substitute: a from-scratch wireless-network simulator
//! implementing exactly the paper's link-layer semantics.
//!
//! * [`medium`] — per-slot arbitration under CFM (reliable) or CAM
//!   (Assumption 6 collisions; optional Appendix-A carrier sensing).
//! * [`slotted`] — the slot-synchronous phase executor running
//!   probability-based gossip (PB_CAM, simple flooding, CFM gossip).
//! * [`protocols`] — richer protocol variants: ACK-based reliable flooding
//!   (the naive CFM implementation of §3.2.1) and the counter-based scheme
//!   (Williams et al., the paper's future-work family).
//! * [`engine`] — a generic discrete-event core for asynchronous (non
//!   phase-aligned) executions.
//! * [`executor`] — the unified [`Executor`] builder that selects the
//!   engine, medium backend, fault plan, and probability axis for a run.
//! * [`trace`] / [`runner`] / [`stats`] — execution records, seeded
//!   parallel replication, and the 30-run aggregation the paper reports.
//!
//! ```
//! use nss_sim::prelude::*;
//! use nss_model::prelude::*;
//!
//! let topo = Topology::build(&Deployment::disk(5, 1.0, 60.0).sample(1));
//! let trace = Executor::new(&topo)
//!     .gossip(GossipConfig::pb_cam(0.2))
//!     .run(7);
//! assert!(trace.final_reachability() > 0.2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod engine;
pub mod events;
pub mod exact;
pub mod executor;
pub mod faults;
pub mod medium;
pub mod probe;
pub mod protocols;
pub mod runner;
pub mod sharded;
pub mod slotted;
pub mod stats;
pub mod tdma;
pub mod trace;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::bits::{AtomicBitSet, BitSet};
    pub use crate::events::{run_event_delivery, EventDeliveryReport};
    pub use crate::exact::{exact_expected_informed, exact_expected_reachability};
    pub use crate::executor::Executor;
    pub use crate::faults::{FaultState, SlotFaults};
    pub use crate::medium::{Medium, MediumScratch};
    pub use crate::probe::probe_per_node_success;
    pub use crate::runner::{ReplicatedTraces, Replication};
    pub use crate::slotted::GossipConfig;
    pub use crate::stats::Summary;
    pub use crate::tdma::{TdmaOutcome, TdmaSchedule};
    pub use crate::trace::{SimTrace, NEVER};
}

pub use prelude::*;
