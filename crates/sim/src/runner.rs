//! Seeded, parallel replication of simulated executions.
//!
//! The paper's simulation results average 30 random runs per parameter
//! point. Each replication gets an independent deployment and protocol RNG
//! stream derived from one master seed ([`nss_model::rng::SeedFactory`]),
//! so results are bit-reproducible regardless of thread scheduling.

use crate::executor::Executor;
use crate::slotted::GossipConfig;
use crate::stats::Summary;
use crate::trace::SimTrace;
use crossbeam::channel;
use nss_model::deployment::Deployment;
use nss_model::faults::FaultPlan;
use nss_model::metrics::PhaseSeries;
use nss_model::rng::{SeedFactory, Stream};
use nss_model::topology::Topology;
use serde::{Deserialize, Serialize};

/// A replicated experiment: one deployment spec, one protocol config,
/// `replications` independent runs.
///
/// Construct with [`Replication::paper`] and refine with the builder
/// methods ([`with_runs`](Replication::with_runs),
/// [`with_threads`](Replication::with_threads),
/// [`with_faults`](Replication::with_faults)) rather than mutating fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replication {
    /// Deployment specification (re-sampled each run).
    pub deployment: Deployment,
    /// Protocol configuration.
    pub gossip: GossipConfig,
    /// Number of independent runs (the paper uses 30).
    pub replications: u32,
    /// Master seed.
    pub master_seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Fault scenario; [`FaultPlan::none`] (the default) takes the exact
    /// fault-free code path.
    pub faults: FaultPlan,
    /// Threads *inside* each replication (0 = off, the default). Non-zero
    /// routes runs through the sharded engine
    /// ([`crate::sharded`], via `Executor::sharded`), whose stateless-coin RNG
    /// discipline differs from the sequential engine's — traces are
    /// reproducible per seed and thread count but not comparable across
    /// the two engines. Meant for few huge fields, where replication-level
    /// parallelism has nothing left to amortize.
    #[serde(default)]
    pub intra_threads: usize,
}

impl Replication {
    /// The paper's simulation protocol: 30 runs.
    pub fn paper(deployment: Deployment, gossip: GossipConfig, master_seed: u64) -> Self {
        Replication {
            deployment,
            gossip,
            replications: 30,
            master_seed,
            threads: 0,
            faults: FaultPlan::none(),
            intra_threads: 0,
        }
    }

    /// Sets the number of independent runs.
    pub fn with_runs(mut self, runs: u32) -> Self {
        self.replications = runs;
        self
    }

    /// Sets the worker-thread count (0 = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the fault scenario applied to every run.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables intra-replication sharding with the given thread count per
    /// run (see the [`intra_threads`](Replication::intra_threads) field);
    /// `0` restores the sequential engine.
    pub fn with_intra_threads(mut self, intra_threads: usize) -> Self {
        self.intra_threads = intra_threads;
        self
    }

    /// Sets the physical-layer backend every run resolves CAM slots with
    /// (mirrors [`Executor::medium`]).
    pub fn with_medium(mut self, backend: nss_model::comm::MediumBackend) -> Self {
        self.gossip.backend = backend;
        self
    }

    /// Runs all replications and collects their traces (ordered by
    /// replication index).
    pub fn run(&self) -> ReplicatedTraces {
        let factory = SeedFactory::new(self.master_seed);
        nss_obs::set_label!("sim.master_seed", self.master_seed);
        nss_obs::set_label!(
            "sim.rng_streams",
            format!(
                "{}/{}/{}/{}/{}",
                Stream::Deployment.label(),
                Stream::Protocol.label(),
                Stream::Jitter.label(),
                Stream::Faults.label(),
                Stream::Misc.label()
            )
        );
        let n = self.replications as usize;
        let nworkers = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |t| t.get())
        } else {
            self.threads
        }
        .min(n.max(1));

        let mut traces: Vec<Option<SimTrace>> = vec![None; n];
        if nworkers <= 1 {
            for (i, slot) in traces.iter_mut().enumerate() {
                *slot = Some(self.run_one(&factory, i as u64));
            }
        } else {
            let (tx, rx) = channel::unbounded::<(usize, SimTrace)>();
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..nworkers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let factory = &factory;
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let trace = self.run_one(factory, i as u64);
                        // Closed channel = collector unwinding; stop quietly
                        // rather than panic on top of a panic.
                        if tx.send((i, trace)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, trace) in rx {
                    traces[i] = Some(trace);
                }
            });
        }
        ReplicatedTraces {
            traces: traces
                .into_iter()
                // nss-lint: allow(panic-hygiene) — the cursor protocol claims every replication index exactly once (same protocol loom-checked in analysis/tests/loom_sweep.rs), so a missing trace is unreachable
                .map(|t| t.expect("all runs complete"))
                .collect(),
        }
    }

    fn run_one(&self, factory: &SeedFactory, rep: u64) -> SimTrace {
        // nss-lint: allow(nondeterminism-taint) — feeds the sim.replication_seconds / node-phase throughput metrics only; the returned SimTrace is a pure function of the labeled seeds
        let start = nss_obs::enabled().then(std::time::Instant::now);
        let net = self
            .deployment
            .sample(factory.seed(Stream::Deployment, rep));
        let topo = Topology::build(&net);
        let trace = Executor::new(&topo)
            .gossip(self.gossip)
            .faults(self.faults.clone())
            .faults_seed(factory.seed(Stream::Faults, rep))
            .threads(self.intra_threads)
            .run(factory.seed(Stream::Protocol, rep));
        if let Some(start) = start {
            let secs = start.elapsed().as_secs_f64();
            nss_obs::observe!("sim.replication_seconds", secs);
            nss_obs::counter!("sim.replications").inc();
            // Throughput in node-phases per second: the scale-engine figure
            // of merit (BENCH_sim.json reports it from these observations).
            let node_phases = (topo.len() as u64) * trace.phases() as u64;
            nss_obs::counter!("sim.node_phases").add(node_phases);
            if secs > 0.0 {
                nss_obs::observe!("sim.nodes_per_sec", node_phases as f64 / secs);
            }
        }
        trace
    }
}

/// The traces of all replications, with metric aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedTraces {
    /// One trace per replication, in replication order.
    pub traces: Vec<SimTrace>,
}

impl ReplicatedTraces {
    /// Phase series of every replication.
    pub fn series(&self) -> Vec<PhaseSeries> {
        self.traces.iter().map(SimTrace::phase_series).collect()
    }

    /// Mean reachability within a latency budget (phases).
    pub fn reachability_at_latency(&self, phases: f64) -> Summary {
        let vals: Vec<f64> = self
            .series()
            .iter()
            .map(|s| s.reachability_at_latency(phases))
            .collect();
        Summary::of(&vals)
    }

    /// Mean latency to a reachability target over the runs that achieve it,
    /// plus the achieving fraction.
    pub fn latency_to_reach(&self, target: f64) -> (Summary, f64) {
        let vals: Vec<Option<f64>> = self
            .series()
            .iter()
            .map(|s| s.latency_to_reach(target))
            .collect();
        Summary::of_feasible(&vals)
    }

    /// Mean broadcasts to a reachability target over achieving runs, plus
    /// the achieving fraction.
    pub fn broadcasts_to_reach(&self, target: f64) -> (Summary, f64) {
        let vals: Vec<Option<f64>> = self
            .series()
            .iter()
            .map(|s| s.broadcasts_to_reach(target))
            .collect();
        Summary::of_feasible(&vals)
    }

    /// Mean reachability under a broadcast budget.
    pub fn reachability_under_budget(&self, budget: f64) -> Summary {
        let vals: Vec<f64> = self
            .series()
            .iter()
            .map(|s| s.reachability_under_budget(budget))
            .collect();
        Summary::of(&vals)
    }

    /// Mean final reachability.
    pub fn final_reachability(&self) -> Summary {
        let vals: Vec<f64> = self
            .series()
            .iter()
            .map(PhaseSeries::final_reachability)
            .collect();
        Summary::of(&vals)
    }

    /// Mean total broadcasts.
    pub fn total_broadcasts(&self) -> Summary {
        let vals: Vec<f64> = self
            .traces
            .iter()
            .map(|t| t.total_broadcasts() as f64)
            .collect();
        Summary::of(&vals)
    }

    /// Mean per-broadcast success rate over runs that recorded one.
    pub fn mean_success_rate(&self) -> (Summary, f64) {
        let vals: Vec<Option<f64>> = self
            .traces
            .iter()
            .map(SimTrace::mean_success_rate)
            .collect();
        Summary::of_feasible(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_replication(threads: usize) -> Replication {
        Replication::paper(
            Deployment::disk(4, 1.0, 30.0),
            GossipConfig::pb_cam(0.4),
            42,
        )
        .with_runs(8)
        .with_threads(threads)
    }

    #[test]
    fn reproducible_across_thread_counts() {
        let seq = small_replication(1).run();
        let par = small_replication(4).run();
        assert_eq!(seq.traces.len(), 8);
        for (a, b) in seq.traces.iter().zip(&par.traces) {
            assert_eq!(a.first_rx_phase, b.first_rx_phase);
            assert_eq!(a.broadcasts_by_phase, b.broadcasts_by_phase);
        }
    }

    #[test]
    fn faulty_replication_reproducible_across_thread_counts() {
        let plan = FaultPlan::lossy(0.2);
        let seq = small_replication(1).with_faults(plan.clone()).run();
        let par = small_replication(4).with_faults(plan).run();
        for (a, b) in seq.traces.iter().zip(&par.traces) {
            assert_eq!(a.first_rx_phase, b.first_rx_phase);
            assert_eq!(a.broadcasts_by_phase, b.broadcasts_by_phase);
            assert_eq!(a.losses_by_phase, b.losses_by_phase);
            assert_eq!(a.alive_by_phase, b.alive_by_phase);
        }
        assert!(
            seq.traces.iter().any(|t| t.total_losses() > 0),
            "a 20% lossy plan over 8 runs should lose at least one packet"
        );
    }

    #[test]
    fn empty_fault_plan_matches_plain_replication() {
        let plain = small_replication(0).run();
        let faulted = small_replication(0).with_faults(FaultPlan::none()).run();
        for (a, b) in plain.traces.iter().zip(&faulted.traces) {
            assert_eq!(a, b, "FaultPlan::none must be a bitwise no-op");
        }
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = small_replication(0).run();
        let mut rep = small_replication(0);
        rep.master_seed = 43;
        let b = rep.run();
        assert_ne!(
            a.traces[0].first_rx_phase, b.traces[0].first_rx_phase,
            "different master seeds should give different runs"
        );
    }

    #[test]
    fn replications_are_independent() {
        let r = small_replication(0).run();
        // At least two runs should differ (independent deployments).
        let distinct = r
            .traces
            .windows(2)
            .any(|w| w[0].first_rx_phase != w[1].first_rx_phase);
        assert!(distinct, "replications look identical");
    }

    #[test]
    fn aggregation_shapes() {
        let r = small_replication(0).run();
        let reach = r.reachability_at_latency(5.0);
        assert_eq!(reach.n, 8);
        assert!(reach.mean > 0.0 && reach.mean <= 1.0);
        let (lat, frac) = r.latency_to_reach(0.2);
        assert!(frac > 0.0, "some run should reach 20%");
        assert!(lat.n >= 1);
        let bc = r.total_broadcasts();
        assert!(bc.mean >= 1.0);
        let budget = r.reachability_under_budget(10.0);
        assert!(budget.mean <= reach.mean + 1.0);
    }

    #[test]
    fn intra_sharding_reproducible_across_intra_thread_counts() {
        let one = small_replication(1).with_intra_threads(1).run();
        let four = small_replication(1).with_intra_threads(4).run();
        for (a, b) in one.traces.iter().zip(&four.traces) {
            assert_eq!(a, b, "sharded traces must be thread-count invariant");
        }
        let plan = FaultPlan::lossy(0.2);
        let fone = small_replication(1)
            .with_intra_threads(1)
            .with_faults(plan.clone())
            .run();
        let ffour = small_replication(1)
            .with_intra_threads(4)
            .with_faults(plan)
            .run();
        for (a, b) in fone.traces.iter().zip(&ffour.traces) {
            assert_eq!(a, b, "faulty sharded traces must be invariant too");
        }
    }

    #[test]
    fn sinr_backend_reproducible_across_intra_thread_counts() {
        use nss_model::comm::{MediumBackend, SinrParams};
        let sinr = MediumBackend::Sinr(SinrParams {
            alpha: 3.0,
            beta: 0.8,
            noise: 0.02,
            interference_factor: 3.0,
        });
        let one = small_replication(1)
            .with_medium(sinr)
            .with_intra_threads(1)
            .run();
        let four = small_replication(1)
            .with_medium(sinr)
            .with_intra_threads(4)
            .run();
        for (a, b) in one.traces.iter().zip(&four.traces) {
            assert_eq!(a, b, "SINR traces must be thread-count invariant");
        }
        assert!(
            one.traces
                .iter()
                .any(|t| !t.sinr_rejects_by_phase.is_empty()),
            "SINR runs must record the reject series"
        );
    }

    #[test]
    fn paper_protocol_is_30_runs() {
        let rep = Replication::paper(Deployment::disk(4, 1.0, 20.0), GossipConfig::pb_cam(0.2), 7);
        assert_eq!(rep.replications, 30);
    }

    #[test]
    fn success_rate_aggregation() {
        let mut rep = small_replication(0);
        rep.gossip.track_success_rate = true;
        rep.gossip.prob = 1.0;
        let r = rep.run();
        let (sr, frac) = r.mean_success_rate();
        assert!(frac > 0.99);
        assert!(sr.mean > 0.0 && sr.mean <= 1.0);
    }
}
