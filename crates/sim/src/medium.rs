//! Per-slot medium arbitration: who receives what, under CFM or CAM.
//!
//! The slotted executor hands the medium the set of nodes transmitting in
//! one slot; the medium applies the communication model's reception rule
//! (§3.2 / Assumption 6 / Appendix A) and reports every clean delivery as a
//! `(receiver, transmitter)` pair:
//!
//! * **CFM** — every transmission reaches every neighbor (atomic, reliable).
//! * **CAM, transmission range** — `v` receives iff exactly one node within
//!   `r` of `v` transmitted in the slot.
//! * **CAM, carrier sense `f·r`** — additionally, no node in the annulus
//!   `(r, f·r]` of `v` may have transmitted.
//!
//! A second physical-layer *backend* replaces the unit-disk reception rule
//! with the SINR model (see [`MediumBackend::Sinr`]): normalized received
//! power `p = (r²/d²)^(α/2)` per transmitter, and `v` decodes its strongest
//! in-range candidate iff `p / (N + Σ interference) ≥ β`, with interference
//! summed over every other transmitter within `κ·r` of `v`. The sum is
//! accumulated per receiver in the spatial grid's canonical iteration
//! order, so results are bit-identical under any engine or thread count.

use crate::bits::BitSet;
use crate::faults::SlotFaults;
use nss_model::comm::{CollisionRule, CommunicationModel, MediumBackend, SinrParams};
use nss_model::ids::NodeId;
use nss_model::topology::Topology;

/// Reusable scratch buffers for slot resolution (sized to the topology).
#[derive(Debug)]
pub struct MediumScratch {
    rx_count: Vec<u16>,
    cs_count: Vec<u16>,
    last_tx: Vec<u32>,
    touched: Vec<u32>,
    tx_bits: BitSet,
}

impl MediumScratch {
    /// Allocates scratch space for an `n`-node topology.
    pub fn new(n: usize) -> Self {
        MediumScratch {
            rx_count: vec![0; n],
            cs_count: vec![0; n],
            last_tx: vec![0; n],
            touched: Vec::with_capacity(256),
            tx_bits: BitSet::new(n),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.rx_count[v as usize] = 0;
            self.cs_count[v as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Outcome accounting for one resolved slot.
///
/// Counts are per *(receiver, slot)* pair and pre-protocol-filtering: a
/// delivery to an already-informed or dead node still counts here —
/// duplicate suppression and failure injection are protocol logic layered
/// above the medium.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Clean deliveries reported via `on_delivery`.
    pub deliveries: u64,
    /// Receivers that heard ≥ 2 in-range transmissions garble each other
    /// (CAM Assumption 6: nobody wins).
    pub collisions: u64,
    /// Receivers whose single clean reception was destroyed by
    /// carrier-annulus interference (Appendix A rule only).
    pub cs_deferrals: u64,
    /// Clean receptions destroyed by the fault plan's independent
    /// link-loss coin (the packet still occupied the channel, so it
    /// collided like any other transmission before the coin was flipped).
    pub losses: u64,
    /// Clean receptions addressed to a node the fault plan had killed
    /// (crash schedule, duty-cycle sleep, thinning, energy exhaustion).
    pub dead_drops: u64,
    /// Sole-candidate receptions the SINR threshold test rejected: no
    /// concurrent in-range transmitter, but out-of-range interference (or
    /// noise) pushed SINR below β. Zero under the unit-disk backend.
    pub sinr_rejects: u64,
    /// Deliveries decoded *despite* ≥ 2 concurrent in-range transmitters —
    /// the SINR capture effect, impossible under unit-disk Assumption 6.
    pub sinr_captures: u64,
}

impl SlotStats {
    /// Accumulates another slot's counts.
    pub fn absorb(&mut self, other: SlotStats) {
        self.deliveries += other.deliveries;
        self.collisions += other.collisions;
        self.cs_deferrals += other.cs_deferrals;
        self.losses += other.losses;
        self.dead_drops += other.dead_drops;
        self.sinr_rejects += other.sinr_rejects;
        self.sinr_captures += other.sinr_captures;
    }
}

/// The arbitration engine for one communication model.
#[derive(Debug, Clone, Copy)]
pub struct Medium {
    model: CommunicationModel,
    backend: MediumBackend,
}

impl Medium {
    /// Creates a medium implementing the given communication model under
    /// the default unit-disk backend (the paper's reception rules).
    pub fn new(model: CommunicationModel) -> Self {
        Medium {
            model,
            backend: MediumBackend::UnitDisk,
        }
    }

    /// Creates a medium with an explicit physical-layer backend.
    ///
    /// The backend only affects CAM arbitration: CFM is reliable by
    /// assumption, so it ignores the physical layer entirely. Under
    /// [`MediumBackend::Sinr`] the CAM [`CollisionRule`] is subsumed by
    /// the interference sum and ignored.
    pub fn with_backend(model: CommunicationModel, backend: MediumBackend) -> Self {
        Medium { model, backend }
    }

    /// The model this medium implements.
    pub fn model(&self) -> CommunicationModel {
        self.model
    }

    /// The physical-layer backend this medium resolves slots under.
    pub fn backend(&self) -> MediumBackend {
        self.backend
    }

    /// Resolves one slot: `transmitters` all transmit simultaneously;
    /// `on_delivery(receiver, transmitter)` fires for every clean delivery.
    /// Returns the slot's delivery/collision accounting (see [`SlotStats`]).
    ///
    /// Deliveries are reported for *all* in-range nodes, informed or not —
    /// duplicate-suppression is protocol logic, not medium logic. When a
    /// [`SlotFaults`] context is supplied, each *arbitration-clean* delivery
    /// is additionally gated by the receiver's liveness (`dead_drops`) and
    /// the independent link-loss coin (`losses`); arbitration itself is
    /// unaffected — a lost or unheard packet still occupied the channel.
    pub fn resolve_slot(
        &self,
        topo: &Topology,
        transmitters: &[u32],
        scratch: &mut MediumScratch,
        faults: Option<&SlotFaults<'_>>,
        mut on_delivery: impl FnMut(NodeId, NodeId),
    ) -> SlotStats {
        let mut stats = SlotStats::default();
        if transmitters.is_empty() {
            return stats;
        }
        // Gate one arbitration-clean delivery through the fault plan.
        let mut deliver = |stats: &mut SlotStats, rx: u32, tx: u32| {
            if let Some(f) = faults {
                if !f.alive.get(rx as usize) {
                    stats.dead_drops += 1;
                    return;
                }
                if !f.link_delivers(tx, rx) {
                    stats.losses += 1;
                    return;
                }
            }
            stats.deliveries += 1;
            on_delivery(NodeId(rx), NodeId(tx));
        };
        match self.model {
            CommunicationModel::Cfm => {
                // Reliable: every neighbor hears every transmission.
                for &t in transmitters {
                    for &v in topo.neighbors(NodeId(t)) {
                        deliver(&mut stats, v, t);
                    }
                }
            }
            CommunicationModel::Cam(_) if self.backend.is_sinr() => {
                if let MediumBackend::Sinr(params) = self.backend {
                    resolve_sinr(topo, transmitters, scratch, &params, &mut stats, deliver);
                }
            }
            CommunicationModel::Cam(rule) => {
                scratch.reset();
                for &t in transmitters {
                    for &v in topo.neighbors(NodeId(t)) {
                        if scratch.rx_count[v as usize] == 0 && scratch.cs_count[v as usize] == 0 {
                            scratch.touched.push(v);
                        }
                        scratch.rx_count[v as usize] += 1;
                        scratch.last_tx[v as usize] = t;
                    }
                    if let CollisionRule::CarrierSense { factor } = rule {
                        let pos = topo.position(NodeId(t));
                        let r = topo.comm_radius();
                        let r2 = r * r;
                        topo.for_each_within(&pos, factor * r, |v| {
                            if v.0 == t {
                                return;
                            }
                            let d2 = topo.position(v).dist_sq(&pos);
                            if d2 > r2 {
                                if scratch.rx_count[v.index()] == 0
                                    && scratch.cs_count[v.index()] == 0
                                {
                                    scratch.touched.push(v.0);
                                }
                                scratch.cs_count[v.index()] += 1;
                            }
                        });
                    }
                }
                for &v in &scratch.touched {
                    let rx = scratch.rx_count[v as usize];
                    if rx == 1 && scratch.cs_count[v as usize] == 0 {
                        deliver(&mut stats, v, scratch.last_tx[v as usize]);
                    } else if rx > 1 {
                        stats.collisions += 1;
                    } else if rx == 1 {
                        stats.cs_deferrals += 1;
                    }
                }
            }
        }
        nss_obs::counter!("sim.deliveries").add(stats.deliveries);
        nss_obs::counter!("sim.collisions").add(stats.collisions);
        nss_obs::counter!("sim.cs_deferrals").add(stats.cs_deferrals);
        if self.backend.is_sinr() {
            nss_obs::counter!("sim.sinr.rejects").add(stats.sinr_rejects);
            nss_obs::counter!("sim.sinr.captures").add(stats.sinr_captures);
        }
        if faults.is_some() {
            crate::faults::record_fault_obs(&stats);
        }
        stats
    }
}

/// Resolves one CAM slot under the SINR backend.
///
/// Two passes: pass 1 walks each transmitter's neighbor list to collect the
/// set of *touched* receivers (nodes with ≥ 1 in-range transmitter — only
/// they can possibly decode, since normalized power is < 1 beyond `r` and
/// β ≥ weakest-link power is required for the model to deliver anything at
/// unit range). Pass 2 sweeps the spatial grid once per touched receiver,
/// accumulating the interference sum over every transmitter within `κ·r`
/// in the grid's canonical order and tracking the strongest in-range
/// candidate (ties broken toward the lower node id). The candidate decodes
/// iff `p / (noise + Σ others) ≥ β`.
pub(crate) fn resolve_sinr(
    topo: &Topology,
    transmitters: &[u32],
    scratch: &mut MediumScratch,
    params: &SinrParams,
    stats: &mut SlotStats,
    mut deliver: impl FnMut(&mut SlotStats, u32, u32),
) {
    scratch.reset();
    for &t in transmitters {
        scratch.tx_bits.set(t as usize);
    }
    for &t in transmitters {
        for &v in topo.neighbors(NodeId(t)) {
            if scratch.rx_count[v as usize] == 0 {
                scratch.touched.push(v);
            }
            scratch.rx_count[v as usize] += 1;
        }
    }
    let r = topo.comm_radius();
    let r2 = r * r;
    // Floor d² at a tiny fraction of r² so co-located nodes don't produce
    // an infinite power (the result stays finite and deterministic).
    let d2_floor = r2 * 1e-12;
    for &v in &scratch.touched {
        let pos = topo.position(NodeId(v));
        let mut total = 0.0f64;
        let mut best_p = -1.0f64;
        let mut best_tx = u32::MAX;
        topo.for_each_within(&pos, params.interference_factor * r, |u| {
            if u.0 == v || !scratch.tx_bits.get(u.index()) {
                return;
            }
            let d2 = topo.position(u).dist_sq(&pos).max(d2_floor);
            let p = (r2 / d2).powf(params.alpha * 0.5);
            total += p;
            if d2 <= r2 && (p > best_p || (p == best_p && u.0 < best_tx)) {
                best_p = p;
                best_tx = u.0;
            }
        });
        if best_tx == u32::MAX {
            continue; // touched implies an in-range candidate; defensive
        }
        let denom = params.noise + (total - best_p).max(0.0);
        let decodes = if denom <= 0.0 {
            // No noise and no interference: SINR is unbounded.
            true
        } else {
            best_p / denom >= params.beta
        };
        let candidates = scratch.rx_count[v as usize];
        if decodes {
            if candidates > 1 {
                stats.sinr_captures += 1;
            }
            deliver(stats, v, best_tx);
        } else if candidates > 1 {
            stats.collisions += 1;
        } else {
            stats.sinr_rejects += 1;
        }
    }
    for &t in transmitters {
        scratch.tx_bits.assign(t as usize, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::deployment::DeployedNetwork;
    use nss_model::geometry::Point2;

    /// Line of nodes at unit spacing with radius 1: i—(i±1) adjacency.
    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    fn collect_deliveries(medium: &Medium, topo: &Topology, tx: &[u32]) -> Vec<(u32, u32)> {
        let mut scratch = MediumScratch::new(topo.len());
        let mut out = Vec::new();
        medium.resolve_slot(topo, tx, &mut scratch, None, |rx, t| out.push((rx.0, t.0)));
        out.sort_unstable();
        out
    }

    #[test]
    fn cfm_delivers_to_all_neighbors_despite_concurrency() {
        let topo = line(4); // 0-1-2-3
        let medium = Medium::new(CommunicationModel::Cfm);
        // 1 and 2 transmit concurrently: CFM delivers everything.
        let d = collect_deliveries(&medium, &topo, &[1, 2]);
        assert_eq!(d, vec![(0, 1), (1, 2), (2, 1), (3, 2)]);
    }

    #[test]
    fn cam_single_transmitter_reaches_neighbors() {
        let topo = line(4);
        let medium = Medium::new(CommunicationModel::CAM);
        let d = collect_deliveries(&medium, &topo, &[1]);
        assert_eq!(d, vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn cam_collision_at_common_neighbor() {
        let topo = line(4); // 0-1-2-3
        let medium = Medium::new(CommunicationModel::CAM);
        // 1 and 3 both cover node 2 → collision at 2; nodes 0 and 4... node
        // 0 hears only 1, node 2 hears both (collided).
        let d = collect_deliveries(&medium, &topo, &[1, 3]);
        assert_eq!(d, vec![(0, 1)]);
    }

    #[test]
    fn cam_all_concurrent_transmissions_collide() {
        // Assumption 6: *none* of the concurrent transmissions to a common
        // destination succeeds — not "one wins".
        let pts = vec![
            Point2::new(0.0, 0.0),  // receiver
            Point2::new(0.5, 0.0),  // tx A
            Point2::new(-0.5, 0.0), // tx B
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
        let medium = Medium::new(CommunicationModel::CAM);
        let d = collect_deliveries(&medium, &topo, &[1, 2]);
        // A and B hear each other cleanly (each hears exactly one tx);
        // the middle receiver hears both → nothing.
        assert_eq!(d, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn carrier_sense_blocks_annulus_interference() {
        // Receiver at 0; its neighbor tx at 0.9; interferer at 2.4 — outside
        // transmission range of the receiver but inside carrier range 2r
        // of the receiver (distance 2.4 ≤ 2? No — 2.4 > 2). Place at 1.8:
        // distance 1.8 ∈ (1, 2] → destroys reception under CS, not under TR.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.0),
            Point2::new(1.8, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
        let tr = Medium::new(CommunicationModel::CAM);
        let cs = Medium::new(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R));
        // Under TR: node 0 hears only node 1 → delivery; node 2's packet to
        // node 1 collides with node 1's own tx? Node 1 is transmitting, but
        // the model doesn't forbid a transmitter from receiving — physical
        // half-duplex is a refinement the protocols enforce by ignoring
        // deliveries to transmitters.
        let d = collect_deliveries(&tr, &topo, &[1, 2]);
        assert!(d.contains(&(0, 1)), "TR should deliver 1→0: {d:?}");
        // Under CS: the interferer at 1.8 kills the delivery at 0.
        let d = collect_deliveries(&cs, &topo, &[1, 2]);
        assert!(
            !d.iter().any(|&(rx, _)| rx == 0),
            "CS must block 1→0: {d:?}"
        );
    }

    #[test]
    fn carrier_sense_equals_tr_when_no_annulus_interferers() {
        let topo = line(5);
        let tr = Medium::new(CommunicationModel::CAM);
        let cs = Medium::new(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R));
        // Single transmitter: identical outcomes.
        assert_eq!(
            collect_deliveries(&tr, &topo, &[2]),
            collect_deliveries(&cs, &topo, &[2])
        );
    }

    #[test]
    fn carrier_sense_annulus_interferer_two_hops_away() {
        let topo = line(5); // 0-1-2-3-4, spacing 1
        let cs = Medium::new(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R));
        // tx: 1 and 3. Node 2 hears both → collision either way. Node 0:
        // neighbor 1 transmits; node 3 is at distance 3 > 2 → clean. Node 4
        // symmetric.
        let d = collect_deliveries(&cs, &topo, &[1, 3]);
        assert_eq!(d, vec![(0, 1), (4, 3)]);
        // tx: 0 and 2. Node 1 hears both → collided. Node 3: neighbor 2
        // transmits, node 0 at distance 3 → clean. But wait: node 0 at
        // distance 2 from node 2's receiver... receiver 3: distance to tx 0
        // is 3 → outside 2r. Clean.
        let d = collect_deliveries(&cs, &topo, &[0, 2]);
        assert_eq!(
            d,
            vec![(1, 0), (3, 2)]
                .into_iter()
                .filter(|&(rx, _)| rx == 3)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_transmitter_set_is_noop() {
        let topo = line(3);
        let medium = Medium::new(CommunicationModel::CAM);
        assert!(collect_deliveries(&medium, &topo, &[]).is_empty());
    }

    fn slot_stats(medium: &Medium, topo: &Topology, tx: &[u32]) -> SlotStats {
        let mut scratch = MediumScratch::new(topo.len());
        medium.resolve_slot(topo, tx, &mut scratch, None, |_, _| {})
    }

    #[test]
    fn slot_stats_classify_outcomes() {
        let topo = line(4); // 0-1-2-3
        let cam = Medium::new(CommunicationModel::CAM);
        // 1 and 3 transmit: 0 hears 1 cleanly, 2 hears both → 1 collision.
        let s = slot_stats(&cam, &topo, &[1, 3]);
        assert_eq!(
            s,
            SlotStats {
                deliveries: 1,
                collisions: 1,
                ..SlotStats::default()
            }
        );
        // CFM never collides: 1 reaches {0, 2}, 3 reaches {2}.
        let cfm = Medium::new(CommunicationModel::Cfm);
        let s = slot_stats(&cfm, &topo, &[1, 3]);
        assert_eq!(s.deliveries, 3);
        assert_eq!(s.collisions, 0);
        // Empty slot: all zeros.
        assert_eq!(slot_stats(&cam, &topo, &[]), SlotStats::default());
    }

    #[test]
    fn slot_stats_count_cs_deferrals() {
        // Receiver 0, its tx at 0.9, and an annulus interferer at 1.8:
        // under carrier sense the single clean reception is deferred.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.0),
            Point2::new(1.8, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
        let cs = Medium::new(CommunicationModel::Cam(CollisionRule::CARRIER_SENSE_2R));
        let s = slot_stats(&cs, &topo, &[1, 2]);
        assert!(s.cs_deferrals >= 1, "expected a cs deferral: {s:?}");
        let tr = Medium::new(CommunicationModel::CAM);
        assert_eq!(slot_stats(&tr, &topo, &[1, 2]).cs_deferrals, 0);
    }

    #[test]
    fn slot_stats_absorb_accumulates() {
        let mut a = SlotStats {
            deliveries: 1,
            collisions: 2,
            cs_deferrals: 3,
            losses: 4,
            dead_drops: 5,
            sinr_rejects: 6,
            sinr_captures: 7,
        };
        a.absorb(SlotStats {
            deliveries: 10,
            collisions: 20,
            cs_deferrals: 30,
            losses: 40,
            dead_drops: 50,
            sinr_rejects: 60,
            sinr_captures: 70,
        });
        assert_eq!(
            a,
            SlotStats {
                deliveries: 11,
                collisions: 22,
                cs_deferrals: 33,
                losses: 44,
                dead_drops: 55,
                sinr_rejects: 66,
                sinr_captures: 77,
            }
        );
    }

    #[test]
    fn faults_gate_clean_deliveries() {
        use crate::bits::BitSet;
        use crate::faults::SlotFaults;
        let topo = line(4); // 0-1-2-3
        let cam = Medium::new(CommunicationModel::CAM);
        let mut scratch = MediumScratch::new(topo.len());
        // Node 2 is dead: 1's transmission reaches 0 but drops at 2.
        let alive = BitSet::from_bools(&[true, true, false, true]);
        let f = SlotFaults::new(&alive, 0.0, 0, 1, 0);
        let mut out = Vec::new();
        let s = cam.resolve_slot(&topo, &[1], &mut scratch, Some(&f), |rx, t| {
            out.push((rx.0, t.0));
        });
        assert_eq!(out, vec![(0, 1)]);
        assert_eq!(s.deliveries, 1);
        assert_eq!(s.dead_drops, 1);
        assert_eq!(s.losses, 0);
        // Total link loss: every clean reception is destroyed.
        let alive = BitSet::filled(4);
        let f = SlotFaults::new(&alive, 1.0, 0, 1, 0);
        let s = cam.resolve_slot(&topo, &[1], &mut scratch, Some(&f), |_, _| {
            panic!("nothing should be delivered")
        });
        assert_eq!(s.deliveries, 0);
        assert_eq!(s.losses, 2);
        // CFM deliveries are gated by the same coins.
        let cfm = Medium::new(CommunicationModel::Cfm);
        let s = cfm.resolve_slot(&topo, &[1], &mut scratch, Some(&f), |_, _| {
            panic!("nothing should be delivered")
        });
        assert_eq!(s.losses, 2);
        // No fault context: behavior unchanged.
        let s = cam.resolve_slot(&topo, &[1], &mut scratch, None, |_, _| {});
        assert_eq!(s.deliveries, 2);
        assert_eq!(s.losses + s.dead_drops, 0);
    }

    #[test]
    fn lost_packets_still_collide() {
        use crate::bits::BitSet;
        use crate::faults::SlotFaults;
        // 1 and 3 both cover 2. Even with link_loss = 1 the collision at 2
        // is still a collision (arbitration precedes the loss coin), and 0's
        // clean reception becomes a loss, not a delivery.
        let topo = line(4);
        let cam = Medium::new(CommunicationModel::CAM);
        let mut scratch = MediumScratch::new(topo.len());
        let alive = BitSet::filled(4);
        let f = SlotFaults::new(&alive, 1.0, 0, 1, 0);
        let s = cam.resolve_slot(&topo, &[1, 3], &mut scratch, Some(&f), |_, _| {});
        assert_eq!(s.collisions, 1);
        assert_eq!(s.deliveries, 0);
        assert!(s.losses >= 1);
    }

    fn sinr(params: SinrParams) -> Medium {
        Medium::with_backend(CommunicationModel::CAM, MediumBackend::Sinr(params))
    }

    #[test]
    fn sinr_single_transmitter_matches_unit_disk() {
        // One transmitter, zero noise: denominator is 0 → unbounded SINR →
        // every neighbor decodes, exactly like the unit-disk rule.
        let topo = line(4);
        let m = sinr(SinrParams::DEFAULT);
        let d = collect_deliveries(&m, &topo, &[1]);
        assert_eq!(d, vec![(0, 1), (2, 1)]);
        let s = slot_stats(&m, &topo, &[1]);
        assert_eq!(s.sinr_rejects, 0);
        assert_eq!(s.sinr_captures, 0);
    }

    #[test]
    fn sinr_capture_effect_beats_assumption_6() {
        // Receiver 0 hears tx A (d=0.3) and tx B (d=1.0) concurrently.
        // Assumption 6 collides both; SINR decodes A: p_A ≈ 37 ≫ p_B = 1.
        let pts = vec![
            Point2::new(0.0, 0.0), // receiver
            Point2::new(0.3, 0.0), // tx A
            Point2::new(1.0, 0.0), // tx B
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
        let unit = Medium::new(CommunicationModel::CAM);
        let d = collect_deliveries(&unit, &topo, &[1, 2]);
        assert!(
            !d.iter().any(|&(rx, _)| rx == 0),
            "unit-disk collides: {d:?}"
        );
        let m = sinr(SinrParams::DEFAULT);
        let d = collect_deliveries(&m, &topo, &[1, 2]);
        assert!(d.contains(&(0, 1)), "SINR captures the stronger tx: {d:?}");
        let s = slot_stats(&m, &topo, &[1, 2]);
        assert_eq!(s.sinr_captures, 1);
        assert_eq!(s.collisions, 0);
    }

    #[test]
    fn sinr_out_of_range_interference_rejects_sole_candidate() {
        // Receiver 0's only in-range tx is at 0.9; an interferer at 1.8 is
        // outside the disk but inside κ·r = 3. SINR ≈ 8.0 — fine at β = 1,
        // rejected at β = 10 (where unit-disk TR would still deliver).
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.0),
            Point2::new(1.8, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.0));
        let lenient = sinr(SinrParams::DEFAULT);
        let d = collect_deliveries(&lenient, &topo, &[1, 2]);
        assert!(d.contains(&(0, 1)), "β=1 decodes: {d:?}");
        let strict = sinr(SinrParams {
            beta: 10.0,
            ..SinrParams::DEFAULT
        });
        let s = slot_stats(&strict, &topo, &[1, 2]);
        assert!(s.sinr_rejects >= 1, "β=10 must reject 1→0: {s:?}");
        let d = collect_deliveries(&strict, &topo, &[1, 2]);
        assert!(!d.iter().any(|&(rx, _)| rx == 0), "no delivery at 0: {d:?}");
        // Unit-disk TR is oblivious to the annulus interferer.
        let unit = Medium::new(CommunicationModel::CAM);
        assert!(collect_deliveries(&unit, &topo, &[1, 2]).contains(&(0, 1)));
    }

    #[test]
    fn sinr_noise_floor_shrinks_effective_range() {
        // Neighbors in line(4) sit at exactly d = r, so p = 1. With noise 4
        // and β = 1 the edge of the disk no longer decodes.
        let topo = line(4);
        let noisy = sinr(SinrParams {
            noise: 4.0,
            ..SinrParams::DEFAULT
        });
        let s = slot_stats(&noisy, &topo, &[1]);
        assert_eq!(s.deliveries, 0);
        assert_eq!(s.sinr_rejects, 2);
        // A gentle noise floor (SINR = 1/0.5 = 2 ≥ β = 1) still decodes.
        let mild = sinr(SinrParams {
            noise: 0.5,
            ..SinrParams::DEFAULT
        });
        assert_eq!(slot_stats(&mild, &topo, &[1]).deliveries, 2);
    }

    #[test]
    fn sinr_deliveries_gated_by_faults() {
        use crate::bits::BitSet;
        use crate::faults::SlotFaults;
        let topo = line(4);
        let m = sinr(SinrParams::DEFAULT);
        let mut scratch = MediumScratch::new(topo.len());
        // Node 2 can't hear (dead or transmit-only): 1→2 becomes dead_drop.
        let hearing = BitSet::from_bools(&[true, true, false, true]);
        let f = SlotFaults::new(&hearing, 0.0, 0, 1, 0);
        let mut out = Vec::new();
        let s = m.resolve_slot(&topo, &[1], &mut scratch, Some(&f), |rx, t| {
            out.push((rx.0, t.0));
        });
        assert_eq!(out, vec![(0, 1)]);
        assert_eq!(s.deliveries, 1);
        assert_eq!(s.dead_drops, 1);
    }

    #[test]
    fn sinr_scratch_reuse_is_clean() {
        // tx_bits must be fully cleared between slots, or stale transmitter
        // marks would poison later interference sums.
        let topo = line(5);
        let m = sinr(SinrParams::DEFAULT);
        let mut scratch = MediumScratch::new(topo.len());
        let first = m.resolve_slot(&topo, &[2], &mut scratch, None, |_, _| {});
        for _ in 0..3 {
            let again = m.resolve_slot(&topo, &[2], &mut scratch, None, |_, _| {});
            assert_eq!(again, first);
        }
        // Alternate transmitter sets through the same scratch.
        let a = m.resolve_slot(&topo, &[0, 4], &mut scratch, None, |_, _| {});
        let b = m.resolve_slot(&topo, &[0, 4], &mut scratch, None, |_, _| {});
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_across_slots() {
        let topo = line(4);
        let medium = Medium::new(CommunicationModel::CAM);
        let mut scratch = MediumScratch::new(topo.len());
        for _ in 0..3 {
            let mut out = Vec::new();
            medium.resolve_slot(&topo, &[1], &mut scratch, None, |rx, t| {
                out.push((rx.0, t.0))
            });
            out.sort_unstable();
            assert_eq!(out, vec![(0, 1), (2, 1)]);
        }
    }
}
