//! TDMA: implementing CFM on a collision-prone channel via time diversity.
//!
//! §3.2.1 of the paper lists TDMA among the multi-packet-reception
//! techniques that realize CFM's reliable broadcast: "assigning to each
//! sensor node a specific time slot that is ideally unique in its
//! neighborhood", while warning that such coordination "might not be
//! affordable for large scale networks". This module makes both halves of
//! that sentence concrete:
//!
//! * [`TdmaSchedule::build`] computes a **distance-2 greedy coloring** of
//!   the topology. Two transmitters within two hops share a potential
//!   receiver, so distance-2 separation is exactly the condition for a
//!   collision-free broadcast schedule under Assumption 6.
//! * [`Executor::run_tdma`](crate::executor::Executor::run_tdma) executes
//!   flooding on that schedule **through the CAM medium** — and the tests
//!   assert that *zero* collisions occur, i.e. the schedule really does
//!   implement CFM on CAM hardware.
//! * The price is the frame length (= color count), which grows with the
//!   distance-2 degree ≈ 4ρ: dense networks pay enormous latency for
//!   reliability — the trade-off the paper invokes to justify studying
//!   CSMA-style CAM algorithms instead.

use crate::bits::BitSet;
use crate::faults::FaultState;
use crate::medium::{Medium, MediumScratch};
use nss_model::comm::{CommunicationModel, MediumBackend};
use nss_model::faults::FaultPlan;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use serde::{Deserialize, Serialize};

/// A distance-2 TDMA slot assignment.
///
/// ```
/// use nss_model::prelude::*;
/// use nss_sim::executor::Executor;
/// use nss_sim::tdma::TdmaSchedule;
///
/// let topo = Topology::build(&Deployment::disk(3, 1.0, 30.0).sample(1));
/// let schedule = TdmaSchedule::build(&topo);
/// assert!(schedule.verify(&topo));
/// let out = Executor::new(&topo).run_tdma(&schedule);
/// assert_eq!(out.collisions, 0); // TDMA implements CFM on CAM hardware
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TdmaSchedule {
    /// Slot (color) of each node within the frame.
    pub slot_of: Vec<u32>,
    /// Frame length (number of distinct slots).
    pub frame_len: u32,
}

impl TdmaSchedule {
    /// Greedy distance-2 coloring in descending-degree order (a standard
    /// heuristic: high-degree nodes are hardest to place, so place them
    /// first).
    pub fn build(topo: &Topology) -> Self {
        let n = topo.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&u| std::cmp::Reverse(topo.degree(NodeId(u))));

        let mut slot_of = vec![u32::MAX; n];
        let mut frame_len = 0u32;
        // Scratch: slots already used within distance 2 of the node being
        // colored, as a boolean bitmap sized to the current frame.
        let mut used: Vec<bool> = Vec::new();
        for &u in &order {
            used.clear();
            used.resize(frame_len as usize + 1, false);
            let mut mark = |v: u32| {
                let s = slot_of[v as usize];
                if s != u32::MAX {
                    used[s as usize] = true;
                }
            };
            for &v in topo.neighbors(NodeId(u)) {
                mark(v);
                for &w in topo.neighbors(NodeId(v)) {
                    if w != u {
                        mark(w);
                    }
                }
            }
            let slot = used
                .iter()
                .position(|&b| !b)
                .expect("bitmap always has a free trailing slot") as u32; // nss-lint: allow(panic-hygiene) — `used` is sized `max_degree + 2`, so a free slot always exists past the neighbors' claims
            slot_of[u as usize] = slot;
            frame_len = frame_len.max(slot + 1);
        }
        TdmaSchedule { slot_of, frame_len }
    }

    /// Verifies the distance-2 property: no two distinct nodes within two
    /// hops of each other share a slot.
    pub fn verify(&self, topo: &Topology) -> bool {
        for u in 0..topo.len() as u32 {
            let su = self.slot_of[u as usize];
            for &v in topo.neighbors(NodeId(u)) {
                if v != u && self.slot_of[v as usize] == su {
                    return false;
                }
                for &w in topo.neighbors(NodeId(v)) {
                    if w != u && self.slot_of[w as usize] == su {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Outcome of a TDMA flooding execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdmaOutcome {
    /// Total nodes.
    pub n_total: usize,
    /// Nodes informed (including the source).
    pub informed: usize,
    /// Transmissions performed (one per informed node with neighbors).
    pub transmissions: u64,
    /// Clean deliveries observed.
    pub deliveries: u64,
    /// Collisions observed (must be zero for a valid schedule).
    pub collisions: u64,
    /// Receptions destroyed by the fault plan's link-loss coin (zero for
    /// fault-free runs).
    pub losses: u64,
    /// Receptions addressed to fault-killed nodes (zero for fault-free
    /// runs).
    pub dead_drops: u64,
    /// Elapsed time in **slots** (contrast with CSMA phases of `s` slots).
    pub slots_elapsed: u64,
    /// Frame length of the schedule used.
    pub frame_len: u32,
}

impl TdmaOutcome {
    /// Informed fraction.
    pub fn reachability(&self) -> f64 {
        self.informed as f64 / self.n_total as f64
    }
}

/// Core TDMA loop, parameterized over the physical-layer backend (the
/// [`crate::executor::Executor`] entry point). Under a SINR backend the
/// `collisions` field counts every reception garbled by interference —
/// in-range concurrency *and* SINR-threshold rejects.
pub(crate) fn run_tdma_with(
    topo: &Topology,
    schedule: &TdmaSchedule,
    faults: Option<(&FaultPlan, u64)>,
    backend: MediumBackend,
) -> TdmaOutcome {
    let n = topo.len();
    assert_eq!(schedule.slot_of.len(), n, "schedule/topology size mismatch");
    let medium = Medium::with_backend(CommunicationModel::CAM, backend);
    let mut scratch = MediumScratch::new(n);
    let mut fault_state = faults.map(|(plan, fseed)| FaultState::new(plan, fseed, n));

    let mut informed = BitSet::new(n);
    informed.set(NodeId::SOURCE.index());
    let mut has_tx = BitSet::new(n);
    let mut pending = 1usize; // informed nodes that have not yet transmitted

    let mut transmissions = 0u64;
    let mut deliveries = 0u64;
    let mut collisions = 0u64;
    let mut losses = 0u64;
    let mut dead_drops = 0u64;
    let mut slots_elapsed = 0u64;
    let frame = u64::from(schedule.frame_len.max(1));

    // Safety cap: every node transmits at most once, so at most n frames
    // suffice in the fault-free case; faults can only remove transmissions.
    let max_slots = frame * (n as u64 + 1);
    let mut transmitters: Vec<u32> = Vec::new();
    while pending > 0 && slots_elapsed < max_slots {
        let slot = (slots_elapsed % frame) as u32;
        let phase = (slots_elapsed / frame) as u32 + 1;
        if slot == 0 {
            if let Some(fs) = fault_state.as_mut() {
                fs.begin_phase(phase);
            }
        }
        transmitters.clear();
        // Word-parallel scan over `informed & !has_tx`: only the pending
        // frontier is visited, not all n nodes.
        informed.for_each_set_and_not(&has_tx, |ui| {
            if schedule.slot_of[ui] == slot {
                if let Some(fs) = fault_state.as_ref() {
                    if !fs.is_alive(ui) {
                        return; // sleeps through its slot; retries next frame
                    }
                }
                transmitters.push(ui as u32);
            }
        });
        if !transmitters.is_empty() {
            // Expected deliveries if collision-free: sum of degrees.
            let expected: u64 = transmitters
                .iter()
                .map(|&t| topo.degree(NodeId(t)) as u64)
                .sum();
            let sf = fault_state.as_ref().map(|fs| fs.slot(phase, slot));
            let stats =
                medium.resolve_slot(topo, &transmitters, &mut scratch, sf.as_ref(), |rx, _tx| {
                    if !informed.get(rx.index()) {
                        informed.set(rx.index());
                        pending += 1;
                    }
                });
            deliveries += stats.deliveries;
            collisions += expected - stats.deliveries - stats.losses - stats.dead_drops;
            losses += stats.losses;
            dead_drops += stats.dead_drops;
            transmissions += transmitters.len() as u64;
            for &t in &transmitters {
                has_tx.set(t as usize);
                pending -= 1;
            }
            if let Some(fs) = fault_state.as_mut() {
                for &t in &transmitters {
                    fs.note_broadcast(t);
                }
            }
        }
        slots_elapsed += 1;
    }

    TdmaOutcome {
        n_total: n,
        informed: informed.count_ones(),
        transmissions,
        deliveries,
        collisions,
        losses,
        dead_drops,
        slots_elapsed,
        frame_len: schedule.frame_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    // The former free-function entry points, reconstructed on top of the
    // `Executor` builder: every outcome below exercises the public API.
    fn run_tdma_flooding(topo: &Topology, schedule: &TdmaSchedule) -> TdmaOutcome {
        Executor::new(topo).run_tdma(schedule)
    }

    fn run_tdma_flooding_faulty(
        topo: &Topology,
        schedule: &TdmaSchedule,
        plan: &FaultPlan,
        faults_seed: u64,
    ) -> TdmaOutcome {
        Executor::new(topo)
            .faults(plan.clone())
            .faults_seed(faults_seed)
            .run_tdma(schedule)
    }

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn line_coloring_uses_three_slots() {
        // Distance-2 coloring of a path needs exactly 3 colors.
        let topo = line(10);
        let schedule = TdmaSchedule::build(&topo);
        assert!(schedule.verify(&topo));
        assert_eq!(schedule.frame_len, 3);
    }

    #[test]
    fn coloring_valid_on_random_disks() {
        for (rho, seed) in [(20.0, 1u64), (60.0, 2), (100.0, 3)] {
            let topo = Topology::build(&Deployment::disk(3, 1.0, rho).sample(seed));
            let schedule = TdmaSchedule::build(&topo);
            assert!(schedule.verify(&topo), "invalid coloring at rho={rho}");
            // Frame length bounded by distance-2 degree + 1.
            let mut max_d2 = 0usize;
            for u in 0..topo.len() as u32 {
                let mut seen = std::collections::HashSet::new();
                for &v in topo.neighbors(NodeId(u)) {
                    seen.insert(v);
                    for &w in topo.neighbors(NodeId(v)) {
                        if w != u {
                            seen.insert(w);
                        }
                    }
                }
                max_d2 = max_d2.max(seen.len());
            }
            assert!(
                schedule.frame_len as usize <= max_d2 + 1,
                "frame {} exceeds greedy bound {}",
                schedule.frame_len,
                max_d2 + 1
            );
        }
    }

    #[test]
    fn tdma_flooding_is_collision_free_on_cam() {
        // The whole point: a distance-2 schedule implements CFM on the CAM
        // medium — zero collisions even though arbitration is Assumption 6.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(7));
        let schedule = TdmaSchedule::build(&topo);
        let out = run_tdma_flooding(&topo, &schedule);
        assert_eq!(out.collisions, 0, "TDMA must be collision-free");
        // Full coverage of the connected component.
        let expect = topo.reachable_fraction(NodeId::SOURCE);
        assert!((out.reachability() - expect).abs() < 1e-12);
        // One transmission per informed node.
        assert_eq!(out.transmissions, out.informed as u64);
    }

    #[test]
    fn tdma_latency_scales_with_frame_length() {
        // Dense network: long frame → flooding takes ecc·frame-ish slots,
        // far beyond CSMA's phase count. Quantifies §3.2.1's affordability
        // warning.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 80.0).sample(9));
        let schedule = TdmaSchedule::build(&topo);
        let out = run_tdma_flooding(&topo, &schedule);
        assert_eq!(out.collisions, 0);
        assert!(
            out.frame_len as f64 > 80.0,
            "distance-2 frame should exceed rho: {}",
            out.frame_len
        );
        assert!(
            out.slots_elapsed > u64::from(out.frame_len),
            "multi-hop flooding spans multiple frames"
        );
    }

    #[test]
    fn line_flooding_completes_quickly() {
        let topo = line(8);
        let schedule = TdmaSchedule::build(&topo);
        let out = run_tdma_flooding(&topo, &schedule);
        assert_eq!(out.informed, 8);
        assert_eq!(out.collisions, 0);
        // 7 hops × frame 3 is a loose upper bound.
        assert!(out.slots_elapsed <= 7 * 3 + 3);
    }

    #[test]
    fn deliveries_equal_degree_sums() {
        // Collision-free ⇒ every transmission reaches all its neighbors.
        let topo = Topology::build(&Deployment::disk(3, 1.0, 30.0).sample(4));
        let schedule = TdmaSchedule::build(&topo);
        let out = run_tdma_flooding(&topo, &schedule);
        assert_eq!(out.collisions, 0);
        // Only informed nodes transmit; each delivers deg packets.
        assert!(out.deliveries >= out.transmissions, "deg ≥ 1 in this net");
    }

    #[test]
    fn deterministic() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 40.0).sample(2));
        let s1 = TdmaSchedule::build(&topo);
        let s2 = TdmaSchedule::build(&topo);
        assert_eq!(s1.slot_of, s2.slot_of);
        assert_eq!(
            run_tdma_flooding(&topo, &s1).slots_elapsed,
            run_tdma_flooding(&topo, &s2).slots_elapsed
        );
    }

    #[test]
    fn empty_plan_matches_fault_free_run() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 40.0).sample(2));
        let schedule = TdmaSchedule::build(&topo);
        let plain = run_tdma_flooding(&topo, &schedule);
        let faulted = run_tdma_flooding_faulty(&topo, &schedule, &FaultPlan::none(), 123);
        assert_eq!(plain, faulted);
    }

    #[test]
    fn link_loss_breaks_tdma_reliability() {
        // TDMA implements CFM only under Assumption 5; with lossy links the
        // schedule still avoids collisions but deliveries drop.
        let topo = Topology::build(&Deployment::disk(3, 1.0, 40.0).sample(2));
        let schedule = TdmaSchedule::build(&topo);
        let plain = run_tdma_flooding(&topo, &schedule);
        let lossy = run_tdma_flooding_faulty(&topo, &schedule, &FaultPlan::lossy(0.4), 9);
        assert_eq!(lossy.collisions, 0, "schedule still collision-free");
        assert!(lossy.losses > 0);
        assert!(lossy.deliveries < plain.deliveries);
        assert!(lossy.informed <= plain.informed);
        // Deterministic under the same faults seed.
        let again = run_tdma_flooding_faulty(&topo, &schedule, &FaultPlan::lossy(0.4), 9);
        assert_eq!(lossy, again);
    }

    #[test]
    fn duty_cycling_degrades_but_stays_deterministic() {
        // Sleeping receivers miss their neighbor's single transmission
        // permanently (TDMA has no retransmission), so duty cycling can
        // only reduce coverage — and the drops are accounted for.
        let topo = line(6);
        let schedule = TdmaSchedule::build(&topo);
        let mut plan = FaultPlan::none();
        plan.duty_cycle = Some(nss_model::faults::DutyCycle {
            period: 2,
            on_phases: 1,
        });
        let out = run_tdma_flooding_faulty(&topo, &schedule, &plan, 3);
        let plain = run_tdma_flooding(&topo, &schedule);
        assert!(out.informed <= plain.informed);
        assert!(
            out.informed >= 2,
            "the always-awake source still reaches someone"
        );
        assert!(out.dead_drops > 0, "sleeping receivers drop packets");
        assert_eq!(out, run_tdma_flooding_faulty(&topo, &schedule, &plan, 3));
    }

    #[test]
    fn singleton() {
        let topo = line(1);
        let schedule = TdmaSchedule::build(&topo);
        let out = run_tdma_flooding(&topo, &schedule);
        assert_eq!(out.informed, 1);
        assert_eq!(out.transmissions, 1);
        assert_eq!(out.collisions, 0);
    }
}
