//! Per-node success-rate probing.
//!
//! §6 of the paper proposes tuning the broadcast probability from the
//! locally observable per-broadcast success rate instead of the (unknown,
//! possibly spatially varying) node density. The global variant is
//! measured by [`crate::slotted`]'s success-rate tracking; this module
//! measures the **per-node** rate — the quantity each node would estimate
//! for itself in a deployment with density hotspots.
//!
//! The probe runs `rounds` simple-flooding executions and records, for
//! every broadcast a node performs, the fraction of its neighbors that
//! received the packet cleanly. Nodes that never transmitted during the
//! probe (unreached, or zero-degree) fall back to the global mean.

use crate::bits::BitSet;
use crate::medium::{Medium, MediumScratch};
use nss_model::comm::CommunicationModel;
use nss_model::ids::NodeId;
use nss_model::rng::{derive_seed, Stream};
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-node mean per-broadcast success rates measured by flooding probes.
///
/// Returns one rate per node in `[0, 1]`.
pub fn probe_per_node_success(topo: &Topology, s: u32, rounds: u32, master_seed: u64) -> Vec<f64> {
    assert!(s >= 1, "need at least one slot");
    assert!(rounds >= 1, "need at least one probe round");
    let n = topo.len();
    let medium = Medium::new(CommunicationModel::CAM);
    let mut scratch = MediumScratch::new(n);

    let mut rate_sum = vec![0.0f64; n];
    let mut tx_count = vec![0u32; n];
    let mut delivered = vec![0u32; n];

    for round in 0..rounds {
        let mut rng = SmallRng::seed_from_u64(derive_seed(
            master_seed,
            Stream::Probe.label(),
            u64::from(round),
        ));
        let mut informed = BitSet::new(n);
        informed.set(NodeId::SOURCE.index());
        let mut pending: Vec<u32> = vec![NodeId::SOURCE.0];
        let mut slots: Vec<Vec<u32>> = vec![Vec::new(); s as usize];
        let mut first = true;

        while !pending.is_empty() {
            for sl in &mut slots {
                sl.clear();
            }
            if first {
                slots[0].push(NodeId::SOURCE.0);
                first = false;
            } else {
                for &u in &pending {
                    slots[rng.random_range(0..s) as usize].push(u);
                }
            }
            let mut newly: Vec<u32> = Vec::new();
            for sl in &slots {
                medium.resolve_slot(topo, sl, &mut scratch, None, |rx, tx| {
                    delivered[tx.index()] += 1;
                    if !informed.get(rx.index()) {
                        informed.set(rx.index());
                        newly.push(rx.0);
                    }
                });
            }
            for sl in &slots {
                for &t in sl {
                    let deg = topo.degree(NodeId(t));
                    if deg > 0 {
                        rate_sum[t as usize] += f64::from(delivered[t as usize]) / deg as f64;
                        tx_count[t as usize] += 1;
                    }
                    delivered[t as usize] = 0;
                }
            }
            pending = newly;
        }
    }

    // Global fallback for nodes that never transmitted.
    let (num, den) = rate_sum
        .iter()
        .zip(&tx_count)
        .fold((0.0, 0u32), |(a, b), (&r, &c)| (a + r, b + c));
    let global = if den > 0 { num / f64::from(den) } else { 0.0 };
    rate_sum
        .iter()
        .zip(&tx_count)
        .map(|(&r, &c)| if c > 0 { r / f64::from(c) } else { global })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::deployment::{ClusterDeployment, Deployment};

    #[test]
    fn rates_are_probabilities() {
        let topo = nss_model::topology::Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(3));
        let rates = probe_per_node_success(&topo, 3, 3, 7);
        assert_eq!(rates.len(), topo.len());
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
        // In a connected-ish network, rates vary across nodes.
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "expected spatial variation");
    }

    #[test]
    fn deterministic() {
        let topo = nss_model::topology::Topology::build(&Deployment::disk(3, 1.0, 30.0).sample(1));
        let a = probe_per_node_success(&topo, 3, 2, 5);
        let b = probe_per_node_success(&topo, 3, 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn hotspot_nodes_see_lower_success() {
        // Clustered deployment: nodes inside a hotspot contend with many
        // neighbors → lower measured success than sparse background nodes.
        let c = ClusterDeployment::new(5, 1.0, 4, 120.0, 1.0, 2.0);
        let net = Deployment::Cluster(c).sample(11);
        let topo = nss_model::topology::Topology::build(&net);
        let rates = probe_per_node_success(&topo, 3, 3, 9);

        // Split nodes by degree (proxy for hotspot membership).
        let mut dense = Vec::new();
        let mut sparse = Vec::new();
        for (u, &rate) in rates.iter().enumerate() {
            let d = topo.degree(NodeId(u as u32));
            if d > 80 {
                dense.push(rate);
            } else if d > 0 && d < 20 {
                sparse.push(rate);
            }
        }
        assert!(!dense.is_empty() && !sparse.is_empty(), "need both classes");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&dense) < mean(&sparse),
            "hotspots should measure lower success: dense {:.3} vs sparse {:.3}",
            mean(&dense),
            mean(&sparse)
        );
    }
}
