//! Replication statistics: mean, spread, and confidence intervals for the
//! 30-run averages the paper reports.

use serde::{Deserialize, Serialize};

/// Summary of a sample of replicated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples that contributed.
    pub n: usize,
    /// Sample mean (0 if no samples).
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a sample, silently skipping NaN values. A NaN here means
    /// an upstream bug (infeasible runs are represented as `None` and go
    /// through [`Summary::of_feasible`]), but one poisoned replication
    /// should degrade a 30-run average, not abort a whole sweep: skipped
    /// values are visible as a shrunken [`Summary::n`] and counted in the
    /// `stats.nan_rejected` counter. Use [`Summary::of_checked`] to treat
    /// NaN as a hard error instead.
    pub fn of(values: &[f64]) -> Summary {
        match Self::of_checked(values) {
            Ok(s) => s,
            Err(nan_count) => {
                nss_obs::counter!("stats.nan_rejected").add(nan_count as u64);
                let filtered: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
                // nss-lint: allow(panic-hygiene) — the slice was just filtered with `!is_nan()`, so the checked path cannot fail
                Self::of_checked(&filtered).expect("filtered sample has no NaN")
            }
        }
    }

    /// Summarizes a sample, or returns the number of NaN values found.
    pub fn of_checked(values: &[f64]) -> Result<Summary, usize> {
        let nan_count = values.iter().filter(|v| v.is_nan()).count();
        if nan_count > 0 {
            return Err(nan_count);
        }
        let n = values.len();
        if n == 0 {
            return Ok(Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            });
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
            (ss / (n as f64 - 1.0)).sqrt()
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * std_dev / (n as f64).sqrt()
        };
        Ok(Summary {
            n,
            mean,
            std_dev,
            ci95,
        })
    }

    /// Summarizes the feasible subset of optional measurements, returning
    /// the summary and the feasible fraction. Mirrors how the paper's
    /// constrained metrics (e.g. latency to 63% reachability) are averaged
    /// only over runs that satisfy the constraint.
    pub fn of_feasible(values: &[Option<f64>]) -> (Summary, f64) {
        let feasible: Vec<f64> = values.iter().copied().flatten().collect();
        let frac = if values.is_empty() {
            0.0
        } else {
            feasible.len() as f64 / values.len() as f64
        };
        (Summary::of(&feasible), frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Bessel-corrected std of this classic sample is ~2.138.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn degenerate_sizes() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn constant_sample_zero_spread() {
        let s = Summary::of(&[2.0; 30]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn feasible_filtering() {
        let vals = [Some(1.0), None, Some(3.0), None];
        let (s, frac) = Summary::of_feasible(&vals);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((frac - 0.5).abs() < 1e-12);
        let (s, frac) = Summary::of_feasible(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn nan_rejected() {
        // `of` skips NaN values instead of poisoning the mean...
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        // ...and `of_checked` reports how many there were.
        assert_eq!(Summary::of_checked(&[1.0, f64::NAN, 3.0, f64::NAN]), Err(2));
        assert!(Summary::of_checked(&[1.0, 3.0]).is_ok());
        #[cfg(feature = "obs")]
        {
            let rejected = nss_obs::registry::Registry::global()
                .counter("stats.nan_rejected")
                .get();
            assert!(rejected >= 2, "nan_rejected counter not bumped");
        }
    }
}
