//! Counter-based broadcast suppression (Williams et al. taxonomy).
//!
//! The paper's related work cites the counter-based scheme as the next
//! design point after probability-based broadcast; analysing it is the
//! paper's declared future work. We implement it so the two schemes can be
//! compared empirically under identical CAM semantics:
//!
//! * On first reception, a node schedules a tentative rebroadcast in a
//!   random slot of the next phase (same jitter as PB_CAM).
//! * While waiting it counts *duplicate* clean receptions of the packet.
//!   At its scheduled slot it transmits only if the counter is still below
//!   the threshold `C` — overheard duplicates are evidence its
//!   neighborhood is already covered.
//!
//! With `C = ∞` this degenerates to simple flooding; small `C` suppresses
//! redundant transmissions in dense regions adaptively — the same goal the
//! optimal PB_CAM probability pursues, but density-aware for free.

use crate::bits::BitSet;
use crate::medium::{Medium, MediumScratch, SlotStats};
use crate::trace::SimTrace;
use nss_model::comm::CommunicationModel;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a counter-based broadcast execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterConfig {
    /// Slots per phase.
    pub s: u32,
    /// Suppression threshold `C`: transmit only if fewer than `C`
    /// duplicates were overheard before the scheduled slot.
    pub threshold: u32,
    /// Communication model (CAM by default; CFM for contrast).
    pub model: CommunicationModel,
    /// Hard cap on phases.
    pub max_phases: usize,
}

impl CounterConfig {
    /// The common configuration used in the literature: `C = 3`.
    pub fn paper(threshold: u32) -> Self {
        CounterConfig {
            s: 3,
            threshold,
            model: CommunicationModel::CAM,
            max_phases: 10_000,
        }
    }
}

/// Runs one counter-based broadcast execution.
pub fn run_counter_broadcast(topo: &Topology, cfg: &CounterConfig, seed: u64) -> SimTrace {
    assert!(cfg.s >= 1, "need at least one slot");
    assert!(cfg.threshold >= 1, "threshold 0 would suppress everything");
    let n = topo.len();
    let mut trace = SimTrace::new(n);
    if n == 0 {
        return trace;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let medium = Medium::new(cfg.model);
    let mut scratch = MediumScratch::new(n);

    let mut informed = BitSet::new(n);
    informed.set(NodeId::SOURCE.index());
    let mut dup_count = vec![0u32; n];

    // (node, slot) pairs scheduled for the upcoming phase.
    let mut scheduled: Vec<(u32, u32)> = vec![(NodeId::SOURCE.0, 0)];
    let mut slots: Vec<Vec<u32>> = vec![Vec::new(); cfg.s as usize];

    for phase in 1..=cfg.max_phases as u32 {
        for sl in &mut slots {
            sl.clear();
        }
        for &(u, sl) in &scheduled {
            slots[sl as usize].push(u);
        }

        // The counter is consulted at transmission time (slot granularity):
        // duplicates overheard in earlier slots — including earlier slots
        // of this very phase — suppress the pending rebroadcast. The
        // source's phase-1 transmission is unconditional.
        let mut tx_count = 0u32;
        let mut newly: Vec<u32> = Vec::new();
        let mut deliveries = 0u64;
        let mut phase_stats = SlotStats::default();
        let mut transmitters: Vec<u32> = Vec::new();
        for sl in &slots {
            transmitters.clear();
            transmitters.extend(
                sl.iter()
                    .copied()
                    .filter(|&u| phase == 1 || dup_count[u as usize] < cfg.threshold),
            );
            tx_count += transmitters.len() as u32;
            phase_stats.absorb(medium.resolve_slot(
                topo,
                &transmitters,
                &mut scratch,
                None,
                |rx, _tx| {
                    deliveries += 1;
                    let rxi = rx.index();
                    if informed.get(rxi) {
                        dup_count[rxi] += 1;
                    } else {
                        informed.set(rxi);
                        trace.first_rx_phase[rxi] = phase;
                        newly.push(rx.0);
                    }
                },
            ));
        }
        trace.broadcasts_by_phase.push(tx_count);
        trace.deliveries_by_phase.push(deliveries);
        trace.collisions_by_phase.push(phase_stats.collisions);
        trace.cs_deferrals_by_phase.push(phase_stats.cs_deferrals);
        nss_obs::counter!("sim.broadcasts").add(u64::from(tx_count));

        scheduled = newly
            .into_iter()
            .map(|v| (v, rng.random_range(0..cfg.s)))
            .collect();
        if scheduled.is_empty() && tx_count == 0 {
            break;
        }
        if scheduled.is_empty() {
            break;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::slotted::GossipConfig;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn high_threshold_equals_flooding_on_sparse_graphs() {
        // On a line, nodes hear ≤1 duplicate before their slot, so C = 10
        // never suppresses: identical structure to flooding.
        let topo = line(7);
        let cfg = CounterConfig::paper(10);
        let t = run_counter_broadcast(&topo, &cfg, 2);
        let f = Executor::new(&topo)
            .gossip(GossipConfig::flooding_cam())
            .run(2);
        // Same reachability shape (both may lose to collisions, but the
        // counter run can't transmit *more* than flooding).
        assert!(t.total_broadcasts() <= f.total_broadcasts() + 1);
        assert!(t.final_reachability() > 0.5);
    }

    #[test]
    fn suppression_strong_under_cfm() {
        // Under CFM every duplicate arrives cleanly, so the counter fires
        // aggressively: broadcasts collapse versus flooding.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 80.0).sample(5));
        let mut flood_tx = 0u64;
        let mut counter_tx = 0u64;
        let mut counter_reach = 0.0;
        let runs = 5;
        for seed in 0..runs {
            flood_tx += Executor::new(&topo)
                .gossip(GossipConfig::gossip_cfm(1.0))
                .run(seed)
                .total_broadcasts();
            let mut cfg = CounterConfig::paper(3);
            cfg.model = CommunicationModel::Cfm;
            let t = run_counter_broadcast(&topo, &cfg, seed);
            counter_tx += t.total_broadcasts();
            counter_reach += t.final_reachability();
        }
        assert!(
            counter_tx * 2 < flood_tx,
            "C=3 under CFM should suppress >50%: {counter_tx} vs {flood_tx}"
        );
        assert!(
            counter_reach / runs as f64 > 0.9,
            "CFM counter broadcast should still cover the network"
        );
    }

    #[test]
    fn suppression_weak_under_cam_collisions() {
        // Under Assumption-6 CAM most duplicates collide and never reach
        // the counter, so suppression is mild — an observation PB_CAM's
        // probabilistic thinning does not suffer from. The counter scheme
        // must still never transmit more than flooding.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 80.0).sample(5));
        for seed in 0..5 {
            let flood = Executor::new(&topo)
                .gossip(GossipConfig::flooding_cam())
                .run(seed);
            let counter = run_counter_broadcast(&topo, &CounterConfig::paper(3), seed);
            assert!(
                counter.total_broadcasts() <= flood.total_broadcasts(),
                "counter must not exceed flooding: {} vs {}",
                counter.total_broadcasts(),
                flood.total_broadcasts()
            );
        }
    }

    #[test]
    fn threshold_monotonicity() {
        // Higher threshold → (weakly) more transmissions.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(9));
        let mut prev = 0u64;
        for c in [1u32, 2, 4, 16] {
            let mut total = 0u64;
            for seed in 0..5 {
                total +=
                    run_counter_broadcast(&topo, &CounterConfig::paper(c), seed).total_broadcasts();
            }
            assert!(
                total + 5 >= prev,
                "C={c}: broadcasts {total} dropped below C-1 level {prev}"
            );
            prev = total;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 40.0).sample(1));
        let a = run_counter_broadcast(&topo, &CounterConfig::paper(3), 4);
        let b = run_counter_broadcast(&topo, &CounterConfig::paper(3), 4);
        assert_eq!(a.first_rx_phase, b.first_rx_phase);
    }

    #[test]
    fn trace_valid() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(7));
        for seed in 0..4 {
            let t = run_counter_broadcast(&topo, &CounterConfig::paper(2), seed);
            t.phase_series().validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "threshold 0")]
    fn zero_threshold_rejected() {
        let topo = line(2);
        let mut cfg = CounterConfig::paper(3);
        cfg.threshold = 0;
        let _ = run_counter_broadcast(&topo, &cfg, 0);
    }
}
