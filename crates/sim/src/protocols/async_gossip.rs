//! Asynchronous PB_CAM on a continuous timeline.
//!
//! The paper's analysis assumes all nodes' phases are perfectly aligned;
//! real networks are unsynchronized. Here a node informed at time `t`
//! rebroadcasts (with probability `p`) at `t + U(0, W]` where `W = s·t_a`
//! is the jitter window corresponding to one analysis phase, and each
//! transmission occupies the interval `[start, start + t_a)`.
//!
//! Collision semantics follow Assumption 6 verbatim on the continuous
//! timeline: a reception at `v` succeeds iff **no other** interfering
//! transmission overlaps the packet's full duration at `v`. Both collision
//! scopes are supported: transmission-range (interferers within `r` of the
//! receiver) and the Appendix-A carrier-sense rule (additionally, any
//! transmitter in the annulus `(r, factor·r]`).

use crate::bits::BitSet;
use crate::engine::{EventQueue, Time};
use crate::faults::FaultState;
use crate::trace::SimTrace;
use nss_model::comm::CollisionRule;
use nss_model::error::ConfigError;
use nss_model::faults::FaultPlan;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of an asynchronous PB_CAM execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncGossipConfig {
    /// Broadcast probability `p`.
    pub prob: f64,
    /// Packet airtime `t_a`.
    pub t_a: f64,
    /// Jitter window `W` (the analysis phase length is `s · t_a`).
    pub window: f64,
    /// Safety cap on simulated time, in windows.
    pub max_windows: f64,
    /// Collision scope (transmission range, or Appendix-A carrier sense).
    pub collision: CollisionRule,
}

impl AsyncGossipConfig {
    /// The async counterpart of the paper's slotted setup (`s = 3` slots →
    /// window `3·t_a` with unit airtime).
    pub fn paper(prob: f64) -> Self {
        AsyncGossipConfig {
            prob,
            t_a: 1.0,
            window: 3.0,
            max_windows: 10_000.0,
            collision: CollisionRule::TransmissionRange,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.prob) {
            return Err(ConfigError::OutOfUnitRange {
                field: "prob",
                value: self.prob,
            });
        }
        if !self.t_a.is_finite() || self.t_a <= 0.0 {
            return Err(ConfigError::NotPositive {
                field: "t_a",
                value: self.t_a,
            });
        }
        if !self.window.is_finite() || self.window <= 0.0 {
            return Err(ConfigError::NotPositive {
                field: "window",
                value: self.window,
            });
        }
        Ok(())
    }
}

#[derive(Debug)]
enum Ev {
    TxStart(u32),
    TxEnd(u32),
}

/// Runs one asynchronous execution. Reception times are quantized to
/// analysis windows (`window` = one phase) for the returned [`SimTrace`].
pub fn run_async_gossip(topo: &Topology, cfg: &AsyncGossipConfig, seed: u64) -> SimTrace {
    run_async_with(topo, cfg, seed, None)
}

/// Asynchronous PB_CAM under a [`FaultPlan`]. The fault "phase" is the
/// analysis window index, advanced as simulated time crosses window
/// boundaries; a node asleep when its scheduled rebroadcast fires forfeits
/// it. An empty plan takes the exact fault-free code path.
pub fn run_async_gossip_faulty(
    topo: &Topology,
    cfg: &AsyncGossipConfig,
    plan: &FaultPlan,
    seed: u64,
    faults_seed: u64,
) -> SimTrace {
    if plan.is_empty() {
        return run_async_with(topo, cfg, seed, None);
    }
    plan.validate()
        .unwrap_or_else(|e| panic!("invalid FaultPlan: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; `validate()` is the fallible path
    run_async_with(topo, cfg, seed, Some((plan, faults_seed)))
}

fn run_async_with(
    topo: &Topology,
    cfg: &AsyncGossipConfig,
    seed: u64,
    faults: Option<(&FaultPlan, u64)>,
) -> SimTrace {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid AsyncGossipConfig: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: entry points panic on invalid configs; `validate()` is the fallible path
    let n = topo.len();
    let mut trace = SimTrace::new(n);
    if n == 0 {
        return trace;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut informed = BitSet::new(n);
    informed.set(NodeId::SOURCE.index());

    // Per-receiver set of currently audible transmissions; the flag is
    // "still clean" (no overlap so far). Ordered map so every traversal is
    // in sender order — iteration order can never leak into the trace.
    let mut audible: Vec<BTreeMap<u32, bool>> = vec![BTreeMap::new(); n];
    // Carrier-sense bookkeeping: count of active annulus interferers per
    // receiver (always zero under the transmission-range rule).
    let mut interference: Vec<u32> = vec![0; n];
    let cs_factor = match cfg.collision {
        CollisionRule::TransmissionRange => None,
        CollisionRule::CarrierSense { factor } => Some(factor),
    };
    let r = topo.comm_radius();
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let horizon = cfg.window * cfg.max_windows;

    // The source transmits immediately.
    queue.schedule(Time::ZERO, Ev::TxStart(NodeId::SOURCE.0));

    let mut first_rx_time: Vec<f64> = vec![f64::INFINITY; n];
    first_rx_time[NodeId::SOURCE.index()] = 0.0;
    let mut tx_times: Vec<f64> = Vec::new();
    let mut deliveries: Vec<f64> = Vec::new();
    // Receptions garbled by overlap or annulus interference, by end time.
    let mut corrupted: Vec<f64> = Vec::new();

    // Fault bookkeeping (only for non-empty plans): window-stepped liveness,
    // per-transmission sequence numbers keying stateless link-loss coins,
    // and drop timestamps for the quantized trace.
    let mut fault_state = faults.map(|(plan, fseed)| FaultState::new(plan, fseed, n));
    let mut fault_phase = 0u32;
    let mut tx_seq = 0u32;
    let mut seq_of: Vec<u32> = vec![0; if fault_state.is_some() { n } else { 0 }];
    let mut lost: Vec<f64> = Vec::new();
    let mut dead_dropped: Vec<f64> = Vec::new();
    let mut alive_marks: Vec<(u32, u32)> = Vec::new(); // (phase, alive count)

    while let Some((t, ev)) = queue.pop() {
        if t.as_f64() > horizon {
            break;
        }
        if let Some(fs) = fault_state.as_mut() {
            // Events pop in time order, so the window index is monotone.
            let phase = (t.as_f64() / cfg.window).floor() as u32 + 1;
            if phase != fault_phase {
                fault_phase = phase;
                fs.begin_phase(phase);
                alive_marks.push((phase, fs.alive_count()));
            }
        }
        match ev {
            Ev::TxStart(u) => {
                if let Some(fs) = fault_state.as_mut() {
                    if !fs.is_alive(u as usize) {
                        continue; // asleep/dead at fire time: forfeits the tx
                    }
                    tx_seq += 1;
                    seq_of[u as usize] = tx_seq;
                    fs.note_broadcast(u);
                }
                tx_times.push(t.as_f64());
                for &v in topo.neighbors(NodeId(u)) {
                    let slot = &mut audible[v as usize];
                    let clean = slot.is_empty() && interference[v as usize] == 0;
                    for flag in slot.values_mut() {
                        *flag = false; // ongoing receptions are now corrupt
                    }
                    slot.insert(u, clean);
                }
                if let Some(factor) = cs_factor {
                    // Annulus interference: corrupt ongoing receptions and
                    // block new ones for the packet's duration.
                    let pos = topo.position(NodeId(u));
                    let r2 = r * r;
                    topo.for_each_within(&pos, factor * r, |v| {
                        if v.0 == u {
                            return;
                        }
                        if topo.position(v).dist_sq(&pos) > r2 {
                            interference[v.index()] += 1;
                            for flag in audible[v.index()].values_mut() {
                                *flag = false;
                            }
                        }
                    });
                }
                queue.schedule_in(cfg.t_a, Ev::TxEnd(u));
            }
            Ev::TxEnd(u) => {
                let end = t.as_f64();
                if let Some(factor) = cs_factor {
                    let pos = topo.position(NodeId(u));
                    let r2 = r * r;
                    topo.for_each_within(&pos, factor * r, |v| {
                        if v.0 != u && topo.position(v).dist_sq(&pos) > r2 {
                            interference[v.index()] -= 1;
                        }
                    });
                }
                for &v in topo.neighbors(NodeId(u)) {
                    let clean = audible[v as usize].remove(&u).unwrap_or(false);
                    if !clean {
                        corrupted.push(end);
                        continue;
                    }
                    if let Some(fs) = fault_state.as_ref() {
                        if !fs.can_hear(v as usize) {
                            dead_dropped.push(end);
                            continue;
                        }
                        let sf = fs.slot(fault_phase, seq_of[u as usize]);
                        if !sf.link_delivers(u, v) {
                            lost.push(end);
                            continue;
                        }
                    }
                    deliveries.push(end);
                    if !informed.get(v as usize) {
                        informed.set(v as usize);
                        first_rx_time[v as usize] = end;
                        if cfg.prob >= 1.0 || rng.random::<f64>() < cfg.prob {
                            let delay: f64 = rng.random_range(0.0..cfg.window);
                            queue.schedule_in(delay, Ev::TxStart(v));
                        }
                    }
                }
            }
        }
    }

    // Quantize to analysis windows for the shared trace format.
    let total_windows = {
        let latest = tx_times
            .iter()
            .chain(first_rx_time.iter().filter(|t| t.is_finite()))
            .fold(0.0f64, |a, &b| a.max(b));
        ((latest / cfg.window).floor() as usize + 1).max(1)
    };
    trace.broadcasts_by_phase = vec![0; total_windows];
    trace.deliveries_by_phase = vec![0; total_windows];
    trace.collisions_by_phase = vec![0; total_windows];
    trace.cs_deferrals_by_phase = vec![0; total_windows];
    for &t in &tx_times {
        let w = ((t / cfg.window).floor() as usize).min(total_windows - 1);
        trace.broadcasts_by_phase[w] += 1;
    }
    for &t in &deliveries {
        let w = ((t / cfg.window).floor() as usize).min(total_windows - 1);
        trace.deliveries_by_phase[w] += 1;
    }
    for &t in &corrupted {
        let w = ((t / cfg.window).floor() as usize).min(total_windows - 1);
        trace.collisions_by_phase[w] += 1;
    }
    if let Some(fs) = fault_state.as_ref() {
        trace.losses_by_phase = vec![0; total_windows];
        trace.dead_drops_by_phase = vec![0; total_windows];
        for &t in &lost {
            let w = ((t / cfg.window).floor() as usize).min(total_windows - 1);
            trace.losses_by_phase[w] += 1;
        }
        for &t in &dead_dropped {
            let w = ((t / cfg.window).floor() as usize).min(total_windows - 1);
            trace.dead_drops_by_phase[w] += 1;
        }
        // Carry the last observed alive count through windows with no
        // events (liveness only changes at window boundaries we visited).
        let mut counts = vec![fs.alive_count(); total_windows];
        let mut cursor = 0usize;
        let mut last = alive_marks.first().map_or(n as u32, |&(_, c)| c);
        for (w, slot) in counts.iter_mut().enumerate() {
            while cursor < alive_marks.len() && alive_marks[cursor].0 as usize <= w + 1 {
                last = alive_marks[cursor].1;
                cursor += 1;
            }
            *slot = last;
        }
        trace.alive_by_phase = counts;
        nss_obs::counter!("sim.losses").add(lost.len() as u64);
        nss_obs::counter!("sim.dead_drops").add(dead_dropped.len() as u64);
    }
    nss_obs::counter!("sim.broadcasts").add(tx_times.len() as u64);
    nss_obs::counter!("sim.deliveries").add(deliveries.len() as u64);
    nss_obs::counter!("sim.collisions").add(corrupted.len() as u64);
    for (v, &t) in first_rx_time.iter().enumerate() {
        if v == NodeId::SOURCE.index() {
            continue;
        }
        if t.is_finite() {
            trace.first_rx_phase[v] = (t / cfg.window).floor() as u32 + 1;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn line_propagation_with_certainty() {
        let topo = line(6);
        let cfg = AsyncGossipConfig::paper(1.0);
        // On a line, overlaps between grandparent/child windows are
        // possible, but most seeds complete.
        let full = (0..30)
            .filter(|&s| run_async_gossip(&topo, &cfg, s).final_reachability() == 1.0)
            .count();
        assert!(full > 10, "only {full}/30 seeds completed the line");
    }

    #[test]
    fn zero_probability_one_hop_only() {
        let topo = line(5);
        let cfg = AsyncGossipConfig::paper(0.0);
        let t = run_async_gossip(&topo, &cfg, 1);
        assert_eq!(t.informed_count(), 2);
        assert_eq!(t.total_broadcasts(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 30.0).sample(3));
        let cfg = AsyncGossipConfig::paper(0.5);
        let a = run_async_gossip(&topo, &cfg, 5);
        let b = run_async_gossip(&topo, &cfg, 5);
        assert_eq!(a.first_rx_phase, b.first_rx_phase);
        assert_eq!(a.broadcasts_by_phase, b.broadcasts_by_phase);
    }

    #[test]
    fn overlap_collision_blocks_reception() {
        // Receiver 0 flanked by two informed transmitters that both fire in
        // overlapping intervals: construct via topology where source
        // informs A and B, whose windows overlap with probability 1 −
        // (gap/W)... statistical: reachability of the far node over seeds
        // is clearly below 1.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.9, 0.6),
            Point2::new(0.9, -0.6),
            Point2::new(1.8, 0.0),
        ];
        let topo = Topology::build(&DeployedNetwork::from_positions(pts, 1.2));
        let cfg = AsyncGossipConfig::paper(1.0);
        let informed = (0..60)
            .filter(|&s| run_async_gossip(&topo, &cfg, s).informed_count() == 4)
            .count();
        // With window 3·t_a and airtime 1, two uniform starts overlap with
        // probability ≈ 5/9; completion ≈ 4/9 of runs.
        assert!(
            (10..=45).contains(&informed),
            "expected partial success from overlap collisions, got {informed}/60"
        );
    }

    #[test]
    fn trace_phase_series_valid() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(6));
        for seed in 0..5 {
            let t = run_async_gossip(&topo, &AsyncGossipConfig::paper(0.3), seed);
            t.phase_series().validate().expect("invalid series");
            assert!(t.total_broadcasts() <= t.informed_count() as u64);
        }
    }

    #[test]
    fn async_is_worse_or_similar_to_slotted() {
        // Aligned slots are the optimistic idealization; the async
        // execution should not beat it meaningfully. (Statistical, coarse.)
        use crate::executor::Executor;
        use crate::slotted::GossipConfig;
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(12));
        let mut slotted_sum = 0.0;
        let mut async_sum = 0.0;
        for seed in 0..15 {
            slotted_sum += Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(0.3))
                .run(seed)
                .final_reachability();
            async_sum +=
                run_async_gossip(&topo, &AsyncGossipConfig::paper(0.3), seed).final_reachability();
        }
        assert!(
            async_sum <= slotted_sum * 1.15,
            "async ({async_sum}) should not dominate slotted ({slotted_sum})"
        );
    }

    #[test]
    fn carrier_sense_reduces_or_equals_reachability() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(6));
        let mut tr_sum = 0.0;
        let mut cs_sum = 0.0;
        for seed in 0..12 {
            let tr_cfg = AsyncGossipConfig::paper(0.4);
            let mut cs_cfg = tr_cfg;
            cs_cfg.collision = CollisionRule::CARRIER_SENSE_2R;
            tr_sum += run_async_gossip(&topo, &tr_cfg, seed).final_reachability();
            cs_sum += run_async_gossip(&topo, &cs_cfg, seed).final_reachability();
        }
        assert!(
            cs_sum < tr_sum,
            "carrier sensing must hurt on average: cs {cs_sum} vs tr {tr_sum}"
        );
        assert!(cs_sum > 0.0, "CS runs should still inform someone");
    }

    #[test]
    fn carrier_sense_interference_blocks_distant_overlap() {
        // Receiver 0 hears neighbor 1; interferer 2 sits in the annulus
        // (distance 1.8 ∈ (1, 2]) and transmits an overlapping packet: the
        // reception must fail under CS and succeed under TR. Force overlap
        // by direct construction: source informs both 1 and 2 in phase 1?
        // Simpler: statistical check on a 3-node chain with an extra
        // annulus node is already covered above; here just assert the
        // config plumbing works.
        let cfg = AsyncGossipConfig {
            collision: CollisionRule::CARRIER_SENSE_2R,
            ..AsyncGossipConfig::paper(1.0)
        };
        assert!(cfg.validate().is_ok());
        let topo = line(4);
        let t = run_async_gossip(&topo, &cfg, 3);
        assert!(t.informed_count() >= 2);
    }

    #[test]
    fn config_validation() {
        let mut c = AsyncGossipConfig::paper(0.5);
        assert!(c.validate().is_ok());
        c.t_a = 0.0;
        assert!(c.validate().is_err());
        c = AsyncGossipConfig::paper(2.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn empty_plan_matches_fault_free_run() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 30.0).sample(3));
        let cfg = AsyncGossipConfig::paper(0.5);
        let plain = run_async_gossip(&topo, &cfg, 5);
        let faulted = run_async_gossip_faulty(&topo, &cfg, &FaultPlan::none(), 5, 77);
        assert_eq!(plain.first_rx_phase, faulted.first_rx_phase);
        assert_eq!(plain.broadcasts_by_phase, faulted.broadcasts_by_phase);
        assert_eq!(plain.deliveries_by_phase, faulted.deliveries_by_phase);
        assert!(faulted.losses_by_phase.is_empty());
    }

    #[test]
    fn link_loss_degrades_async_reachability() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(8));
        let cfg = AsyncGossipConfig::paper(0.6);
        let reach = |loss: f64| {
            (0..8)
                .map(|s| {
                    run_async_gossip_faulty(&topo, &cfg, &FaultPlan::lossy(loss), s, s + 50)
                        .final_reachability()
                })
                .sum::<f64>()
                / 8.0
        };
        let clean = reach(0.0);
        let lossy = reach(0.7);
        assert!(
            lossy < clean,
            "70% loss should hurt async gossip: {lossy} vs {clean}"
        );
        let t = run_async_gossip_faulty(&topo, &cfg, &FaultPlan::lossy(0.7), 0, 50);
        assert!(t.total_losses() > 0);
        assert_eq!(t.alive_by_phase.len(), t.phases());
        // Deterministic under fixed seeds.
        let u = run_async_gossip_faulty(&topo, &cfg, &FaultPlan::lossy(0.7), 0, 50);
        assert_eq!(t.first_rx_phase, u.first_rx_phase);
        assert_eq!(t.losses_by_phase, u.losses_by_phase);
    }

    #[test]
    fn thinned_async_records_dead_drops() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 40.0).sample(8));
        let cfg = AsyncGossipConfig::paper(0.8);
        let t = run_async_gossip_faulty(&topo, &cfg, &FaultPlan::thinned(0.4), 2, 9);
        assert!(t.total_dead_drops() > 0);
        let n = topo.len() as u32;
        assert!(t.min_alive().unwrap() < n);
    }
}
