//! Protocol variants beyond plain slotted gossip.
//!
//! * [`async_gossip`] — PB_CAM on a continuous timeline (no slot/phase
//!   alignment), the execution model the paper's §3.1 acknowledges as the
//!   realistic one ("communication among nodes may happen in an
//!   asynchronous fashion"); the analysis assumes alignment optimistically.
//! * [`ack_flood`] — reliable flooding via per-neighbor acknowledgments and
//!   retransmission: the "naive implementation of CFM on CSMA/CA" whose
//!   cost §3.2.1 warns about.
//! * [`counter`] — the counter-based broadcast suppression scheme from the
//!   Williams et al. taxonomy the paper cites as the neighboring design
//!   point (its analysis is the paper's declared future work).
//! * [`distance`] — the distance/area-based suppression scheme from the
//!   same taxonomy (also declared future work).
//! * [`convergecast`] — data gathering over the **unicast** primitive:
//!   per-hop reliable report forwarding up a BFS tree under CAM.

pub mod ack_flood;
pub mod async_gossip;
pub mod convergecast;
pub mod counter;
pub mod distance;

pub use ack_flood::{run_ack_flood, AckFloodConfig, AckFloodOutcome};
pub use async_gossip::{run_async_gossip, AsyncGossipConfig};
pub use convergecast::{run_convergecast, ConvergecastConfig, ConvergecastOutcome};
pub use counter::{run_counter_broadcast, CounterConfig};
pub use distance::{run_distance_broadcast, DistanceConfig};
